"""CLI: every subcommand exercised in-process.

A small importable module of task bodies is materialized under ``tmp_path``
and put on ``sys.path`` so the MODULE:FUNC commands have a target.
"""

import sys

import pytest

from repro.cli import main

PROGRAMS_SOURCE = '''
"""CLI test target programs."""

def buggy(ctx):
    def rmw(inner):
        value = inner.read("X")
        inner.write("X", value + 1)
    ctx.spawn(rmw)
    ctx.spawn(rmw)
    ctx.sync()

def clean(ctx):
    def writer(inner, i):
        inner.write(("out", i), i)
    for i in range(3):
        ctx.spawn(writer, i)
    ctx.sync()
'''


@pytest.fixture
def target_module(tmp_path, monkeypatch):
    path = tmp_path / "cli_targets.py"
    path.write_text(PROGRAMS_SOURCE)
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop("cli_targets", None)
    yield "cli_targets"
    sys.modules.pop("cli_targets", None)


class TestCheck:
    def test_buggy_program_exit_1(self, target_module, capsys):
        code = main(["check", f"{target_module}:buggy"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Atomicity violation" in out
        assert "'X'" in out

    def test_clean_program_exit_0(self, target_module, capsys):
        code = main(["check", f"{target_module}:clean"])
        assert code == 0
        assert "no violations" in capsys.readouterr().out

    def test_stats_flag(self, target_module, capsys):
        main(["check", f"{target_module}:buggy", "--stats"])
        out = capsys.readouterr().out
        assert "tasks=" in out and "lca_queries=" in out

    def test_other_checkers(self, target_module, capsys):
        assert main(["check", f"{target_module}:buggy", "--checker", "velodrome"]) == 0
        assert main(["check", f"{target_module}:buggy", "--checker", "basic"]) == 1

    def test_executor_options(self, target_module):
        for executor in ("serial", "help-first", "random", "worksteal"):
            assert (
                main(
                    ["check", f"{target_module}:buggy", "--executor", executor]
                )
                == 1
            )

    def test_bad_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "no_colon_here"])

    def test_missing_function_rejected(self, target_module):
        with pytest.raises(SystemExit):
            main(["check", f"{target_module}:nope"])


class TestSuite:
    def test_full_suite_passes(self, capsys):
        code = main(["suite"])
        out = capsys.readouterr().out
        assert code == 0
        assert "36 case(s), 0 mismatch(es)" in out

    def test_category_filter(self, capsys):
        code = main(["suite", "--category", "locks"])
        out = capsys.readouterr().out
        assert code == 0
        assert "6 case(s)" in out


class TestWorkload:
    def test_run_sort(self, capsys):
        code = main(["workload", "sort", "--scale", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload sort" in out
        assert "no violations" in out

    def test_unknown_workload(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["workload", "quake"])


class TestDpst:
    def test_prints_tree(self, target_module, capsys):
        code = main(["dpst", f"{target_module}:buggy"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("F0")
        assert "A" in out and "S" in out


class TestRecordReplay:
    def test_roundtrip(self, target_module, tmp_path, capsys):
        trace_file = str(tmp_path / "t.json")
        assert main(["record", f"{target_module}:buggy", "-o", trace_file]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        code = main(["replay", trace_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "Atomicity violation" in out

    def test_replay_with_velodrome(self, target_module, tmp_path, capsys):
        trace_file = str(tmp_path / "t.json")
        main(["record", f"{target_module}:buggy", "-o", trace_file])
        capsys.readouterr()
        code = main(["replay", trace_file, "--checker", "velodrome"])
        assert code == 0  # serial trace: no cycle

    def test_record_jsonl_by_extension(self, target_module, tmp_path, capsys):
        from repro.trace.serialize import is_jsonl_trace

        trace_file = str(tmp_path / "t.jsonl")
        assert main(["record", f"{target_module}:buggy", "-o", trace_file]) == 0
        assert is_jsonl_trace(trace_file)

    def test_record_format_flag(self, target_module, tmp_path, capsys):
        from repro.trace.serialize import is_jsonl_trace

        trace_file = str(tmp_path / "t.dat")
        code = main(
            ["record", f"{target_module}:buggy", "-o", trace_file,
             "--format", "jsonl"]
        )
        assert code == 0
        assert is_jsonl_trace(trace_file)


class TestCheckTrace:
    @pytest.fixture
    def trace_file(self, target_module, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(["record", f"{target_module}:buggy", "-o", path])
        capsys.readouterr()
        return path

    def test_in_process(self, trace_file, capsys):
        code = main(["check-trace", trace_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "Atomicity violation" in out and "'X'" in out

    def test_sharded(self, trace_file, capsys):
        code = main(["check-trace", trace_file, "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Atomicity violation" in out

    def test_jobs_zero_means_per_cpu(self, trace_file, capsys):
        assert main(["check-trace", trace_file, "--jobs", "0"]) == 1

    def test_engine_option(self, trace_file, capsys):
        assert main(["check-trace", trace_file, "--engine", "labels"]) == 1

    def test_clean_trace_exit_0(self, target_module, tmp_path, capsys):
        path = str(tmp_path / "clean.jsonl")
        main(["record", f"{target_module}:clean", "-o", path])
        capsys.readouterr()
        code = main(["check-trace", path, "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no violations" in out

    def test_v1_json_trace_accepted(self, target_module, tmp_path, capsys):
        path = str(tmp_path / "t.json")
        main(["record", f"{target_module}:buggy", "-o", path])
        capsys.readouterr()
        assert main(["check-trace", path, "--jobs", "2"]) == 1

    def test_regiontrack_checker(self, trace_file, capsys):
        code = main(["check-trace", trace_file, "--checker", "regiontrack"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Atomicity violation" in out and "'X'" in out


class TestCheckTraceStreaming:
    @pytest.fixture
    def trace_file(self, target_module, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(["record", f"{target_module}:buggy", "-o", path])
        capsys.readouterr()
        return path

    def test_streaming_matches_offline_output(self, trace_file, capsys):
        offline_code = main(["check-trace", trace_file])
        offline = capsys.readouterr().out
        code = main(["check-trace", trace_file, "--streaming", "--window", "8"])
        out = capsys.readouterr().out
        assert code == offline_code == 1
        report_lines = [
            line for line in out.splitlines() if not line.startswith("streaming:")
        ]
        assert "\n".join(report_lines) + "\n" == offline

    def test_status_line_shows_window_and_counters(self, trace_file, capsys):
        main(["check-trace", trace_file, "--streaming", "--window", "2"])
        out = capsys.readouterr().out
        assert "streaming: window=2" in out
        assert "event(s)" in out and "sweep(s)" in out

    def test_default_and_unbounded_windows(self, trace_file, capsys):
        main(["check-trace", trace_file, "--streaming"])
        assert "streaming: window=4096" in capsys.readouterr().out
        main(["check-trace", trace_file, "--streaming", "--window", "0"])
        assert "streaming: window=unbounded" in capsys.readouterr().out

    def test_streaming_sharded(self, trace_file, capsys):
        assert main(
            ["check-trace", trace_file, "--streaming", "--window", "1",
             "--jobs", "2"]
        ) == 1

    def test_window_requires_streaming(self, trace_file, capsys):
        with pytest.raises(SystemExit, match="--window needs --streaming"):
            main(["check-trace", trace_file, "--window", "8"])

    def test_streaming_velodrome_refused(self, trace_file, capsys):
        from repro.errors import CheckerError

        with pytest.raises(CheckerError, match="cannot stream"):
            main(["check-trace", trace_file, "--streaming",
                  "--checker", "velodrome"])


class TestCheckTraceFaultTolerance:
    @pytest.fixture
    def trace_file(self, target_module, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(["record", f"{target_module}:buggy", "-o", path])
        capsys.readouterr()
        return path

    def test_checkpoint_then_resume(self, trace_file, tmp_path, capsys):
        import os

        ck = str(tmp_path / "ck")
        code = main(
            ["check-trace", trace_file, "--jobs", "2", "--checkpoint", ck]
        )
        fresh = capsys.readouterr().out
        assert code == 1
        os.unlink(os.path.join(ck, "shard-00000.json"))
        code = main(
            [
                "check-trace", trace_file, "--jobs", "2",
                "--checkpoint", ck, "--resume",
            ]
        )
        assert code == 1
        assert capsys.readouterr().out == fresh

    def test_resume_requires_checkpoint(self, trace_file):
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["check-trace", trace_file, "--resume"])

    def test_kill_injection_still_completes(
        self, trace_file, monkeypatch, capsys
    ):
        from repro.checker.supervisor import FAULT_KILL_ENV

        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        code = main(
            ["check-trace", trace_file, "--jobs", "2",
             "--on-shard-failure", "retry"]
        )
        assert code == 1
        assert "Atomicity violation" in capsys.readouterr().out

    def test_lenient_flag_prints_skip_count(self, trace_file, capsys):
        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        code = main(["check-trace", trace_file, "--lenient"])
        out = capsys.readouterr().out
        assert code == 1
        assert "skipped 1 undecodable trace line(s)" in out

    def test_strict_default_fails_on_garbage(self, trace_file):
        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(Exception):
            main(["check-trace", trace_file])

    def test_shard_timeout_and_retries_flags_parse(self, trace_file, capsys):
        code = main(
            ["check-trace", trace_file, "--jobs", "2", "--retries", "1",
             "--shard-timeout", "30"]
        )
        assert code == 1

    def test_metrics_include_fault_counters(
        self, trace_file, tmp_path, monkeypatch, capsys
    ):
        import json

        from repro.checker.supervisor import FAULT_KILL_ENV

        out_path = str(tmp_path / "metrics.json")
        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        main(
            ["check-trace", trace_file, "--jobs", "2",
             "--metrics", out_path]
        )
        capsys.readouterr()
        with open(out_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["counters"]["sharded.shard_failures"] == 1
        assert data["counters"]["sharded.retries"] == 1
        # And `repro stats` renders them.
        code = main(["stats", out_path])
        rendered = capsys.readouterr().out
        assert code == 0
        assert "sharded.shard_failures" in rendered
        assert "sharded.retries" in rendered


class TestCoverage:
    def test_clean_coverage_exit_0(self, target_module, capsys):
        code = main(["coverage", f"{target_module}:buggy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "STANDS" in out

    def test_output_lists_patterns(self, target_module, capsys):
        main(["coverage", f"{target_module}:clean"])
        out = capsys.readouterr().out
        assert "static access pattern" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("check", "suite", "workload", "table1", "fig13"):
            assert command in out


class TestCompare:
    def test_matrix_covers_all_analyses(self, target_module, capsys):
        code = main(["compare", f"{target_module}:buggy"])
        out = capsys.readouterr().out
        assert code == 1
        for label in (
            "optimized (paper)",
            "basic (reference)",
            "velodrome (this trace)",
            "velodrome + explorer",
            "race detector",
        ):
            assert label in out
        assert "schedules" in out  # explorer note column

    def test_clean_program_exit_0(self, target_module, capsys):
        code = main(["compare", f"{target_module}:clean"])
        assert code == 0


class TestLint:
    def test_buggy_flagged(self, target_module, capsys):
        code = main(["lint", f"{target_module}:buggy"])
        out = capsys.readouterr().out
        assert code == 1
        assert "SAV001" in out and "'X'" in out

    def test_clean_has_no_errors(self, target_module, capsys):
        code = main(["lint", f"{target_module}:clean"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_output(self, target_module, capsys):
        import json

        code = main(["lint", f"{target_module}:buggy", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["counts"]["errors"] >= 1
        assert data["candidates"][0]["code"] == "SAV001"

    def test_spec_file(self, tmp_path, capsys):
        import json

        spec = [
            "task",
            [["finish", [
                ["spawn", [["access", "c", "read"], ["access", "c", "write"]]],
                ["spawn", [["access", "c", "write"]]],
            ]]],
        ]
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        code = main(["lint", "--spec", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "SAV001" in out

    def test_needs_exactly_one_target(self):
        with pytest.raises(SystemExit):
            main(["lint"])


class TestLintFailOn:
    def test_default_gate_is_error(self, target_module):
        # ``clean`` carries SAV102 warnings (dynamic tuple index) but no
        # errors: the default --fail-on error passes it.
        assert main(["lint", f"{target_module}:clean"]) == 0
        assert main(["lint", f"{target_module}:buggy"]) == 1

    def test_warning_gate(self, target_module, capsys):
        code = main(["lint", f"{target_module}:clean", "--fail-on", "warning"])
        out = capsys.readouterr().out
        assert "SAV102" in out
        assert code == 1

    def test_never_gate(self, target_module):
        assert main(["lint", f"{target_module}:buggy", "--fail-on", "never"]) == 0


class TestLintSarifFlag:
    def test_writes_valid_log(self, target_module, tmp_path, capsys):
        import json

        out_path = tmp_path / "lint.sarif"
        code = main(["lint", f"{target_module}:buggy", "--sarif", str(out_path)])
        assert code == 1
        assert f"SARIF log written to {out_path}" in capsys.readouterr().out
        log = json.loads(out_path.read_text())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert any(r["ruleId"] == "SAV001" for r in run["results"])


class TestLintBaselineFlag:
    def test_update_then_compare(self, target_module, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        code = main(
            ["lint", f"{target_module}:buggy", "--baseline", baseline,
             "--update-baseline"]
        )
        assert code == 0
        assert "updated" in capsys.readouterr().out
        code = main(["lint", f"{target_module}:buggy", "--baseline", baseline])
        out = capsys.readouterr().out
        assert code == 0  # every finding is known: the gate passes
        assert "0 new" in out

    def test_new_findings_fail_the_gate(self, target_module, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        main(
            ["lint", f"{target_module}:clean", "--baseline", baseline,
             "--update-baseline"]
        )
        capsys.readouterr()
        code = main(["lint", f"{target_module}:buggy", "--baseline", baseline])
        out = capsys.readouterr().out
        assert code == 1
        assert "NEW SAV001" in out

    def test_missing_baseline_is_an_error(self, target_module, tmp_path):
        with pytest.raises(SystemExit, match="--update-baseline"):
            main(
                ["lint", f"{target_module}:buggy", "--baseline",
                 str(tmp_path / "missing.json")]
            )

    def test_update_requires_baseline_path(self, target_module):
        with pytest.raises(SystemExit, match="--update-baseline needs"):
            main(["lint", f"{target_module}:buggy", "--update-baseline"])


class TestStaticPrefilterFlag:
    def test_check_refusal_is_printed(self, target_module, capsys):
        # clean's tuple indices make the skeleton imprecise: the refusal
        # (never a silent skip) must land in the output.
        code = main(["check", f"{target_module}:clean", "--static-prefilter"])
        out = capsys.readouterr().out
        assert code == 0
        assert "static prefilter: disabled" in out

    def test_check_prefilter_keeps_violation(self, target_module, capsys):
        code = main(["check", f"{target_module}:buggy", "--static-prefilter"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Atomicity violation" in out
        assert "static prefilter" in out

    def test_check_trace_prefilter_sharded(self, target_module, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["record", f"{target_module}:buggy", "-o", str(trace)])
        capsys.readouterr()
        code = main([
            "check-trace", str(trace), "--jobs", "2",
            "--static-prefilter", f"{target_module}:buggy",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "Atomicity violation" in out
        assert "static prefilter" in out


class TestStatsHistograms:
    def test_stats_renders_histograms(self, tmp_path, capsys):
        # Regression: Histogram.mean is a property; the stats renderer
        # used to call it and crash on any snapshot with histograms.
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder()
        recorder.count("fuzz.runs", 3)
        recorder.observe("worker.elapsed_s", 0.25)
        recorder.observe("worker.elapsed_s", 0.75)
        path = tmp_path / "metrics.json"
        recorder.snapshot().dump(str(path))

        code = main(["stats", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean=0.5" in out


class TestFuzzCommand:
    def test_clean_campaign_exit_0(self, tmp_path, capsys):
        import json

        summary_file = tmp_path / "summary.json"
        metrics_file = tmp_path / "metrics.json"
        code = main([
            "fuzz", "--seed", "1", "--runs", "5", "--jobs", "1",
            "--json", str(summary_file), "--metrics", str(metrics_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all configurations agree" in out

        summary = json.loads(summary_file.read_text())
        assert summary["ok"] is True
        assert summary["runs"] == 5
        assert summary["events"] > 0
        assert summary["config"]["tasks"] == 6

        metrics = json.loads(metrics_file.read_text())
        assert metrics["counters"]["fuzz.runs"] == 5

    def test_generator_knobs_are_wired(self, tmp_path, capsys):
        import json

        summary_file = tmp_path / "summary.json"
        code = main([
            "fuzz", "--seed", "3", "--runs", "2", "--jobs", "1",
            "--tasks", "2", "--depth", "1", "--locations", "1",
            "--locks", "0", "--lock-density", "0.0",
            "--json", str(summary_file),
        ])
        capsys.readouterr()
        assert code == 0
        summary = json.loads(summary_file.read_text())
        assert summary["config"]["tasks"] == 2
        assert summary["config"]["locations"] == 1

    def test_disagreement_exits_1_and_writes_reproducer(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.fuzz.oracle import check_spec as real_check_spec
        from repro.report import ViolationReport
        from repro.runtime.observer import RuntimeObserver

        class Blind(RuntimeObserver):
            def __init__(self):
                self.report = ViolationReport()

            def on_memory(self, event):
                pass

        def sabotaged(spec, seed=None, jobs=4, recorder=None, **kwargs):
            return real_check_spec(
                spec, seed=seed, jobs=1, recorder=recorder,
                extra_checkers={"blind": Blind}, schedules=False,
            )

        import repro.fuzz.harness as harness

        monkeypatch.setattr(harness, "check_spec", sabotaged)
        report_dir = tmp_path / "reports"
        code = main([
            "fuzz", "--seed", "1", "--runs", "4", "--jobs", "1", "--shrink",
            "--report-dir", str(report_dir),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "disagreement" in out
        written = list(report_dir.glob("reproducer_seed_*.py"))
        assert written, "shrunk reproducers must land in --report-dir"
        assert "def test_fuzz_reproducer" in written[0].read_text()
