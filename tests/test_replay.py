"""Trace replay: offline == online, and permutation invariance.

The optimized checker's verdict must be identical when a recorded trace is
replayed in any *legal* alternative order (a schedule the explorer deems
possible) -- the operational form of the paper's schedule-insensitivity
claim.
"""

import pytest

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker, VelodromeChecker
from repro.errors import TraceError
from repro.runtime import TaskProgram, run_program
from repro.trace.explore import InterleavingExplorer
from repro.trace.replay import replay_memory_events, replay_trace
from repro.trace.trace import Trace


def record(body, initial=None):
    result = run_program(
        TaskProgram(body, initial_memory=initial or {}), record_trace=True
    )
    return result


def rmw_vs_writer(ctx):
    def rmw(inner):
        value = inner.read("X")
        inner.write("X", value + 1)

    def writer(inner):
        inner.write("X", 100)

    ctx.spawn(rmw)
    ctx.spawn(writer)
    ctx.sync()


class TestOfflineEqualsOnline:
    @pytest.mark.parametrize(
        "make_checker",
        [OptAtomicityChecker, BasicAtomicityChecker, VelodromeChecker],
        ids=["optimized", "basic", "velodrome"],
    )
    def test_replay_matches_live(self, make_checker):
        live_checker = make_checker()
        result = run_program(
            TaskProgram(rmw_vs_writer), observers=[live_checker], record_trace=True
        )
        replayed = replay_trace(result.trace, make_checker())
        assert set(replayed.locations()) == set(live_checker.report.locations())
        assert len(replayed) == len(live_checker.report)


class TestPermutationInvariance:
    def test_every_legal_order_same_verdict(self):
        result = record(rmw_vs_writer)
        explorer = InterleavingExplorer(result.trace)
        verdicts = set()
        for schedule in explorer.schedules():
            checker = OptAtomicityChecker()
            report = replay_memory_events(schedule, checker, dpst=result.trace.dpst)
            verdicts.add(frozenset(report.locations()))
        assert verdicts == {frozenset({"X"})}

    def test_velodrome_is_order_sensitive(self):
        """The contrast: some legal orders show Velodrome the cycle, the
        serial ones do not."""
        result = record(rmw_vs_writer)
        explorer = InterleavingExplorer(result.trace)
        verdicts = set()
        for schedule in explorer.schedules():
            checker = VelodromeChecker()
            report = replay_memory_events(schedule, checker)
            verdicts.add(bool(report))
        assert verdicts == {True, False}


class TestReplayGuards:
    def test_dpst_checker_requires_tree(self):
        trace = Trace([], dpst=None)
        with pytest.raises(TraceError):
            replay_trace(trace, OptAtomicityChecker())

    def test_velodrome_replays_without_tree(self):
        trace = Trace([], dpst=None)
        report = replay_trace(trace, VelodromeChecker())
        assert not report
