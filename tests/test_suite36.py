"""The 36-program violation suite (paper Section 4, "Detection of
atomicity violations").

The paper: "Our prototype detected all these violations without false
positives."  Here every case is run through the optimized checker (both
modes), the basic checker, and Velodrome; the first three must report
exactly the expected metadata keys; Velodrome must stay quiet on the
serial schedule (trace sensitivity) except where the serial schedule is
itself unserializable (it never is under the child-first executor).
"""

import pytest

from repro.checker import (
    BasicAtomicityChecker,
    OptAtomicityChecker,
    VelodromeChecker,
)
from repro.runtime import RandomOrderExecutor, SerialExecutor, run_program
from repro.suite import all_cases, by_category, safe_cases, violating_cases

CASES = all_cases()


class TestRegistry:
    def test_exactly_36_programs(self):
        assert len(CASES) == 36

    def test_seven_categories(self):
        groups = by_category()
        assert set(groups) == {
            "patterns",
            "schedules",
            "locks",
            "multivar",
            "nesting",
            "safe",
            "structure",
        }

    def test_category_sizes(self):
        sizes = {name: len(cases) for name, cases in by_category().items()}
        assert sizes == {
            "patterns": 8,
            "schedules": 4,
            "locks": 6,
            "multivar": 4,
            "nesting": 5,
            "safe": 4,
            "structure": 5,
        }

    def test_violating_and_safe_partition(self):
        assert len(violating_cases()) + len(safe_cases()) == 36
        assert len(violating_cases()) >= 15  # a healthy majority violate

    def test_descriptions_present(self):
        for case in CASES:
            assert case.description.strip()

    def test_lookup_by_name(self):
        from repro.suite import get

        case = get("sched_paper_figure1")
        assert case.category == "schedules"


def _verdict(case, checker):
    result = run_program(case.build(), observers=[checker])
    return set(result.report().locations())


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
class TestDetection:
    def test_optimized_paper_mode(self, case):
        assert _verdict(case, OptAtomicityChecker(mode="paper")) == set(case.expected)

    def test_optimized_thorough_mode(self, case):
        assert _verdict(case, OptAtomicityChecker(mode="thorough")) == set(
            case.expected
        )

    def test_basic_checker(self, case):
        assert _verdict(case, BasicAtomicityChecker()) == set(case.expected)

    def test_velodrome_quiet_on_serial_schedule(self, case):
        """Child-first serial schedules execute each step atomically."""
        result = run_program(
            case.build(),
            executor=SerialExecutor(policy="child_first"),
            observers=[VelodromeChecker()],
        )
        assert not result.report()


@pytest.mark.parametrize(
    "case", violating_cases(), ids=lambda c: c.name
)
def test_detection_is_schedule_insensitive(case):
    """Every violating case is found under shuffled schedules too."""
    for seed in (1, 2):
        result = run_program(
            case.build(),
            executor=RandomOrderExecutor(seed=seed),
            observers=[OptAtomicityChecker()],
        )
        assert set(result.report().locations()) == set(case.expected), case.name


@pytest.mark.parametrize("case", safe_cases(), ids=lambda c: c.name)
def test_no_false_positives_under_random_schedules(case):
    for seed in (3, 4):
        result = run_program(
            case.build(),
            executor=RandomOrderExecutor(seed=seed),
            observers=[OptAtomicityChecker()],
        )
        assert not result.report(), case.name
