"""Failure injection: buggy kernel variants are caught, precisely.

For every injected bug the optimized checker must:

1. detect it from a single serial trace (where nothing interleaved);
2. implicate *only* locations in the documented buggy family, despite the
   hundreds of healthy accesses around it (precision at kernel scale);
3. agree with the basic reference checker at location granularity;
4. return the same verdict under randomized schedules.
"""

import pytest

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker, VelodromeChecker
from repro.runtime import RandomOrderExecutor, run_program
from repro.workloads.buggy import all_variants, location_head

VARIANTS = all_variants()


class TestRegistry:
    def test_variants_present(self):
        assert len(VARIANTS) == 6
        names = {v.name for v in VARIANTS}
        assert "kmeans_unlocked_reduction" in names
        assert "fluidanimate_missing_sync" in names

    def test_base_workloads_exist(self):
        from repro.workloads import get

        for variant in VARIANTS:
            assert get(variant.base_workload).name == variant.base_workload


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
class TestDetection:
    def test_detected_from_serial_trace(self, variant):
        checker = OptAtomicityChecker()
        run_program(variant.build(1), observers=[checker])
        assert checker.report, f"{variant.name}: injected bug not detected"

    def test_only_buggy_family_implicated(self, variant):
        checker = OptAtomicityChecker()
        run_program(variant.build(1), observers=[checker])
        implicated = {location_head(loc) for loc in checker.report.locations()}
        assert implicated <= set(variant.location_heads), (
            f"{variant.name}: false positives outside the injected bug: "
            f"{implicated - set(variant.location_heads)}"
        )
        assert implicated & set(variant.location_heads)

    def test_thorough_mode_equals_basic(self, variant):
        """The complete modes agree exactly at location granularity."""
        thorough = OptAtomicityChecker(mode="thorough")
        basic = BasicAtomicityChecker()
        run_program(variant.build(1), observers=[thorough, basic])
        assert set(thorough.report.locations()) == set(basic.report.locations())

    def test_paper_mode_subset_and_sufficient(self, variant):
        """Paper mode may under-report *instances* (the documented Fig. 9
        interleaver-check omission shows up naturally in the delrefine
        variant), but it must still expose the injected bug's family."""
        paper = OptAtomicityChecker(mode="paper")
        thorough = OptAtomicityChecker(mode="thorough")
        run_program(variant.build(1), observers=[paper, thorough])
        assert set(paper.report.locations()) <= set(thorough.report.locations())
        implicated = {location_head(l) for l in paper.report.locations()}
        assert implicated & set(variant.location_heads)

    def test_schedule_insensitive(self, variant):
        """The complete (thorough) mode's verdict is schedule-independent."""
        verdicts = []
        for seed in (1, 2):
            checker = OptAtomicityChecker(mode="thorough")
            run_program(
                variant.build(1),
                executor=RandomOrderExecutor(seed=seed),
                observers=[checker],
            )
            verdicts.append(frozenset(checker.report.locations()))
        assert verdicts[0] == verdicts[1]

    def test_velodrome_blind_on_serial_trace(self, variant):
        """The contrast, at kernel scale: trace checking sees nothing."""
        checker = VelodromeChecker()
        run_program(variant.build(1), observers=[checker])
        assert not checker.report


class TestScaling:
    @pytest.mark.parametrize(
        "variant",
        [v for v in VARIANTS if v.name == "kmeans_unlocked_reduction"],
        ids=lambda v: v.name,
    )
    def test_detection_stable_across_scales(self, variant):
        for scale in (1, 2):
            checker = OptAtomicityChecker()
            run_program(variant.build(scale), observers=[checker])
            implicated = {location_head(l) for l in checker.report.locations()}
            assert implicated <= set(variant.location_heads)
            assert implicated
