"""GlobalSpace / LocalSpace unit tests: slots, replacement, versions."""

from repro.checker.access import AccessEntry, TwoAccessPattern
from repro.checker.metadata import GlobalSpace, LocalCell, LocalSpace
from repro.report import READ, WRITE


def entry(step, access_type=READ):
    return AccessEntry(step=step, access_type=access_type)


def pattern(step, first=READ, second=WRITE):
    return TwoAccessPattern(entry(step, first), entry(step, second))


def parallel_all(a, b):
    return True


def series_all(a, b):
    return False


class TestSingleSlots:
    def test_first_entry_fills_r1(self):
        space = GlobalSpace()
        space.update_single("R", entry(1), parallel_all)
        assert space.R1.step == 1
        assert space.R2 is None

    def test_parallel_second_fills_r2(self):
        space = GlobalSpace()
        space.update_single("R", entry(1), parallel_all)
        space.update_single("R", entry(2), parallel_all)
        assert (space.R1.step, space.R2.step) == (1, 2)

    def test_series_replaces_r1(self):
        space = GlobalSpace()
        space.update_single("R", entry(1), parallel_all)
        space.update_single("R", entry(2), series_all)
        assert space.R1.step == 2
        assert space.R2 is None

    def test_third_parallel_entry_dropped(self):
        space = GlobalSpace()
        for step in (1, 2, 3):
            space.update_single("R", entry(step), parallel_all)
        assert (space.R1.step, space.R2.step) == (1, 2)

    def test_write_slots_independent(self):
        space = GlobalSpace()
        space.update_single("R", entry(1), parallel_all)
        space.update_single("W", entry(2, WRITE), parallel_all)
        assert space.R1.step == 1
        assert space.W1.step == 2
        assert list(space.read_singles()) == [space.R1]
        assert list(space.write_singles()) == [space.W1]

    def test_singles_accessor(self):
        space = GlobalSpace()
        space.update_single("W", entry(5, WRITE), parallel_all)
        first, second = space.singles("W")
        assert first.step == 5 and second is None


class TestPatternSlots:
    def test_store_into_empty(self):
        space = GlobalSpace()
        assert space.update_pattern("RW", pattern(1), parallel_all)
        assert space.RW.step == 1

    def test_parallel_occupant_blocks_in_paper_mode(self):
        space = GlobalSpace()
        space.update_pattern("RW", pattern(1), parallel_all)
        assert not space.update_pattern("RW", pattern(2), parallel_all)
        assert space.RW.step == 1

    def test_series_occupant_replaced(self):
        space = GlobalSpace()
        space.update_pattern("RW", pattern(1), parallel_all)
        assert space.update_pattern("RW", pattern(2), series_all)
        assert space.RW.step == 2

    def test_thorough_mode_keeps_overflow(self):
        space = GlobalSpace()
        space.update_pattern("RW", pattern(1), parallel_all, thorough=True)
        assert space.update_pattern("RW", pattern(2), parallel_all, thorough=True)
        stored = list(space.patterns("RW"))
        assert {p.step for p in stored} == {1, 2}

    def test_thorough_same_step_not_duplicated(self):
        space = GlobalSpace()
        space.update_pattern("RW", pattern(1), parallel_all, thorough=True)
        assert not space.update_pattern("RW", pattern(1), parallel_all, thorough=True)
        assert len(list(space.patterns("RW"))) == 1

    def test_all_patterns_iterates_kinds(self):
        space = GlobalSpace()
        space.update_pattern("RR", pattern(1, READ, READ), parallel_all)
        space.update_pattern("WW", pattern(2, WRITE, WRITE), parallel_all)
        assert {p.kind for p in space.all_patterns()} == {"RR", "WW"}


class TestEntryCount:
    def test_bounded_by_twelve_in_paper_mode(self):
        space = GlobalSpace()
        for step in range(10):
            space.update_single("R", entry(step), parallel_all)
            space.update_single("W", entry(step, WRITE), parallel_all)
            for kind, (a, b) in {
                "RR": (READ, READ),
                "RW": (READ, WRITE),
                "WR": (WRITE, READ),
                "WW": (WRITE, WRITE),
            }.items():
                space.update_pattern(kind, pattern(step, a, b), parallel_all)
        assert space.entry_count() == 12

    def test_version_bumps_on_mutation(self):
        space = GlobalSpace()
        v0 = space.version
        space.update_single("R", entry(1), parallel_all)
        v1 = space.version
        assert v1 > v0
        space.update_single("R", entry(2), parallel_all)
        assert space.version > v1
        # Dropped entry (both slots parallel) must NOT bump.
        v2 = space.version
        space.update_single("R", entry(3), parallel_all)
        assert space.version == v2


class TestLocalSpace:
    def test_fresh_cell(self):
        local = LocalSpace(task_id=1)
        cell, had_prior = local.cell_for("X", step=4)
        assert not had_prior
        assert cell.is_empty
        assert cell.step == 4

    def test_prior_detected(self):
        local = LocalSpace(1)
        cell, _ = local.cell_for("X", 4)
        cell.read = entry(4)
        cell2, had_prior = local.cell_for("X", 4)
        assert had_prior
        assert cell2 is cell

    def test_stale_cell_replaced_on_new_step(self):
        """A task's later step is a different atomic region."""
        local = LocalSpace(1)
        cell, _ = local.cell_for("X", 4)
        cell.read = entry(4)
        cell2, had_prior = local.cell_for("X", 9)
        assert not had_prior
        assert cell2.step == 9
        assert cell2.is_empty

    def test_entry_count(self):
        local = LocalSpace(1)
        cell, _ = local.cell_for("X", 4)
        cell.read = entry(4)
        cell.write = entry(4, WRITE)
        cell_y, _ = local.cell_for("Y", 4)
        cell_y.read = entry(4)
        assert local.entry_count() == 3
