"""The columnar (v3) trace format: writer, reader, sniffing, sharding."""

import json
import os
import struct

import pytest

from repro.errors import TraceError
from repro.runtime import TaskProgram, run_program
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.trace.columnar import (
    COLUMNAR_MAGIC,
    ColumnarTraceReader,
    ColumnarTraceWriter,
    dump_trace_columnar,
    is_columnar_trace,
)
from repro.trace.serialize import (
    TraceReader,
    dump_trace,
    dump_trace_jsonl,
    is_jsonl_trace,
    load_trace,
    open_trace,
)
from repro.trace.trace import Trace


def recorded_run():
    def child(ctx, i):
        with ctx.lock("L"):
            ctx.add(("cell", i % 2), 1)

    def main(ctx):
        for i in range(3):
            ctx.spawn(child, i)
        ctx.sync()

    return run_program(
        TaskProgram(main, initial_memory={("cell", 0): 0, ("cell", 1): 0}),
        record_trace=True,
    )


@pytest.fixture
def trace():
    return recorded_run().trace


def event_rows(events):
    """Comparable rows: every field of every event, in order."""
    return [(type(e).__name__,) + tuple(vars(e).values()) for e in events]


class TestRoundTrip:
    def test_every_event_type_survives(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        loaded = load_trace(path)
        assert event_rows(loaded.events) == event_rows(trace.events)
        assert len(loaded.dpst) == len(trace.dpst)
        loaded.validate()

    def test_all_seven_event_kinds_covered(self, trace):
        # The fixture must keep exercising every tag the format encodes.
        kinds = {type(e) for e in trace.events}
        assert kinds == {
            TaskSpawnEvent, TaskBeginEvent, TaskEndEvent, SyncEvent,
            MemoryEvent, AcquireEvent, ReleaseEvent,
        }

    def test_exotic_locations(self, tmp_path):
        # Locations that collide under == / hash (1, 1.0, True) must
        # intern separately; floats, None, and nesting must round-trip.
        locations = [
            1, 1.0, True, 0, False, None, "x",
            ("a", 0.5, None), ("a", ("b", False)),
        ]
        events = [
            MemoryEvent(i, 0, i, loc, "read", ()) for i, loc in
            enumerate(locations)
        ]
        path = str(tmp_path / "t.trc")
        with ColumnarTraceWriter(path) as writer:
            writer.write_all(events)
        loaded = list(ColumnarTraceReader(path).events())
        got = [e.location for e in loaded]
        assert [repr(l) for l in got] == [repr(l) for l in locations]

    def test_locksets_survive(self, tmp_path):
        events = [
            MemoryEvent(0, 0, 0, "x", "write", ("L", "M")),
            MemoryEvent(1, 1, 0, "x", "write", ()),
            MemoryEvent(2, 2, 0, "x", "write", ("L",)),
        ]
        path = str(tmp_path / "t.trc")
        with ColumnarTraceWriter(path) as writer:
            writer.write_all(events)
        loaded = list(ColumnarTraceReader(path).events())
        assert [e.lockset for e in loaded] == [("L", "M"), (), ("L",)]

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(Trace([]), path)
        reader = ColumnarTraceReader(path)
        assert reader.count == 0
        assert list(reader.events()) == []
        assert list(reader.memory_events(shard=0, jobs=4)) == []

    def test_dpst_free_trace(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        with ColumnarTraceWriter(path) as writer:
            writer.write_all(trace.events)
        reader = open_trace(path)
        assert reader.dpst is None
        assert len(list(reader.events())) == len(trace.events)

    def test_uncompressed_frames(self, trace, tmp_path):
        plain = str(tmp_path / "plain.trc")
        packed = str(tmp_path / "packed.trc")
        dump_trace_columnar(trace, plain, compress=False)
        dump_trace_columnar(trace, packed, compress=True)
        assert event_rows(load_trace(plain).events) == event_rows(
            load_trace(packed).events
        )

    def test_small_frames_flush_correctly(self, trace, tmp_path):
        for frame_events in (1, 2, len(trace.events), 10_000):
            path = str(tmp_path / f"t{frame_events}.trc")
            dump_trace_columnar(trace, path, frame_events=frame_events)
            assert len(load_trace(path)) == len(trace)

    def test_multiple_passes(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        reader = open_trace(path)
        first = [e.seq for e in reader.events()]
        second = [e.seq for e in reader.events()]
        assert first == second == [e.seq for e in trace.events]


class TestWriter:
    def test_closed_writer_rejects_events(self, trace, tmp_path):
        writer = ColumnarTraceWriter(str(tmp_path / "t.trc"))
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(TraceError):
            writer.write(trace.events[0])

    def test_bad_frame_events(self, tmp_path):
        with pytest.raises(TraceError):
            ColumnarTraceWriter(str(tmp_path / "t.trc"), frame_events=0)

    def test_unknown_event_type_rejected(self, tmp_path):
        path = str(tmp_path / "t.trc")
        with ColumnarTraceWriter(path) as writer:
            with pytest.raises(TraceError):
                writer.write(object())
            writer.close()

    def test_unserializable_location_rejected_eagerly(self, tmp_path):
        writer = ColumnarTraceWriter(str(tmp_path / "t.trc"))
        with pytest.raises(TraceError):
            writer.write(MemoryEvent(0, 0, 0, {"not": "hashable-loc"}, "read", ()))
        writer.discard()

    def test_publish_is_atomic(self, trace, tmp_path):
        # Nothing appears at the target path until close(); the temp
        # sibling disappears after publication.
        path = str(tmp_path / "t.trc")
        writer = ColumnarTraceWriter(path, dpst=trace.dpst)
        writer.write_all(trace.events)
        assert not os.path.exists(path)
        assert any(n.startswith("t.trc.tmp.") for n in os.listdir(tmp_path))
        writer.close()
        assert os.path.exists(path)
        assert os.listdir(tmp_path) == ["t.trc"]

    def test_context_manager_discards_on_error(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        with pytest.raises(RuntimeError):
            with ColumnarTraceWriter(path) as writer:
                writer.write_all(trace.events)
                raise RuntimeError("recording failed")
        assert os.listdir(tmp_path) == []  # no trace, no temp litter

    def test_discard_is_idempotent(self, tmp_path):
        writer = ColumnarTraceWriter(str(tmp_path / "t.trc"))
        writer.discard()
        writer.discard()
        assert os.listdir(tmp_path) == []


class TestSharding:
    def shards(self, reader, jobs):
        return [
            [e.seq for e in reader.memory_events(shard=s, jobs=jobs)]
            for s in range(jobs)
        ]

    def test_shards_partition_the_memory_events(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        shards = self.shards(open_trace(path), 3)
        merged = sorted(seq for shard in shards for seq in shard)
        assert merged == [e.seq for e in trace.memory_events()]

    def test_v2_and_v3_assign_identical_shards(self, trace, tmp_path):
        # The footer shard keys must agree with the v2 "sk" stamps --
        # a checkpointed v2 run must be resumable against a v3 copy.
        v2 = str(tmp_path / "t.jsonl")
        v3 = str(tmp_path / "t.trc")
        dump_trace_jsonl(trace, v2)
        dump_trace_columnar(trace, v3)
        for jobs in (1, 2, 4, 7):
            assert self.shards(open_trace(v2), jobs) == self.shards(
                open_trace(v3), jobs
            )

    def test_unsharded_memory_stream(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        streamed = list(open_trace(path).memory_events())
        assert event_rows(streamed) == event_rows(list(trace.memory_events()))


class TestSniffing:
    def test_magic_prefix(self, trace, tmp_path):
        v1 = str(tmp_path / "t.json")
        v2 = str(tmp_path / "t.jsonl")
        v3 = str(tmp_path / "t.trc")
        dump_trace(trace, v1, format="json")
        dump_trace(trace, v2, format="jsonl")
        dump_trace(trace, v3, format="columnar")
        assert is_columnar_trace(v3)
        assert not is_columnar_trace(v1)
        assert not is_columnar_trace(v2)
        assert not is_jsonl_trace(v3)

    def test_missing_file_is_not_columnar(self, tmp_path):
        assert not is_columnar_trace(str(tmp_path / "absent.trc"))

    def test_extension_does_not_matter(self, trace, tmp_path):
        path = str(tmp_path / "mislabeled.jsonl")
        dump_trace(trace, path, format="columnar")
        assert is_columnar_trace(path)
        assert TraceReader(path).version == 3

    def test_trc_extension_selects_columnar_automatically(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace(trace, path)  # format="auto"
        assert is_columnar_trace(path)


class TestFrontDoor:
    """v3 files flow through the same TraceReader facade as v1/v2."""

    def test_reader_delegates(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        reader = TraceReader(path)
        assert reader.version == 3
        assert len(reader.dpst) == len(trace.dpst)
        assert len(reader.read()) == len(trace)
        assert len(list(reader.memory_events(shard=0, jobs=1))) == len(
            trace.memory_events()
        )
        assert reader.lines_skipped == 0

    def test_facade_close_reaches_the_v3_reader(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        with open_trace(path) as reader:
            next(reader.events())
        assert reader.closed
        with pytest.raises(TraceError):
            list(reader.events())

    def test_closed_v3_reader_refuses_sharded_streams(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        reader = open_trace(path)
        reader.close()
        with pytest.raises(TraceError):
            list(reader.memory_events(shard=0, jobs=2))


class TestCorruption:
    def dump(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path, frame_events=4)
        return path

    def test_truncated_trailer(self, trace, tmp_path):
        path = self.dump(trace, tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-4])
        with pytest.raises(TraceError) as err:
            ColumnarTraceReader(path)
        assert "t.trc" in str(err.value)

    def test_magicless_file(self, trace, tmp_path):
        path = str(tmp_path / "bad.trc")
        open(path, "wb").write(b"definitely not a trace")
        with pytest.raises(TraceError):
            ColumnarTraceReader(path)

    def test_header_only_file(self, tmp_path):
        path = str(tmp_path / "torn.trc")
        open(path, "wb").write(COLUMNAR_MAGIC)
        with pytest.raises(TraceError):
            ColumnarTraceReader(path)

    def corrupt_first_frame(self, path):
        reader = ColumnarTraceReader(path)
        offset, _ = reader._frames[0]
        reader.close()
        with open(path, "r+b") as handle:
            handle.seek(offset + struct.calcsize("<BII"))
            handle.write(b"\xff" * 8)  # stomp the compressed payload
        return path

    def test_strict_reader_raises_on_bad_frame(self, trace, tmp_path):
        path = self.corrupt_first_frame(self.dump(trace, tmp_path))
        with pytest.raises(TraceError):
            list(open_trace(path).events())

    def test_lenient_reader_skips_frames_and_counts(self, trace, tmp_path):
        path = self.corrupt_first_frame(self.dump(trace, tmp_path))
        reader = open_trace(path, strict=False)
        events = list(reader.events())
        assert len(events) == len(trace.events) - 4  # one 4-event frame lost
        assert reader.lines_skipped == 4

    def test_lenient_sharded_scan_skips_frames_too(self, trace, tmp_path):
        path = self.corrupt_first_frame(self.dump(trace, tmp_path))
        reader = open_trace(path, strict=False)
        list(reader.memory_events(shard=0, jobs=2))
        assert reader.lines_skipped == 4


class TestStreamingLenientCounting:
    """Streaming must not disturb the skipped-frame accounting.

    The jobs>1 pipeline counts skipped lines on shard 0 only (every
    worker re-scans the whole file, so summing would multiply the
    count); a jobs=1 streaming check counts the reader's delta directly.
    Both paths must land on the same ``trace.lines_skipped`` total --
    and on the same report, since both lost the same frame.
    """

    def damaged(self, trace, tmp_path):
        helper = TestCorruption()
        return helper.corrupt_first_frame(helper.dump(trace, tmp_path))

    def checked(self, path, jobs):
        from repro import CheckSession
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder()
        session = CheckSession(path, jobs=jobs, recorder=recorder, strict=False)
        report = session.check(streaming=True, window=1)
        return report, recorder.snapshot().counters

    def test_lines_skipped_equal_across_job_counts(self, trace, tmp_path):
        from repro.report import normalize_report

        path = self.damaged(trace, tmp_path)
        report_one, counters_one = self.checked(path, jobs=1)
        report_four, counters_four = self.checked(path, jobs=4)
        assert counters_one["trace.lines_skipped"] == 4
        assert counters_four["trace.lines_skipped"] == 4
        assert normalize_report(report_four) == normalize_report(report_one)


class TestDumpTraceDispatch:
    def test_explicit_format(self, trace, tmp_path):
        path = str(tmp_path / "t.dat")
        dump_trace(trace, path, format="columnar")
        assert is_columnar_trace(path)
        assert len(load_trace(path)) == len(trace)

    def test_v3_file_is_binary_not_json(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace_columnar(trace, path)
        with pytest.raises(ValueError):
            json.loads(open(path, "rb").read().decode("utf-8", "replace"))
