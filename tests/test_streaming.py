"""Online/streaming checking: windowed compaction is observationally
invisible.

The contract under test: a streaming check -- live observer, in-memory
trace, or either trace file format, in-process or sharded -- reports
exactly what the offline optimized checker reports, at *every* window
(including ``window=1``, where a sweep follows every event, and the
unbounded window, where no sweep ever fires).  What the window changes is
peak live metadata, which ``benchmarks/bench_streaming.py`` measures; what
it must never change is the verdict.
"""

import pytest

from repro import CheckSession, TaskProgram, run_program
from repro.checker import make_checker
from repro.checker.streaming import DEFAULT_WINDOW, StreamingChecker
from repro.errors import CheckerError
from repro.obs import METRIC_NAMES, MetricsRecorder
from repro.report import normalize_report
from repro.runtime.executor import SerialExecutor
from repro.suite import all_cases
from repro.trace.serialize import dump_trace

WINDOWS = (1, 8, 64, 0)  # 0 = unbounded, via the session's window= mapping


def _rmw(ctx):
    value = ctx.read("X")
    ctx.write("X", value + 1)


def buggy_body(ctx):
    ctx.write("X", 0)
    ctx.spawn(_rmw)
    ctx.spawn(_rmw)
    ctx.sync()


def recorded_trace():
    return run_program(TaskProgram(buggy_body), record_trace=True).trace


# ---------------------------------------------------------------------------
# Construction and refusals
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_registered_with_factory(self):
        checker = make_checker("streaming")
        assert isinstance(checker, StreamingChecker)
        assert checker.window == DEFAULT_WINDOW

    def test_kwargs_reach_inner_checker(self):
        checker = StreamingChecker(window=8, checker="optimized", mode="paper")
        assert checker.inner.mode == "paper"

    def test_capabilities_mirror_inner(self):
        checker = StreamingChecker()
        assert checker.requires_dpst == checker.inner.requires_dpst
        assert checker.location_sharded == checker.inner.location_sharded

    @pytest.mark.parametrize("window", [0, -1, 2.5, "8"])
    def test_bad_window_refused(self, window):
        with pytest.raises(CheckerError):
            StreamingChecker(window=window)

    def test_unbounded_window_is_none(self):
        assert StreamingChecker(window=None).window is None

    @pytest.mark.parametrize("inner", ["velodrome", "basic", "regiontrack"])
    def test_uncompactable_checkers_refused(self, inner):
        with pytest.raises(CheckerError, match="cannot stream"):
            StreamingChecker(checker=inner)

    def test_window_without_streaming_refused_by_session(self):
        with pytest.raises(CheckerError, match="streaming=True"):
            CheckSession(recorded_trace()).check(window=8)


# ---------------------------------------------------------------------------
# Equivalence: the 36-program suite, every window
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", all_cases(), ids=lambda c: c.name)
def test_suite_streaming_equals_offline(case):
    program = case.build()
    trace = run_program(
        program, executor=SerialExecutor(), record_trace=True
    ).trace
    session = CheckSession(trace, annotations=program.annotations)
    offline = normalize_report(session.check(mode="thorough"))
    for window in WINDOWS:
        streamed = session.check(streaming=True, window=window, mode="thorough")
        assert normalize_report(streamed) == offline, (case.name, window)
        assert set(streamed.locations()) == set(case.expected), (case.name, window)


class TestSources:
    def test_file_sources_both_formats(self, tmp_path):
        trace = recorded_trace()
        offline = normalize_report(CheckSession(trace).check(mode="thorough"))
        for format, suffix in (("jsonl", ".jsonl"), ("columnar", ".trc")):
            path = tmp_path / ("t" + suffix)
            dump_trace(trace, str(path), format=format)
            for window in WINDOWS:
                report = CheckSession(str(path)).check(
                    streaming=True, window=window, mode="thorough"
                )
                assert normalize_report(report) == offline, (format, window)

    def test_sharded_streaming(self, tmp_path):
        trace = recorded_trace()
        offline = normalize_report(CheckSession(trace).check(mode="thorough"))
        path = tmp_path / "t.trc"
        dump_trace(trace, str(path), format="columnar")
        for source in (trace, str(path)):
            report = CheckSession(source, jobs=4).check(
                streaming=True, window=1, mode="thorough"
            )
            assert normalize_report(report) == offline

    def test_live_observer_attachment(self):
        checker = StreamingChecker(window=1)
        result = run_program(TaskProgram(buggy_body), observers=[checker])
        assert set(result.report().locations()) == {"X"}
        offline = CheckSession(TaskProgram(buggy_body)).check()
        assert normalize_report(checker.report) == normalize_report(offline)

    def test_default_window_used_when_unspecified(self):
        report = CheckSession(recorded_trace()).check(streaming=True)
        assert set(report.locations()) == {"X"}


# ---------------------------------------------------------------------------
# Compaction actually happens (and is invisible)
# ---------------------------------------------------------------------------


class TestCompaction:
    def _many_tasks_program(self):
        def body(ctx):
            def worker(inner, i):
                with inner.lock("m"):
                    value = inner.read("X")
                    inner.write("X", value + 1)
                inner.write(("private", i), i)

            ctx.write("X", 0)
            for i in range(12):
                ctx.spawn(worker, i)
                ctx.sync()

        return TaskProgram(body)

    def test_sweeps_fire_and_evict(self):
        trace = run_program(
            self._many_tasks_program(), executor=SerialExecutor(), record_trace=True
        ).trace
        recorder = MetricsRecorder()
        session = CheckSession(trace, recorder=recorder)
        session.check(streaming=True, window=1)
        counters = recorder.snapshot().counters
        assert counters["streaming.events"] == len(trace.memory_events())
        assert counters["streaming.compactions"] >= counters["streaming.events"]
        assert counters["streaming.evicted"] > 0

    def test_unbounded_window_never_sweeps(self):
        trace = recorded_trace()
        recorder = MetricsRecorder()
        CheckSession(trace, recorder=recorder).check(streaming=True, window=0)
        counters = recorder.snapshot().counters
        assert counters["streaming.compactions"] == 0
        assert counters["streaming.evicted"] == 0

    def test_peak_window_bounded_by_window(self):
        """A tighter window keeps fewer live local entries at sweep time."""
        trace = run_program(
            self._many_tasks_program(), executor=SerialExecutor(), record_trace=True
        ).trace

        def peak(window):
            recorder = MetricsRecorder()
            CheckSession(trace, recorder=recorder).check(
                streaming=True, window=window
            )
            return recorder.snapshot().counters["streaming.peak_window"]

        assert peak(1) <= peak(0)

    def test_metric_names_registered(self):
        checker = StreamingChecker(window=1)
        run_program(TaskProgram(buggy_body), observers=[checker])
        names = set(checker.metrics())
        assert names <= set(METRIC_NAMES), names - set(METRIC_NAMES)
        assert {
            "streaming.events",
            "streaming.compactions",
            "streaming.evicted",
            "streaming.peak_window",
        } <= names

    def test_events_counter_partitions_across_shards(self, tmp_path):
        """``streaming.events`` is shard-summable: jobs=4 totals jobs=1."""
        trace = recorded_trace()
        path = tmp_path / "t.trc"
        dump_trace(trace, str(path), format="columnar")

        def events(jobs):
            recorder = MetricsRecorder()
            CheckSession(str(path), jobs=jobs, recorder=recorder).check(
                streaming=True, window=2
            )
            return recorder.snapshot().counters["streaming.events"]

        assert events(1) == events(4) == len(trace.memory_events())


# ---------------------------------------------------------------------------
# Cache interaction: streaming always bypasses, loudly
# ---------------------------------------------------------------------------


class TestCacheBypass:
    def test_streaming_bypasses_result_cache(self, tmp_path):
        trace = recorded_trace()
        session = CheckSession(trace)
        session.check(streaming=True, cache_dir=str(tmp_path))
        info = session.cache_info
        assert info["requested"] and not info["applied"] and not info["hit"]
        assert "streaming" in info["reason"]
        # Nothing was stored: a later offline check through the same
        # directory must be a miss, not a bogus hit.
        offline_session = CheckSession(trace)
        offline_session.check(cache_dir=str(tmp_path))
        assert offline_session.cache_info["applied"]
        assert not offline_session.cache_info["hit"]
