"""The sharded offline pipeline is report-identical to in-process checking.

The load-bearing guarantee of :mod:`repro.checker.sharded`: partitioning a
recorded trace by location hash and replaying each shard in isolation must
produce *exactly* the violation set of an unsharded run -- across the full
36-program suite and a seeded fuzz corpus, for ``jobs=1`` and ``jobs=4``,
and regardless of whether the shards replay from memory or stream from a
JSONL trace file.
"""

import pytest

from repro.checker import OptAtomicityChecker, make_checker
from repro.checker.sharded import (
    check_sharded,
    partition_memory_events,
    shard_for_location,
)
from repro.errors import CheckerError, TraceError
from repro.report import ViolationReport
from repro.runtime import TaskProgram, run_program
from repro.suite import all_cases
from repro.trace import GeneratorConfig, TraceGenerator
from repro.trace.serialize import dump_trace_jsonl

CASES = all_cases()


def violation_keys(report):
    """The canonical identity of a report: every finding's dedup key."""
    return {v.key for v in report}


def record(program):
    """One instrumented run: live in-process report + the recorded trace."""
    result = run_program(
        program, observers=[OptAtomicityChecker()], record_trace=True
    )
    return result.report(), result.trace


class TestShardFunction:
    def test_deterministic_and_in_range(self):
        for jobs in (1, 2, 4, 7):
            for location in ("X", ("g", 3), 42, None, ("deep", ("t", 1))):
                shard = shard_for_location(location, jobs)
                assert 0 <= shard < jobs
                assert shard == shard_for_location(location, jobs)

    def test_partition_preserves_order_and_events(self):
        trace = TraceGenerator(GeneratorConfig(tasks=6, locations=4, seed=3)).generate_trace()
        shards = partition_memory_events(trace.events, 4)
        flattened = [e for shard in shards for e in shard]
        assert sorted(e.seq for e in flattened) == [
            e.seq for e in trace.memory_events()
        ]
        for shard in shards:
            assert [e.seq for e in shard] == sorted(e.seq for e in shard)
            locations = {e.location for e in shard}
            for other in shards:
                if other is not shard:
                    assert locations.isdisjoint({e.location for e in other})


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
class TestSuiteEquivalence:
    """jobs=1 and jobs=4 reproduce the in-process verdict on all 36 programs."""

    def test_sharded_matches_in_process(self, case):
        program = case.build()
        live_report, trace = record(program)
        assert set(live_report.locations()) == set(case.expected)
        for jobs in (1, 4):
            sharded = check_sharded(
                trace,
                checker="optimized",
                jobs=jobs,
                annotations=program.annotations,
            )
            assert violation_keys(sharded) == violation_keys(live_report), (
                f"{case.name}: jobs={jobs} diverged"
            )


FUZZ_CONFIGS = [
    GeneratorConfig(tasks=6, accesses_per_task=5, locations=3, seed=seed)
    for seed in range(4)
] + [
    GeneratorConfig(
        tasks=8,
        accesses_per_task=6,
        locations=5,
        locks=2,
        max_depth=3,
        seed=seed,
    )
    for seed in (11, 12)
]


@pytest.mark.parametrize(
    "config", FUZZ_CONFIGS, ids=lambda c: f"seed{c.seed}-locks{c.locks}"
)
class TestFuzzEquivalence:
    """Seeded generator corpus: same verdict sharded and unsharded."""

    def test_in_memory_sharding(self, config):
        program = TraceGenerator(config).generate_program()
        live_report, trace = record(program)
        for jobs in (1, 4):
            sharded = check_sharded(trace, checker="optimized", jobs=jobs)
            assert violation_keys(sharded) == violation_keys(live_report)

    def test_file_streamed_sharding(self, config, tmp_path):
        program = TraceGenerator(config).generate_program()
        live_report, trace = record(program)
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        for jobs in (1, 4):
            sharded = check_sharded(path, checker="optimized", jobs=jobs)
            assert violation_keys(sharded) == violation_keys(live_report)


class TestMultivarGroups:
    """Grouped locations share a metadata cell and must share a shard."""

    def multivar_program(self):
        from repro.checker.annotations import AtomicAnnotations

        def reader(ctx):
            ctx.read("checking")
            ctx.read("savings")

        def mover(ctx):
            ctx.write("checking", 0)
            ctx.write("savings", 100)

        def main(ctx):
            ctx.spawn(reader)
            ctx.spawn(mover)
            ctx.sync()

        annotations = AtomicAnnotations().annotate_group(
            "account", ["checking", "savings"]
        )
        return TaskProgram(
            main,
            initial_memory={"checking": 100, "savings": 0},
            annotations=annotations,
        )

    def test_group_members_stay_together(self):
        program = self.multivar_program()
        live_report, trace = record(program)
        assert live_report  # the cross-variable violation exists
        for jobs in (2, 3, 4, 5):
            sharded = check_sharded(
                trace, jobs=jobs, annotations=program.annotations
            )
            assert violation_keys(sharded) == violation_keys(live_report), jobs

    def test_grouped_partition_lands_in_one_shard(self):
        program = self.multivar_program()
        _, trace = record(program)
        shards = partition_memory_events(trace.events, 4, program.annotations)
        populated = [shard for shard in shards if shard]
        assert len(populated) == 1  # both members hash via the group key


class TestDriverContract:
    def test_trace_order_sensitive_checker_refused(self):
        trace = TraceGenerator(GeneratorConfig(seed=5)).generate_trace()
        with pytest.raises(CheckerError):
            check_sharded(trace, checker="velodrome", jobs=2)

    def test_velodrome_allowed_in_process(self):
        trace = TraceGenerator(GeneratorConfig(seed=5)).generate_trace()
        report = check_sharded(trace, checker="velodrome", jobs=1)
        assert isinstance(report, ViolationReport)

    def test_checker_instance_and_class_specs(self):
        _, trace = record(
            TraceGenerator(GeneratorConfig(tasks=5, seed=7)).generate_program()
        )
        by_name = check_sharded(trace, checker="optimized", jobs=2)
        by_class = check_sharded(trace, checker=OptAtomicityChecker, jobs=2)
        by_instance = check_sharded(
            trace, checker=OptAtomicityChecker(mode="thorough"), jobs=2
        )
        assert violation_keys(by_class) == violation_keys(by_name)
        assert violation_keys(by_instance) >= violation_keys(by_name)

    def test_bad_jobs_rejected(self):
        trace = TraceGenerator(GeneratorConfig(seed=1)).generate_trace()
        with pytest.raises(TraceError):
            check_sharded(trace, jobs=0)

    def test_bad_source_rejected(self):
        with pytest.raises(TraceError):
            check_sharded(12345, jobs=1)

    def test_merge_classmethod_dedupes_and_sums_raw_count(self):
        _, trace = record(
            TraceGenerator(GeneratorConfig(tasks=5, seed=9)).generate_program()
        )
        report = check_sharded(trace, jobs=1)
        merged = ViolationReport.merge([report, report])
        assert violation_keys(merged) == violation_keys(report)
        assert merged.raw_count == 2 * report.raw_count

    def test_default_jobs_is_cpu_count(self):
        from repro.checker.sharded import default_jobs

        assert default_jobs() >= 1
