"""Structural unit tests for both DPST layouts."""

import pytest

from repro.dpst import ArrayDPST, LinkedDPST, NodeKind, ROOT_ID, NULL_ID
from repro.errors import DPSTError

from tests.conftest import build_figure2


class TestEmptyTree:
    def test_has_root_finish(self, tree):
        assert len(tree) == 1
        assert tree.kind(ROOT_ID) is NodeKind.FINISH

    def test_root_parent_is_null(self, tree):
        assert tree.parent(ROOT_ID) == NULL_ID

    def test_root_depth_and_rank(self, tree):
        assert tree.depth(ROOT_ID) == 0
        assert tree.sibling_rank(ROOT_ID) == 0

    def test_validates(self, tree):
        tree.validate()


class TestInsertion:
    def test_ids_are_dense(self, tree):
        first = tree.add_node(ROOT_ID, NodeKind.STEP)
        second = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        assert (first, second) == (1, 2)

    def test_child_depth(self, tree):
        async_node = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        step = tree.add_node(async_node, NodeKind.STEP)
        assert tree.depth(async_node) == 1
        assert tree.depth(step) == 2

    def test_sibling_ranks_count_left_to_right(self, tree):
        nodes = [tree.add_node(ROOT_ID, NodeKind.ASYNC) for _ in range(4)]
        assert [tree.sibling_rank(n) for n in nodes] == [0, 1, 2, 3]

    def test_children_ordered(self, tree):
        a = tree.add_node(ROOT_ID, NodeKind.STEP)
        b = tree.add_node(ROOT_ID, NodeKind.FINISH)
        c = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        assert tree.children(ROOT_ID) == [a, b, c]

    def test_nested_ranks_independent(self, tree):
        f = tree.add_node(ROOT_ID, NodeKind.FINISH)
        tree.add_node(ROOT_ID, NodeKind.STEP)
        inner = tree.add_node(f, NodeKind.STEP)
        assert tree.sibling_rank(inner) == 0

    def test_insert_under_step_rejected(self, tree):
        step = tree.add_node(ROOT_ID, NodeKind.STEP)
        with pytest.raises(DPSTError):
            tree.add_node(step, NodeKind.STEP)

    def test_insert_under_unknown_parent_rejected(self, tree):
        with pytest.raises(DPSTError):
            tree.add_node(99, NodeKind.STEP)
        with pytest.raises(DPSTError):
            tree.add_node(-2, NodeKind.STEP)


class TestAccessors:
    def test_is_step(self, tree):
        step = tree.add_node(ROOT_ID, NodeKind.STEP)
        async_node = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        assert tree.is_step(step)
        assert not tree.is_step(async_node)

    def test_ancestors(self, tree):
        a = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        f = tree.add_node(a, NodeKind.FINISH)
        s = tree.add_node(f, NodeKind.STEP)
        assert list(tree.ancestors(s)) == [f, a, ROOT_ID]

    def test_path_to_root(self, tree):
        a = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        s = tree.add_node(a, NodeKind.STEP)
        assert tree.path_to_root(s) == [s, a, ROOT_ID]

    def test_is_ancestor(self, tree):
        a = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        s = tree.add_node(a, NodeKind.STEP)
        assert tree.is_ancestor(ROOT_ID, s)
        assert tree.is_ancestor(a, s)
        assert tree.is_ancestor(s, s)
        assert not tree.is_ancestor(s, a)

    def test_step_nodes(self, tree):
        s1 = tree.add_node(ROOT_ID, NodeKind.STEP)
        tree.add_node(ROOT_ID, NodeKind.ASYNC)
        s2 = tree.add_node(ROOT_ID, NodeKind.STEP)
        assert tree.step_nodes() == [s1, s2]

    def test_nodes_iteration(self, tree):
        tree.add_node(ROOT_ID, NodeKind.STEP)
        tree.add_node(ROOT_ID, NodeKind.ASYNC)
        assert list(tree.nodes()) == [0, 1, 2]


class TestFigure2:
    def test_shape(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert tree.children(ROOT_ID) == [s11, f12]
        assert tree.children(f12) == [a2, s12, a3]
        assert tree.children(a2) == [s2]
        assert tree.children(a3) == [s3]
        tree.validate()

    def test_dump_renders_every_node(self, tree):
        build_figure2(tree)
        dump = tree.dump()
        for node in tree.nodes():
            assert tree.kind(node).short() + str(node) in dump


class TestLayoutSpecific:
    def test_layout_names(self):
        assert ArrayDPST().layout_name == "array"
        assert LinkedDPST().layout_name == "linked"

    def test_layouts_agree_on_figure2(self):
        array, linked = ArrayDPST(), LinkedDPST()
        build_figure2(array)
        build_figure2(linked)
        for node in array.nodes():
            assert array.kind(node) == linked.kind(node)
            assert array.parent(node) == linked.parent(node)
            assert array.depth(node) == linked.depth(node)
            assert array.sibling_rank(node) == linked.sibling_rank(node)

    def test_lca_with_children_same_result(self):
        array, linked = ArrayDPST(), LinkedDPST()
        build_figure2(array)
        build_figure2(linked)
        for a in array.nodes():
            for b in array.nodes():
                assert array.lca_with_children(a, b) == linked.lca_with_children(a, b)


class TestNodeKind:
    def test_short_codes(self):
        assert NodeKind.STEP.short() == "S"
        assert NodeKind.ASYNC.short() == "A"
        assert NodeKind.FINISH.short() == "F"

    def test_internal_flags(self):
        assert not NodeKind.STEP.is_internal
        assert NodeKind.ASYNC.is_internal
        assert NodeKind.FINISH.is_internal
