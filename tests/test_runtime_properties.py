"""Property tests over the runtime itself (hypothesis).

Random generated programs are executed under every executor family, and
the runtime's structural outputs are cross-checked:

* the DPST always validates;
* the DPST is identical across executors (it reflects program structure,
  not schedule) -- for generated programs whose task structure is
  deterministic;
* every memory event's step is a step node owned by exactly one task;
* versioned locksets in events never mix base names wrongly;
* the shadow memory's final state agrees between array/linked layouts.
"""

from collections import defaultdict

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runtime import (
    RandomOrderExecutor,
    SerialExecutor,
    run_program,
)
from repro.trace.generator import GeneratorConfig, TraceGenerator

CONFIG = GeneratorConfig(
    tasks=5, accesses_per_task=4, locations=3, locks=2, max_depth=3, seed=0
)


def generated(seed):
    return TraceGenerator(CONFIG).generate_program(seed=seed)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dpst_always_validates(seed):
    result = run_program(generated(seed), record_trace=True)
    result.dpst.validate()


def _canonical(tree, node=0):
    """Schedule-independent tree fingerprint: kinds in sibling order.

    Node *ids* follow global insertion order, which depends on how the
    executor interleaved tasks; the tree *shape* (children per node, in
    sibling order) reflects only the program structure.
    """
    return (
        int(tree.kind(node)),
        tuple(_canonical(tree, child) for child in tree.children(node)),
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dpst_shape_schedule_independent(seed):
    program = generated(seed)
    shapes = []
    for executor in (
        SerialExecutor(),
        SerialExecutor(policy="help_first", order="lifo"),
        RandomOrderExecutor(seed=seed ^ 0xABC),
    ):
        result = run_program(program, executor=executor, record_trace=True)
        shapes.append(_canonical(result.dpst))
    assert shapes[0] == shapes[1] == shapes[2]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_steps_are_leaf_nodes_owned_by_one_task(seed):
    result = run_program(generated(seed), record_trace=True)
    owner = {}
    for event in result.recorder.memory_events():
        assert result.dpst.is_step(event.step)
        owner.setdefault(event.step, event.task)
        assert owner[event.step] == event.task


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_step_events_are_contiguous_per_task(seed):
    """Within one task's event stream, a step never resumes after ending."""
    result = run_program(generated(seed), record_trace=True)
    per_task = defaultdict(list)
    for event in result.recorder.memory_events():
        per_task[event.task].append(event.step)
    for steps in per_task.values():
        seen = set()
        previous = None
        for step in steps:
            if step != previous:
                assert step not in seen, "step resumed after being left"
                seen.add(step)
            previous = step


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_locksets_wellformed(seed):
    """At most one versioned instance of a base lock is ever held."""
    result = run_program(generated(seed), record_trace=True)
    for event in result.recorder.memory_events():
        bases = [name.split("#")[0] for name in event.lockset]
        assert len(bases) == len(set(bases))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_layouts_agree_on_final_memory(seed):
    program = generated(seed)
    array = run_program(program, dpst_layout="array", build_dpst=True)
    linked = run_program(program, dpst_layout="linked", build_dpst=True)
    assert array.shadow.snapshot() == linked.shadow.snapshot()


@given(seed=st.integers(min_value=0, max_value=3_000))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_workstealing_produces_valid_dpst(seed):
    from repro.runtime import WorkStealingExecutor

    program = generated(seed)
    result = run_program(
        program, executor=WorkStealingExecutor(workers=3), record_trace=True
    )
    result.dpst.validate()
    # Same canonical shape as the serial run (ids may permute).
    serial = run_program(program, record_trace=True)
    assert _canonical(result.dpst) == _canonical(serial.dpst)