"""RegionTrack baseline: sound and complete, location-for-location.

The checker keeps one constant-size summary per (location, step) region
instead of the basic checker's unbounded access histories, so the tests
pin two things: (1) it implicates *exactly* the locations the basic
checker and the optimized thorough checker do -- on the 36-program suite
(where the ground truth is written down) and on generated programs --
and (2) the summaries really are bounded: pair witnesses never exceed
the four kinds per region, however many accesses repeat.
"""

import pytest

from repro import CheckSession, TaskProgram, run_program
from repro.checker import (
    BasicAtomicityChecker,
    RegionTrackChecker,
    checker_name_of,
    make_checker,
)
from repro.fuzz import FuzzConfig, ProgramGenerator, program_from_spec
from repro.obs import METRIC_NAMES
from repro.report import normalized_locations
from repro.runtime.executor import SerialExecutor
from repro.suite import all_cases

PINNED_SEEDS = [0, 1, 2, 7, 11, 42, 1234]


class TestRegistration:
    def test_factory_name(self):
        checker = make_checker("regiontrack")
        assert isinstance(checker, RegionTrackChecker)
        assert checker_name_of(checker) == "regiontrack"

    def test_capabilities(self):
        checker = RegionTrackChecker()
        assert checker.requires_dpst
        assert checker.location_sharded

    def test_metric_names_registered(self):
        checker = RegionTrackChecker()
        result = run_program(
            TaskProgram(_buggy), observers=[checker]
        )
        assert result.report()
        names = set(checker.metrics())
        assert names <= set(METRIC_NAMES), names - set(METRIC_NAMES)


def _buggy(ctx):
    def rmw(inner):
        value = inner.read("X")
        inner.write("X", value + 1)

    ctx.write("X", 0)
    ctx.spawn(rmw)
    ctx.spawn(rmw)
    ctx.sync()


@pytest.mark.parametrize("case", all_cases(), ids=lambda c: c.name)
def test_suite_agreement(case):
    """Exactly the expected locations: complete (no misses) and sound
    (no false positives) on every suite program."""
    result = run_program(case.build(), observers=[RegionTrackChecker()])
    assert set(result.report().locations()) == set(case.expected), case.name


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_fuzzed_agreement_with_basic_and_optimized(seed):
    config = FuzzConfig(tasks=8, depth=3, locations=4, seed=seed)
    spec = ProgramGenerator(config).generate_spec(seed)
    trace = run_program(
        program_from_spec(spec), executor=SerialExecutor(), record_trace=True
    ).trace
    session = CheckSession(trace)
    regiontrack = normalized_locations(session.check("regiontrack"))
    assert regiontrack == normalized_locations(session.check("basic")), seed
    assert regiontrack == normalized_locations(
        session.check("optimized", mode="thorough")
    ), seed


class TestSharded:
    def test_jobs4_equals_jobs1(self):
        trace = run_program(
            TaskProgram(_buggy), executor=SerialExecutor(), record_trace=True
        ).trace
        one = CheckSession(trace).check("regiontrack")
        four = CheckSession(trace, jobs=4).check("regiontrack")
        assert normalized_locations(four) == normalized_locations(one)


class TestBoundedSummaries:
    def test_pair_witnesses_bounded_per_region(self):
        """1000 repeats of the racy RMW still store at most one pair per
        kind per region and one lockset entry per distinct lockset."""

        def body(ctx):
            def rmw(inner):
                for _ in range(1000):
                    value = inner.read("X")
                    inner.write("X", value + 1)

            ctx.spawn(rmw)
            ctx.spawn(rmw)
            ctx.sync()

        checker = RegionTrackChecker()
        run_program(TaskProgram(body), observers=[checker])
        metrics = checker.metrics()
        regions = metrics["checker.regiontrack.regions"]
        assert metrics["checker.regiontrack.pair_witnesses"] <= 4 * regions
        assert metrics["checker.regiontrack.lockset_entries"] <= 2 * regions
        assert metrics["checker.accesses_checked"] >= 4000
        # The repeat probes hit the generation memo, not the region scan.
        assert metrics["checker.regiontrack.memo_hits"] > 0

    def test_lockset_entries_track_distinct_locksets(self):
        def body(ctx):
            def locked(inner):
                with inner.lock("L"):
                    inner.write("X", 1)
                with inner.lock("M"):
                    inner.write("X", 2)
                inner.write("X", 3)

            ctx.spawn(locked)
            ctx.sync()

        checker = RegionTrackChecker()
        run_program(TaskProgram(body), observers=[checker])
        # One region, three distinct write locksets ({L}, {M}, {}).
        assert checker.metrics()["checker.regiontrack.lockset_entries"] == 3


def test_refused_as_streaming_inner():
    from repro.checker import StreamingChecker
    from repro.errors import CheckerError

    with pytest.raises(CheckerError, match="cannot stream"):
        StreamingChecker(checker="regiontrack")
