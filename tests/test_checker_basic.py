"""Basic checker: both triple roles, lock rule, metadata growth."""

import pytest

from repro.checker import BasicAtomicityChecker
from repro.dpst import ArrayDPST
from repro.errors import CheckerError
from repro.report import READ, WRITE
from repro.runtime import TaskProgram, run_program
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events

from tests.conftest import build_figure2


def mem(seq, task, step, loc, access, lockset=()):
    return MemoryEvent(seq, task, step, loc, access, lockset)


@pytest.fixture
def fig2():
    tree = ArrayDPST()
    s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
    return tree, s11, s2, s12, s3


class TestTripleRoles:
    def test_current_as_pair_end(self, fig2):
        tree, s11, s2, s12, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 3, s3, "X", WRITE),
            mem(2, 2, s2, "X", WRITE),  # closes the pair; interleaver known
        ]
        checker = BasicAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1

    def test_current_as_interleaver(self, fig2):
        """The symmetric role the literal Figure 3 pseudocode misses."""
        tree, s11, s2, s12, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s2, "X", WRITE),
            mem(2, 3, s3, "X", WRITE),  # pair already complete in the trace
        ]
        checker = BasicAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1

    def test_serializable_triples_quiet(self, fig2):
        tree, s11, s2, s12, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 3, s3, "X", READ),
            mem(2, 2, s2, "X", READ),
        ]
        checker = BasicAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert not checker.report

    def test_series_access_never_interleaves(self, fig2):
        tree, s11, s2, s12, s3 = fig2
        events = [
            mem(0, 1, s11, "X", WRITE),  # precedes everything
            mem(1, 2, s2, "X", READ),
            mem(2, 2, s2, "X", WRITE),
        ]
        checker = BasicAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert not checker.report


class TestLockRule:
    def test_same_critical_section_pair_suppressed(self, fig2):
        tree, s11, s2, s12, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ, ("L",)),
            mem(1, 2, s2, "X", WRITE, ("L",)),
            mem(2, 3, s3, "X", WRITE, ("L",)),
        ]
        checker = BasicAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert not checker.report

    def test_versioned_sections_reported(self, fig2):
        tree, s11, s2, s12, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ, ("L",)),
            mem(1, 2, s2, "X", WRITE, ("L#1",)),
            mem(2, 3, s3, "X", WRITE, ("L",)),
        ]
        checker = BasicAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1


class TestMetadataGrowth:
    def test_history_grows_with_accesses(self):
        """The motivation for the optimized checker (ablation ABL-META)."""

        def main(ctx):
            for _ in range(10):
                ctx.read("X")

        checker = BasicAtomicityChecker()
        run_program(TaskProgram(main), observers=[checker])
        assert checker.history_size("X") == 10
        assert checker.total_history_entries() == 10

    def test_requires_dpst(self):
        from repro.runtime.executor import RunContext
        from repro.runtime.locks import LockTable
        from repro.runtime.shadow import ShadowMemory

        checker = BasicAtomicityChecker()
        context = RunContext(None, None, ShadowMemory(), LockTable(), None)
        with pytest.raises(CheckerError):
            checker.on_run_begin(context)


class TestDedup:
    def test_repeated_triples_reported_once(self, fig2):
        tree, s11, s2, s12, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s2, "X", WRITE),
            mem(2, 3, s3, "X", WRITE),
            mem(3, 3, s3, "X", WRITE),
        ]
        checker = BasicAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        # distinct violations only; raw adds may exceed
        patterns = {v.pattern for v in checker.report.violations}
        assert "RWW" in patterns
