"""Documented divergences of the published algorithm (DESIGN.md).

Two findings from this reproduction, each pinned by a regression test:

1. **Pattern-slot eviction loss** -- the global space keeps ONE two-access
   pattern per kind, replaced only by in-series candidates (Figure 9).
   With three mutually-constrained steps (A parallel B, A before C, B
   parallel C), B's pattern is blocked by A's parallel occupant, and C's
   later interleaving write checks only the stored (A) pattern: the B-C
   violation is missed by paper mode and caught by thorough mode (and by
   the basic checker and both oracles).

2. **Same-critical-section rule vs rogue accesses** -- two accesses in
   one critical section never form a pattern (Section 3.3), which is
   complete only under a consistent locking discipline.  An interleaver
   that ignores the lock can physically interleave (the oracles say
   violation) but no checker mode reports it -- this matches the paper's
   specification, so the suite records it as expected-quiet with
   ``oracle_divergent=True``.
"""

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.dpst import ArrayDPST, NodeKind, ROOT_ID
from repro.report import READ, WRITE
from repro.runtime import TaskProgram, run_program
from repro.runtime.events import MemoryEvent
from repro.suite import get
from repro.trace.explore import analytic_violation_locations
from repro.trace.replay import replay_memory_events
from repro.trace.trace import Trace


def mem(seq, task, step, loc, access, lockset=()):
    return MemoryEvent(seq, task, step, loc, access, lockset)


def build_eviction_topology():
    """A ∥ B, A before C, B ∥ C -- via an inner finish scope.

    main: spawn B (outer scope, never synced until the end);
          finish { spawn A }     # A completes here
          C = main's continuation step after the finish.
    """
    tree = ArrayDPST()
    outer = tree.add_node(ROOT_ID, NodeKind.FINISH)     # implicit scope
    async_b = tree.add_node(outer, NodeKind.ASYNC)
    step_b = tree.add_node(async_b, NodeKind.STEP)
    inner = tree.add_node(outer, NodeKind.FINISH)       # explicit finish
    async_a = tree.add_node(inner, NodeKind.ASYNC)
    step_a = tree.add_node(async_a, NodeKind.STEP)
    step_c = tree.add_node(outer, NodeKind.STEP)        # after inner closes
    return tree, step_a, step_b, step_c


class TestEvictionLoss:
    def make_events(self, step_a, step_b, step_c):
        """A does RR, then B does RR (blocked from the slot), then C writes."""
        return [
            mem(0, 1, step_a, "X", READ),
            mem(1, 1, step_a, "X", READ),    # gs.RR = A's pattern
            mem(2, 2, step_b, "X", READ),
            mem(3, 2, step_b, "X", READ),    # B's RR blocked: A parallel B
            mem(4, 3, step_c, "X", WRITE),   # C parallel B, series with A
        ]

    def test_topology_is_as_claimed(self):
        from repro.dpst import relation

        tree, a, b, c = build_eviction_topology()
        assert relation.parallel(tree, a, b)
        assert relation.parallel(tree, b, c)
        assert relation.precedes(tree, a, c)

    def test_paper_mode_misses(self):
        tree, a, b, c = build_eviction_topology()
        checker = OptAtomicityChecker(mode="paper")
        replay_memory_events(self.make_events(a, b, c), checker, dpst=tree)
        assert not checker.report  # the documented false negative

    def test_thorough_mode_catches(self):
        tree, a, b, c = build_eviction_topology()
        checker = OptAtomicityChecker(mode="thorough")
        replay_memory_events(self.make_events(a, b, c), checker, dpst=tree)
        assert set(checker.report.locations()) == {"X"}

    def test_basic_checker_catches(self):
        tree, a, b, c = build_eviction_topology()
        checker = BasicAtomicityChecker()
        replay_memory_events(self.make_events(a, b, c), checker, dpst=tree)
        assert set(checker.report.locations()) == {"X"}

    def test_analytic_oracle_confirms(self):
        tree, a, b, c = build_eviction_topology()
        trace = Trace(self.make_events(a, b, c), dpst=tree)
        assert analytic_violation_locations(trace) == {"X"}

    def test_as_real_program(self):
        """The same topology built by the runtime, not by hand.

        The miss additionally needs a specific observation order (A's
        pattern stored before B's, C's write last), which the help-first
        FIFO executor produces: A runs when the finish block closes, B and
        C run at the final sync in spawn order.  Under other schedules the
        Figure 8 single-slot checks happen to catch the violation -- which
        is itself evidence for the paper's design, and exactly why paper
        mode passes the whole 36-program suite.
        """
        from repro.runtime import SerialExecutor

        def task_b(ctx):
            ctx.read("X")
            ctx.read("X")

        def task_a(ctx):
            ctx.read("X")
            ctx.read("X")

        def task_c(ctx):
            ctx.write("X", 1)

        def main(ctx):
            ctx.spawn(task_b)           # outer scope, not synced yet
            with ctx.finish():
                ctx.spawn(task_a)       # completes inside the finish
            ctx.spawn(task_c)           # parallel with B, after A
            ctx.sync()

        executor = SerialExecutor(policy="help_first", order="fifo")
        paper = run_program(
            TaskProgram(main), executor=executor,
            observers=[OptAtomicityChecker()],
        )
        thorough = run_program(
            TaskProgram(main), executor=executor,
            observers=[OptAtomicityChecker(mode="thorough")],
        )
        assert not paper.report()
        assert set(thorough.report().locations()) == {"X"}


class TestRogueLockDivergence:
    def test_suite_case_is_marked(self):
        case = get("lock_same_cs_rogue_writer")
        assert case.oracle_divergent
        assert not case.expected

    def test_checkers_quiet_oracle_loud(self):
        case = get("lock_same_cs_rogue_writer")
        program = case.build()
        result = run_program(
            program, observers=[OptAtomicityChecker(mode="thorough")],
            record_trace=True,
        )
        assert not result.report()
        assert analytic_violation_locations(result.trace) == {"X"}

    def test_consistent_locking_has_no_divergence(self):
        """With a consistent discipline, checker == oracle (lock cases)."""
        for name in (
            "lock_same_critical_section",
            "lock_paper_figure11",
            "lock_consistent_counter",
        ):
            case = get(name)
            result = run_program(
                case.build(), observers=[OptAtomicityChecker()], record_trace=True
            )
            assert set(result.report().locations()) == set(case.expected)
            assert analytic_violation_locations(result.trace) == set(case.expected)
