"""Property-based tests for streaming compaction (hypothesis + pinned seeds).

Two properties, over generator-driven programs (the same shapes the
runtime builds -- spawns, syncs, nested finishes, locks):

* **Window monotonicity**: shrinking the compaction window never loses a
  verdict.  The implementation earns something stronger -- the normalized
  report is *identical* at every window -- and the stronger form is what
  gets pinned, with the containment stated as an explicit corollary so a
  future (sound but lossy-metadata) compaction strategy fails the right
  assertion first.

* **Compaction invisibility**: sweeping after *every* event (window=1,
  maximal eviction) reports exactly what never sweeping (unbounded
  window) reports, and both match the offline optimized checker.

Seeds are pinned: failures reproduce byte-for-byte.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CheckSession
from repro.fuzz import FuzzConfig, ProgramGenerator, program_from_spec
from repro.report import normalize_report, normalized_locations
from repro.runtime.executor import SerialExecutor
from repro.runtime.program import run_program

PINNED_SEEDS = [0, 1, 2, 7, 11, 42, 1234]


def _fuzzed_trace(seed):
    config = FuzzConfig(tasks=8, depth=3, locations=4, seed=seed)
    spec = ProgramGenerator(config).generate_spec(seed)
    result = run_program(
        program_from_spec(spec), executor=SerialExecutor(), record_trace=True
    )
    return result.trace


def _streamed(trace, window):
    return CheckSession(trace).check(
        streaming=True, window=window, mode="thorough"
    )


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_window_monotone(seed):
    """Shrinking the window never adds false negatives vs the ∞ window."""
    trace = _fuzzed_trace(seed)
    unbounded = _streamed(trace, 0)
    reference = normalize_report(unbounded)
    reference_locations = set(normalized_locations(unbounded))
    for window in (64, 8, 2, 1):
        windowed = _streamed(trace, window)
        # The corollary a lossy compactor would break first:
        assert reference_locations <= set(
            normalized_locations(windowed)
        ), (seed, window)
        # The stronger invariant this compactor actually provides:
        assert normalize_report(windowed) == reference, (seed, window)


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_compaction_invisible(seed):
    """Compact-after-every-event ≡ compact-never ≡ offline."""
    trace = _fuzzed_trace(seed)
    offline = normalize_report(CheckSession(trace).check(mode="thorough"))
    eager = normalize_report(_streamed(trace, 1))
    never = normalize_report(_streamed(trace, 0))
    assert eager == never == offline, seed


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    window=st.integers(min_value=1, max_value=96),
)
@settings(max_examples=25, deadline=None)
def test_any_window_matches_offline(seed, window):
    """hypothesis sweep: arbitrary (program, window) pairs agree with
    the offline check -- the shrinker hands back a minimal seed/window."""
    trace = _fuzzed_trace(seed)
    offline = normalize_report(CheckSession(trace).check(mode="thorough"))
    assert normalize_report(_streamed(trace, window)) == offline
