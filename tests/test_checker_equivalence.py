"""The central correctness property, property-tested.

For randomly generated task-parallel programs (consistent locking
discipline), the following must agree on the set of locations with a
violation in *some* schedule:

* the basic checker (unbounded history, complete reference);
* the optimized checker in thorough mode;
* the analytic structural oracle;
* the exhaustive interleaving explorer (on small programs).

The optimized checker in *paper* mode may under-report only in the
documented corner topologies (see test_opt_corner_cases); on these random
programs we assert it reports a subset of the thorough verdict and that
the verdict is identical across executors (schedule insensitivity).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.report import normalize_locations, normalize_report, normalized_locations
from repro.runtime import RandomOrderExecutor, SerialExecutor, run_program
from repro.trace.explore import (
    analytic_violation_locations,
    explore_violation_locations,
)
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.replay import replay_trace

SMALL = GeneratorConfig(
    tasks=3, accesses_per_task=3, locations=2, locks=1, consistent_locking=True
)
LOCKFREE = GeneratorConfig(tasks=3, accesses_per_task=3, locations=1, locks=0)
WIDE = GeneratorConfig(
    tasks=4, accesses_per_task=2, locations=3, locks=2, consistent_locking=True
)


def trace_for(config, seed):
    return TraceGenerator(config).generate_trace(seed=seed)


def checker_locations(trace, checker):
    # Order-independent canonical form exported by repro.report -- the
    # same normalizer the differential fuzzing oracle compares with.
    return normalized_locations(replay_trace(trace, checker))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_basic_equals_thorough_equals_analytic_lockfree(seed):
    trace = trace_for(LOCKFREE, seed)
    basic = checker_locations(trace, BasicAtomicityChecker())
    thorough = checker_locations(trace, OptAtomicityChecker(mode="thorough"))
    analytic = normalize_locations(analytic_violation_locations(trace))
    assert basic == thorough == analytic


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_basic_equals_thorough_equals_analytic_with_locks(seed):
    trace = trace_for(SMALL, seed)
    basic = checker_locations(trace, BasicAtomicityChecker())
    thorough = checker_locations(trace, OptAtomicityChecker(mode="thorough"))
    analytic = normalize_locations(analytic_violation_locations(trace))
    assert basic == thorough == analytic


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_wide_programs_agree(seed):
    trace = trace_for(WIDE, seed)
    basic = checker_locations(trace, BasicAtomicityChecker())
    thorough = checker_locations(trace, OptAtomicityChecker(mode="thorough"))
    assert basic == thorough
    paper = checker_locations(trace, OptAtomicityChecker(mode="paper"))
    assert set(paper) <= set(thorough)
    # Same trace, same checker: the full triple-level normal form must be
    # reproducible, not just the location set.
    thorough_report = replay_trace(trace, OptAtomicityChecker(mode="thorough"))
    again = replay_trace(trace, OptAtomicityChecker(mode="thorough"))
    assert normalize_report(thorough_report) == normalize_report(again)


@given(seed=st.integers(min_value=0, max_value=2_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_explorer_agrees_on_small_programs(seed):
    """Exhaustive schedule enumeration confirms the structural verdicts."""
    trace = trace_for(SMALL, seed)
    if len(trace.memory_events()) > 8:  # keep enumeration tractable
        return
    from repro.trace.explore import InterleavingExplorer

    explorer = InterleavingExplorer(trace, max_schedules=4_000)
    explored = explorer.violation_locations()
    if explorer.truncated:
        return  # bounded exploration cannot serve as ground truth
    analytic = analytic_violation_locations(trace)
    assert normalize_locations(explored) == normalize_locations(analytic)


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_verdict_schedule_insensitive(seed):
    """One program, three executors: identical violation locations.

    The theorem holds for the *complete* configuration (thorough mode ==
    basic checker).  Paper mode's verdict can legitimately vary with the
    observation order in the documented corner cases (hypothesis found
    seed 155 doing exactly that), so for it we assert only that every
    schedule's verdict is a subset of the complete one.
    """
    generator = TraceGenerator(SMALL)
    program = generator.generate_program(seed=seed)
    thorough_verdicts = []
    for executor in (
        SerialExecutor(),
        SerialExecutor(policy="help_first", order="lifo"),
        RandomOrderExecutor(seed=seed ^ 0xBEEF),
    ):
        thorough = OptAtomicityChecker(mode="thorough")
        paper = OptAtomicityChecker(mode="paper")
        result = run_program(
            program, executor=executor, observers=[thorough, paper]
        )
        thorough_verdicts.append(normalized_locations(thorough.report))
        assert set(normalized_locations(paper.report)) <= set(
            normalized_locations(thorough.report)
        )
    assert thorough_verdicts[0] == thorough_verdicts[1] == thorough_verdicts[2]


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_paper_mode_subset_of_thorough(seed):
    trace = trace_for(SMALL, seed)
    paper = checker_locations(trace, OptAtomicityChecker(mode="paper"))
    thorough = checker_locations(trace, OptAtomicityChecker(mode="thorough"))
    assert set(paper) <= set(thorough)


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_optimized_metadata_bounded(seed):
    """Paper-mode global metadata never exceeds 12 entries per location."""
    trace = trace_for(WIDE, seed)
    checker = OptAtomicityChecker(mode="paper")
    replay_trace(trace, checker)
    assert checker.max_entries_per_location() <= 12
