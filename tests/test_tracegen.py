"""The trace generator (paper Section 4): shape control and determinism.

The paper's claim for this tool: "Our prototype successfully detects all
atomicity violations for a given input by examining one execution trace."
`test_one_trace_suffices` is that claim, verified against the exhaustive
interleaving explorer.
"""

import pytest

from repro.checker import OptAtomicityChecker
from repro.runtime import SerialExecutor, run_program
from repro.trace.explore import explore_violation_locations
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.replay import replay_trace


class TestDeterminism:
    def test_same_seed_same_spec(self):
        generator = TraceGenerator(GeneratorConfig(tasks=4, seed=11))
        assert generator.generate_spec() == generator.generate_spec()

    def test_different_seeds_differ_somewhere(self):
        generator = TraceGenerator(GeneratorConfig(tasks=4))
        specs = {generator.generate_spec(seed) for seed in range(10)}
        assert len(specs) > 1

    def test_same_seed_same_trace(self):
        generator = TraceGenerator(GeneratorConfig(tasks=3, seed=5))
        first = generator.generate_trace()
        second = generator.generate_trace()
        assert [e.seq for e in first.memory_events()] == [
            e.seq for e in second.memory_events()
        ]
        assert [e.location for e in first.memory_events()] == [
            e.location for e in second.memory_events()
        ]

    def test_same_seed_identical_traces_field_for_field(self):
        """Regression: all randomness flows through the injected rng.

        An audit (2026-08) found no unseeded ``random.*`` usage in
        ``repro.suite`` or ``repro.trace.generator``; this pins that down
        by requiring two same-seed generate+record runs to produce
        *identical* event streams -- every field, locksets included --
        not just matching locations.
        """
        events = []
        for _ in range(2):
            generator = TraceGenerator(GeneratorConfig(tasks=5, seed=23))
            trace = generator.generate_trace()
            events.append(
                [
                    (e.seq, e.task, e.step, e.location, e.access_type, e.lockset)
                    for e in trace.memory_events()
                ]
            )
        assert events[0] == events[1]
        assert events[0], "a seeded run must record at least one event"

    def test_same_seed_identical_traces_under_random_executor(self):
        from repro.runtime import RandomOrderExecutor

        generator = TraceGenerator(GeneratorConfig(tasks=5, seed=23))
        streams = []
        for _ in range(2):
            program = generator.generate_program(seed=23)
            result = run_program(
                program, executor=RandomOrderExecutor(seed=99), record_trace=True
            )
            streams.append(
                [
                    (e.seq, e.task, e.location, e.access_type, e.lockset)
                    for e in result.trace.memory_events()
                ]
            )
        assert streams[0] == streams[1]


class TestShapeControls:
    def test_task_budget_respected(self):
        config = GeneratorConfig(tasks=5, max_depth=3)
        generator = TraceGenerator(config)
        for seed in range(10):
            trace = generator.generate_trace(seed=seed)
            # root task + at most `tasks` spawned tasks
            assert len(trace.task_ids()) <= config.tasks + 1

    def test_locations_drawn_from_pool(self):
        config = GeneratorConfig(tasks=3, locations=2)
        generator = TraceGenerator(config)
        for seed in range(5):
            trace = generator.generate_trace(seed=seed)
            for event in trace.memory_events():
                assert event.location in {("g", 0), ("g", 1)}

    def test_no_locks_when_disabled(self):
        generator = TraceGenerator(GeneratorConfig(tasks=3, locks=0))
        for seed in range(5):
            trace = generator.generate_trace(seed=seed)
            for event in trace.memory_events():
                assert event.lockset == ()

    def test_consistent_locking_discipline(self):
        """Each location's accesses always hold the same base lock (or none)."""
        config = GeneratorConfig(
            tasks=4, locations=2, locks=2, lock_probability=1.0,
            consistent_locking=True,
        )
        generator = TraceGenerator(config)
        for seed in range(8):
            trace = generator.generate_trace(seed=seed)
            lock_of = {}
            for event in trace.memory_events():
                bases = frozenset(name.split("#")[0] for name in event.lockset)
                previous = lock_of.setdefault(event.location, bases)
                assert previous == bases

    def test_write_probability_extremes(self):
        reads_only = TraceGenerator(
            GeneratorConfig(tasks=2, write_probability=0.0)
        ).generate_trace(seed=1)
        assert all(e.is_read for e in reads_only.memory_events())
        writes_only = TraceGenerator(
            GeneratorConfig(tasks=2, write_probability=1.0)
        ).generate_trace(seed=1)
        assert all(e.is_write for e in writes_only.memory_events())

    def test_invalid_root_spec_rejected(self):
        generator = TraceGenerator()
        with pytest.raises(ValueError):
            generator.program_from_spec(("access", ("g", 0), "read"))


class TestOneTraceSuffices:
    """The paper's completeness demonstration, against the explorer."""

    @pytest.mark.parametrize("seed", range(12))
    def test_one_trace_suffices(self, seed):
        config = GeneratorConfig(
            tasks=3, accesses_per_task=2, locations=1, locks=1,
            consistent_locking=True, seed=0,
        )
        generator = TraceGenerator(config)
        trace = generator.generate_trace(seed=seed)
        if len(trace.memory_events()) > 8:
            pytest.skip("enumeration too large for this seed")
        ground_truth = explore_violation_locations(trace, max_schedules=3_000)
        found = set(replay_trace(trace, OptAtomicityChecker()).locations())
        assert found == ground_truth

    def test_program_rerunnable_under_other_executor(self):
        generator = TraceGenerator(GeneratorConfig(tasks=3, seed=2))
        program = generator.generate_program(seed=7)
        first = run_program(program, observers=[OptAtomicityChecker()])
        second = run_program(
            program,
            executor=SerialExecutor(policy="help_first", order="lifo"),
            observers=[OptAtomicityChecker()],
        )
        assert set(first.report().locations()) == set(second.report().locations())
