"""Label-based parallelism engine: correctness against the LCA engine."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checker import OptAtomicityChecker
from repro.dpst import ArrayDPST, LCAEngine, NodeKind, ROOT_ID, relation
from repro.dpst.labels import LabelEngine, compute_label, labels_parallel
from repro.runtime import TaskProgram, run_program
from repro.trace.generator import GeneratorConfig, TraceGenerator

from tests.conftest import build_figure2
from tests.test_dpst_property import insertion_scripts, replay


class TestLabels:
    def test_root_label_empty(self):
        tree = ArrayDPST()
        assert compute_label(tree, ROOT_ID) == ()

    def test_label_length_is_depth(self):
        tree = ArrayDPST()
        build_figure2(tree)
        for node in tree.nodes():
            assert len(compute_label(tree, node)) == tree.depth(node)

    def test_figure2_verdicts(self):
        tree = ArrayDPST()
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        engine = LabelEngine(tree)
        assert engine.parallel(s2, s12)
        assert engine.parallel(s2, s3)
        assert not engine.parallel(s11, s2)
        assert not engine.parallel(s12, s3)

    def test_precedes(self):
        tree = ArrayDPST()
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        engine = LabelEngine(tree)
        assert engine.precedes(s11, s2)
        assert engine.precedes(s12, s3)
        assert not engine.precedes(s3, s12)
        assert not engine.precedes(s2, s3)  # parallel, not ordered

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            labels_parallel(((0, True),), ((0, False),))

    def test_stats_match_lca_engine_shape(self):
        tree = ArrayDPST()
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        engine = LabelEngine(tree)
        engine.parallel(s2, s3)
        engine.parallel(s2, s3)
        assert engine.stats.queries == 2
        assert engine.stats.unique == 1
        engine.reset_stats()
        assert engine.stats.queries == 0


@given(insertion_scripts())
@settings(max_examples=50, deadline=None)
def test_label_engine_equals_lca_engine(script):
    tree = replay(script, ArrayDPST())
    labels = LabelEngine(tree)
    lca = LCAEngine(tree)
    for a in tree.nodes():
        for b in tree.nodes():
            assert labels.parallel(a, b) == lca.parallel(a, b), (a, b)


@given(insertion_scripts())
@settings(max_examples=30, deadline=None)
def test_label_precedes_equals_relation(script):
    tree = replay(script, ArrayDPST())
    engine = LabelEngine(tree)
    steps = tree.step_nodes()
    for a in steps:
        for b in steps:
            assert engine.precedes(a, b) == relation.precedes(tree, a, b), (a, b)


class TestCheckerUnderLabelEngine:
    def test_run_program_option(self):
        def rmw(ctx):
            value = ctx.read("X")
            ctx.write("X", value + 1)

        def main(ctx):
            ctx.spawn(rmw)
            ctx.spawn(rmw)
            ctx.sync()

        checker = OptAtomicityChecker()
        result = run_program(
            TaskProgram(main), observers=[checker], parallel_engine="labels"
        )
        assert set(result.report().locations()) == {"X"}

    def test_invalid_engine_rejected(self):
        def main(ctx):
            ctx.read("X")

        with pytest.raises(ValueError):
            run_program(
                TaskProgram(main),
                observers=[OptAtomicityChecker()],
                parallel_engine="voodoo",
            )

    @given(seed=st.integers(min_value=0, max_value=3_000))
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_same_verdicts_as_lca_on_generated_programs(self, seed):
        generator = TraceGenerator(
            GeneratorConfig(tasks=4, accesses_per_task=3, locations=2, locks=1)
        )
        program = generator.generate_program(seed=seed)
        with_lca = OptAtomicityChecker(mode="thorough")
        run_program(program, observers=[with_lca], parallel_engine="lca")
        with_labels = OptAtomicityChecker(mode="thorough")
        run_program(program, observers=[with_labels], parallel_engine="labels")
        assert set(with_lca.report.locations()) == set(
            with_labels.report.locations()
        )

    def test_suite_passes_under_labels(self):
        from repro.suite import all_cases

        for case in all_cases():
            checker = OptAtomicityChecker()
            result = run_program(
                case.build(), observers=[checker], parallel_engine="labels"
            )
            assert set(result.report().locations()) == set(case.expected), case.name
