"""CheckSession: the unified front door over programs, traces, and files."""

import pytest

from repro import CheckSession, TaskProgram, check_trace, run_program
from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.errors import TraceError
from repro.report import ViolationReport
from repro.trace.serialize import dump_trace


RUNS = []


def _rmw(ctx):
    value = ctx.read("X")
    ctx.write("X", value + 1)


def buggy_body(ctx):
    RUNS.append(1)
    ctx.write("X", 0)
    ctx.spawn(_rmw)
    ctx.spawn(_rmw)
    ctx.sync()


def safe_body(ctx):
    def writer(inner, i):
        inner.write(("out", i), i)

    for i in range(3):
        ctx.spawn(writer, i)
    ctx.sync()


@pytest.fixture(autouse=True)
def _reset_runs():
    RUNS.clear()


def recorded_trace():
    return run_program(TaskProgram(buggy_body), record_trace=True).trace


class TestProgramSource:
    def test_check_finds_violation(self):
        report = CheckSession(TaskProgram(buggy_body)).check()
        assert set(report.locations()) == {"X"}

    def test_bare_callable_is_wrapped(self):
        assert CheckSession(buggy_body).check()

    def test_program_runs_exactly_once(self):
        session = CheckSession(TaskProgram(buggy_body))
        session.check("optimized")
        session.check("basic")
        session.check("racedetector")
        assert sum(RUNS) == 1
        assert set(session.reports) == {"optimized", "basic", "racedetector"}

    def test_program_annotations_flow_through(self):
        from repro.checker.annotations import AtomicAnnotations

        annotations = AtomicAnnotations().annotate("Y")  # X unchecked
        program = TaskProgram(buggy_body, annotations=annotations)
        assert not CheckSession(program).check()

    def test_sharded_program_source(self):
        report = CheckSession(TaskProgram(buggy_body), jobs=2).check()
        assert set(report.locations()) == {"X"}

    def test_source_kind_and_run_result(self):
        session = CheckSession(TaskProgram(buggy_body))
        assert session.source_kind == "program"
        session.check()
        assert session.run_result is not None
        assert session.dpst is not None


class TestTraceSource:
    def test_trace_checked_offline(self):
        session = CheckSession(recorded_trace())
        assert session.source_kind == "trace"
        assert set(session.check().locations()) == {"X"}

    def test_run_result_absent(self):
        assert CheckSession(recorded_trace()).run_result is None


class TestFileSource:
    @pytest.mark.parametrize("suffix", ["json", "jsonl"])
    def test_both_formats(self, tmp_path, suffix):
        path = str(tmp_path / f"trace.{suffix}")
        dump_trace(recorded_trace(), path)
        session = CheckSession(path)
        assert session.source_kind == "file"
        assert set(session.check().locations()) == {"X"}

    def test_sharded_file_source(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace(recorded_trace(), path)
        report = CheckSession(path, jobs=4).check()
        assert set(report.locations()) == {"X"}

    def test_trace_property_materializes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        trace = recorded_trace()
        dump_trace(trace, path)
        session = CheckSession(path)
        assert len(session.trace) == len(trace)
        assert session.dpst is not None


class TestCheckerSpecs:
    def test_class_and_instance_specs(self):
        trace = recorded_trace()
        by_class = CheckSession(trace, checker=OptAtomicityChecker).check()
        by_instance = CheckSession(trace).check(BasicAtomicityChecker())
        assert by_class and by_instance

    def test_checker_kwargs_forwarded(self):
        session = CheckSession(recorded_trace())
        session.check("optimized", mode="thorough")
        assert "optimized" in session.reports

    def test_check_all(self):
        reports = CheckSession(recorded_trace()).check_all("optimized", "basic")
        assert set(reports) == {"optimized", "basic"}
        assert all(isinstance(r, ViolationReport) for r in reports.values())


class TestAggregateViews:
    def test_report_merges_all_checks(self):
        session = CheckSession(recorded_trace())
        session.check("optimized")
        session.check("basic")
        merged = session.report()
        assert len(merged) >= len(session.reports["optimized"])

    def test_report_runs_default_check_on_demand(self):
        session = CheckSession(recorded_trace())
        assert session.report()
        assert "optimized" in session.reports

    def test_first_violation(self):
        violation = CheckSession(recorded_trace()).first_violation
        assert violation is not None and violation.location == "X"

    def test_first_violation_none_when_safe(self):
        assert CheckSession(TaskProgram(safe_body)).first_violation is None


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ["lca", "labels"])
    def test_engines_agree(self, engine):
        report = CheckSession(recorded_trace(), engine=engine).check()
        assert set(report.locations()) == {"X"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(TraceError):
            CheckSession(recorded_trace(), engine="psychic").check()


class TestErrors:
    def test_bad_source(self):
        with pytest.raises(TraceError):
            CheckSession(12345)


class TestConvenienceWrapper:
    def test_check_trace_on_every_source_shape(self, tmp_path):
        trace = recorded_trace()
        path = str(tmp_path / "t.jsonl")
        dump_trace(trace, path)
        for source in (TaskProgram(buggy_body), trace, path):
            assert set(check_trace(source).locations()) == {"X"}

    def test_check_trace_jobs(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        dump_trace(recorded_trace(), path)
        assert check_trace(path, jobs=2)
