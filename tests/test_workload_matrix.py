"""Workloads x configurations matrix.

All 13 kernels stay clean and deterministic under: the linked DPST
layout, disabled LCA caching, randomized scheduling, and the basic
checker -- the cross-product that the focused tests sample only
partially.  Results (final shadow memory) must be identical across
serial configurations.
"""

import pytest

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.runtime import RandomOrderExecutor, run_program
from repro.workloads import all_workloads

SPECS = all_workloads()


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestConfigurations:
    def test_clean_under_linked_dpst(self, spec):
        checker = OptAtomicityChecker()
        result = run_program(
            spec.build(spec.test_scale),
            observers=[checker],
            dpst_layout="linked",
        )
        assert not result.report()

    def test_clean_without_lca_cache(self, spec):
        checker = OptAtomicityChecker()
        result = run_program(
            spec.build(spec.test_scale), observers=[checker], lca_cache=False
        )
        assert not result.report()

    def test_clean_under_random_schedule(self, spec):
        checker = OptAtomicityChecker()
        result = run_program(
            spec.build(spec.test_scale),
            executor=RandomOrderExecutor(seed=99),
            observers=[checker],
        )
        assert not result.report()

    def test_clean_under_basic_checker(self, spec):
        checker = BasicAtomicityChecker()
        result = run_program(spec.build(spec.test_scale), observers=[checker])
        assert not result.report()

    def test_memory_agrees_across_serial_schedules(self, spec):
        """Lock-correct kernels produce consistent results regardless of
        schedule, up to two legitimate schedule effects: floating-point
        reductions accumulate in completion order (compare with
        tolerance), and some kernels allocate record slots in completion
        order (compare only the keys present under both schedules)."""
        from repro.runtime import SerialExecutor

        first = run_program(
            spec.build(spec.test_scale), executor=SerialExecutor()
        ).shadow.snapshot()
        second = run_program(
            spec.build(spec.test_scale),
            executor=SerialExecutor(policy="help_first", order="lifo"),
        ).shadow.snapshot()
        assert len(first) == len(second)
        # Kernels that mint record slots (or scratch arrays) in completion
        # order: only a stable subset of keys is schedule-comparable.
        stable_heads = {
            "karatsuba": {"x", "y", "z"},          # scratch arrays are z<N>
            "delrefine": {"tri_n"},                # splits land in any slot
            "deltriang": {"tri_n", "owner"},
            "convexhull": {"hull_n", "px", "py"},  # hull order varies
        }.get(spec.name)
        compared = 0
        for key in set(first) & set(second):
            head = key[0] if isinstance(key, tuple) and key else key
            if stable_heads is not None and head not in stable_heads:
                continue
            a, b = first[key], second[key]
            compared += 1
            if isinstance(a, float) and isinstance(b, float):
                assert a == pytest.approx(b, rel=1e-6, abs=1e-9), key
            else:
                assert a == b, key
        assert compared  # schedule-independent core state exists
