"""Shadow memory: values, defaults, strict mode, accounting."""

import pytest

from repro.errors import RuntimeUsageError
from repro.runtime.shadow import ShadowMemory


class TestValues:
    def test_store_then_load(self):
        shadow = ShadowMemory()
        shadow.store("X", 42)
        assert shadow.load("X") == 42

    def test_default_for_unwritten(self):
        shadow = ShadowMemory(default=7)
        assert shadow.load("missing") == 7

    def test_initial_memory(self):
        shadow = ShadowMemory(initial={"X": 1, ("a", 0): 2})
        assert shadow.load("X") == 1
        assert shadow.load(("a", 0)) == 2

    def test_strict_mode_raises(self):
        shadow = ShadowMemory(default=ShadowMemory.STRICT)
        with pytest.raises(RuntimeUsageError):
            shadow.load("missing")

    def test_strict_mode_ok_after_write(self):
        shadow = ShadowMemory(default=ShadowMemory.STRICT)
        shadow.store("X", 1)
        assert shadow.load("X") == 1

    def test_tuple_locations(self):
        shadow = ShadowMemory()
        shadow.store(("grid", 2, 3), 9)
        assert shadow.load(("grid", 2, 3)) == 9
        assert shadow.load(("grid", 3, 2)) == 0


class TestAccounting:
    def test_counts(self):
        shadow = ShadowMemory()
        shadow.store("X", 1)
        shadow.load("X")
        shadow.load("Y")
        assert shadow.write_count == 1
        assert shadow.read_count == 2
        assert shadow.access_count == 3

    def test_unique_locations(self):
        shadow = ShadowMemory(initial={"A": 0})
        shadow.store("B", 1)
        shadow.store("B", 2)
        assert shadow.unique_locations == 2

    def test_peek_does_not_count(self):
        shadow = ShadowMemory(initial={"X": 5})
        assert shadow.peek("X") == 5
        assert shadow.peek("missing", default="d") == "d"
        assert shadow.read_count == 0

    def test_snapshot_is_copy(self):
        shadow = ShadowMemory(initial={"X": 1})
        snap = shadow.snapshot()
        snap["X"] = 99
        assert shadow.load("X") == 1

    def test_contains_and_len(self):
        shadow = ShadowMemory(initial={"X": 1})
        assert "X" in shadow
        assert "Y" not in shadow
        assert len(shadow) == 1
        assert list(shadow.locations()) == ["X"]
