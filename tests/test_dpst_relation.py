"""Series-parallel relation tests (the SPD3 rule) on hand-built trees."""

import pytest

from repro.dpst import NodeKind, ROOT_ID, relation

from tests.conftest import build_figure2


class TestFigure2Relations:
    """The exact claims the paper makes about Figure 2."""

    def test_s2_parallel_s12(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert relation.parallel(tree, s2, s12)
        assert relation.parallel(tree, s12, s2)

    def test_s2_parallel_s3(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert relation.parallel(tree, s2, s3)

    def test_s11_not_parallel_s2(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert not relation.parallel(tree, s11, s2)
        assert relation.precedes(tree, s11, s2)

    def test_s12_not_parallel_s3(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert not relation.parallel(tree, s12, s3)
        assert relation.precedes(tree, s12, s3)

    def test_s11_precedes_everything(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        for later in (s2, s12, s3):
            assert relation.precedes(tree, s11, later)
            assert not relation.precedes(tree, later, s11)


class TestLCA:
    def test_lca_of_figure2_pairs(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert relation.lca(tree, s2, s3) == f12
        assert relation.lca(tree, s2, s12) == f12
        assert relation.lca(tree, s11, s2) == ROOT_ID
        assert relation.lca(tree, s11, s12) == ROOT_ID

    def test_lca_with_self(self, tree):
        s11, *_ = build_figure2(tree)
        assert relation.lca(tree, s11, s11) == s11

    def test_lca_with_ancestor(self, tree):
        s11, f12, a2, s2, *_ = build_figure2(tree)
        assert relation.lca(tree, a2, s2) == a2
        assert relation.lca(tree, s2, a2) == a2

    def test_lca_children_toward(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        lca, toward_a, toward_b = relation.lca_with_children(tree, s2, s3)
        assert (lca, toward_a, toward_b) == (f12, a2, a3)


class TestRelationProperties:
    def test_parallel_irreflexive(self, tree):
        nodes = build_figure2(tree)
        for node in nodes:
            assert not relation.parallel(tree, node, node)

    def test_parallel_symmetric(self, tree):
        nodes = build_figure2(tree)
        for a in nodes:
            for b in nodes:
                assert relation.parallel(tree, a, b) == relation.parallel(tree, b, a)

    def test_precedes_antisymmetric(self, tree):
        nodes = build_figure2(tree)
        for a in nodes:
            for b in nodes:
                if a != b:
                    assert not (
                        relation.precedes(tree, a, b) and relation.precedes(tree, b, a)
                    )

    def test_steps_partition_into_parallel_or_ordered(self, tree):
        """Any two distinct steps are exactly one of: parallel, a<b, b<a."""
        build_figure2(tree)
        steps = tree.step_nodes()
        for a in steps:
            for b in steps:
                if a == b:
                    continue
                relations = [
                    relation.parallel(tree, a, b),
                    relation.precedes(tree, a, b),
                    relation.precedes(tree, b, a),
                ]
                assert sum(relations) == 1

    def test_series_is_negation_of_parallel(self, tree):
        nodes = build_figure2(tree)
        for a in nodes:
            for b in nodes:
                if a != b:
                    assert relation.series(tree, a, b) != relation.parallel(tree, a, b)


class TestLeftOf:
    def test_left_of_siblings(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert relation.left_of(tree, s11, f12)
        assert not relation.left_of(tree, f12, s11)

    def test_left_of_across_subtrees(self, tree):
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
        assert relation.left_of(tree, s2, s3)
        assert relation.left_of(tree, s2, s12)
        assert not relation.left_of(tree, s3, s2)

    def test_ancestor_is_left_of_descendant(self, tree):
        s11, f12, a2, s2, *_ = build_figure2(tree)
        assert relation.left_of(tree, a2, s2)
        assert not relation.left_of(tree, s2, a2)

    def test_left_of_self_is_false(self, tree):
        s11, *_ = build_figure2(tree)
        assert not relation.left_of(tree, s11, s11)


class TestNestedStructure:
    def test_nested_async_parallel_with_outer_continuation(self, tree):
        # F0 -> A1 -> F2 -> A3 -> S4 (deep step); F0 -> S5 (continuation)
        a1 = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        f2 = tree.add_node(a1, NodeKind.FINISH)
        a3 = tree.add_node(f2, NodeKind.ASYNC)
        s4 = tree.add_node(a3, NodeKind.STEP)
        s5 = tree.add_node(ROOT_ID, NodeKind.STEP)
        assert relation.parallel(tree, s4, s5)

    def test_finish_forces_series(self, tree):
        # F0 -> F1 -> A2 -> S3; F0 -> S4: the finish scope closed first.
        f1 = tree.add_node(ROOT_ID, NodeKind.FINISH)
        a2 = tree.add_node(f1, NodeKind.ASYNC)
        s3 = tree.add_node(a2, NodeKind.STEP)
        s4 = tree.add_node(ROOT_ID, NodeKind.STEP)
        assert not relation.parallel(tree, s3, s4)
        assert relation.precedes(tree, s3, s4)

    def test_two_asyncs_same_finish_parallel(self, tree):
        f1 = tree.add_node(ROOT_ID, NodeKind.FINISH)
        a2 = tree.add_node(f1, NodeKind.ASYNC)
        s3 = tree.add_node(a2, NodeKind.STEP)
        a4 = tree.add_node(f1, NodeKind.ASYNC)
        s5 = tree.add_node(a4, NodeKind.STEP)
        assert relation.parallel(tree, s3, s5)
