"""LCA engine: memoization behaviour and the Table 1 statistics."""

from repro.dpst import ArrayDPST, LCAEngine, NodeKind, ROOT_ID

from tests.conftest import build_figure2


def make_engine(cache=True):
    tree = ArrayDPST()
    ids = build_figure2(tree)
    return LCAEngine(tree, cache=cache), ids


class TestVerdicts:
    def test_parallel_matches_relation(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine()
        assert engine.parallel(s2, s3)
        assert engine.parallel(s2, s12)
        assert not engine.parallel(s11, s2)
        assert not engine.parallel(s12, s3)

    def test_series_helper(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine()
        assert engine.series(s11, s2)
        assert not engine.series(s2, s3)
        assert not engine.series(s2, s2)

    def test_self_is_never_parallel_and_not_counted(self):
        engine, (s11, *_) = make_engine()
        assert not engine.parallel(s11, s11)
        assert engine.stats.queries == 0

    def test_precedes(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine()
        assert engine.precedes(s11, s3)
        assert not engine.precedes(s3, s11)


class TestStats:
    def test_queries_counted(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine()
        engine.parallel(s2, s3)
        engine.parallel(s2, s3)
        engine.parallel(s3, s2)
        assert engine.stats.queries == 3
        assert engine.stats.unique == 1
        assert engine.stats.hits == 2

    def test_unique_fraction(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine()
        engine.parallel(s2, s3)
        engine.parallel(s2, s12)
        engine.parallel(s2, s3)
        engine.parallel(s2, s3)
        assert engine.stats.unique_fraction == 0.5

    def test_unique_fraction_empty(self):
        engine, _ = make_engine()
        assert engine.stats.unique_fraction == 0.0

    def test_uncached_counts_unique_too(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine(cache=False)
        engine.parallel(s2, s3)
        engine.parallel(s2, s3)
        engine.parallel(s11, s2)
        assert engine.stats.queries == 3
        assert engine.stats.unique == 2

    def test_hops_accumulate(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine(cache=False)
        before = engine.stats.hops
        engine.parallel(s2, s3)
        assert engine.stats.hops > before

    def test_reset_keeps_memo(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine()
        engine.parallel(s2, s3)
        engine.reset_stats()
        assert engine.stats.queries == 0
        engine.parallel(s2, s3)  # memo hit: no new unique
        assert engine.stats.queries == 1
        assert engine.stats.unique == 0

    def test_merge(self):
        engine, (s11, f12, a2, s2, s12, a3, s3) = make_engine()
        engine.parallel(s2, s3)
        other, ids = make_engine()
        other.parallel(ids[3], ids[6])
        other.parallel(ids[3], ids[6])
        engine.stats.merge(other.stats)
        assert engine.stats.queries == 3
        assert engine.stats.unique == 2


class TestGrowingTree:
    def test_queries_valid_while_tree_grows(self):
        tree = ArrayDPST()
        engine = LCAEngine(tree)
        f = tree.add_node(ROOT_ID, NodeKind.FINISH)
        a1 = tree.add_node(f, NodeKind.ASYNC)
        s1 = tree.add_node(a1, NodeKind.STEP)
        a2 = tree.add_node(f, NodeKind.ASYNC)
        s2 = tree.add_node(a2, NodeKind.STEP)
        assert engine.parallel(s1, s2)
        # Grow after querying: earlier verdicts stay valid, new ones work.
        s3 = tree.add_node(ROOT_ID, NodeKind.STEP)
        assert engine.parallel(s1, s2)
        assert not engine.parallel(s1, s3)
