"""DPST construction by the runtime: the shapes of Section 2.

These tests pin the construction rules: step nodes are maximal non-empty
access runs, the first spawn after a task start/sync creates a finish
node, spawned tasks hang under async nodes, sync pops the implicit scope.
"""

from repro.dpst import NodeKind, ROOT_ID, relation
from repro.runtime import SerialExecutor, TaskProgram, TraceRecorder, run_program


def shape(result):
    """(kind-letters by id) compact shape string for assertions."""
    tree = result.dpst
    return "".join(tree.kind(n).short() for n in tree.nodes())


def run(body, **kw):
    return run_program(TaskProgram(body), record_trace=True, **kw)


class TestStepFormation:
    def test_no_accesses_no_steps(self):
        def main(ctx):
            pass

        result = run(main)
        assert len(result.dpst) == 1  # root only

    def test_accesses_share_one_step(self):
        def main(ctx):
            ctx.write("X", 1)
            ctx.read("X")
            ctx.write("Y", 2)

        result = run(main)
        events = result.recorder.memory_events()
        assert len({e.step for e in events}) == 1
        assert shape(result) == "FS"

    def test_spawn_ends_step(self):
        def child(ctx):
            ctx.read("X")

        def main(ctx):
            ctx.read("X")       # step A
            ctx.spawn(child)
            ctx.read("X")       # step B (continuation)
            ctx.sync()

        result = run(main)
        events = result.recorder.memory_events()
        main_steps = [e.step for e in events if e.task == 0]
        assert main_steps[0] != main_steps[1]

    def test_sync_ends_step(self):
        def child(ctx):
            ctx.read("X")

        def main(ctx):
            ctx.spawn(child)
            ctx.read("X")
            ctx.sync()
            ctx.read("X")

        result = run(main)
        main_steps = [e.step for e in result.recorder.memory_events() if e.task == 0]
        assert main_steps[0] != main_steps[1]

    def test_empty_region_between_spawns_makes_no_step(self):
        def child(ctx):
            ctx.read("X")

        def main(ctx):
            ctx.spawn(child)
            ctx.spawn(child)    # no accesses between the spawns
            ctx.sync()

        result = run(main)
        # root F, implicit finish F, two asyncs with one step each: no
        # empty step node for the gap.
        kinds = [result.dpst.kind(n) for n in result.dpst.nodes()]
        assert kinds.count(NodeKind.STEP) == 2


class TestFigure2Construction:
    def build(self):
        def t2(ctx):
            a = ctx.read("X")
            ctx.write("X", a + 1)

        def t3(ctx):
            ctx.write("X", ctx.read("Y"))
            ctx.add("Y", 1)

        def main(ctx):
            ctx.write("X", 10)   # S11
            ctx.spawn(t2)
            ctx.add("Y", 1)      # S12
            ctx.spawn(t3)
            ctx.sync()

        return run(main)

    def test_shape_matches_figure2(self):
        result = self.build()
        tree = result.dpst
        root_children = tree.children(ROOT_ID)
        assert len(root_children) == 2
        s11, f12 = root_children
        assert tree.kind(s11) is NodeKind.STEP
        assert tree.kind(f12) is NodeKind.FINISH
        inner = tree.children(f12)
        assert [tree.kind(n) for n in inner] == [
            NodeKind.ASYNC,
            NodeKind.STEP,
            NodeKind.ASYNC,
        ]

    def test_relations_match_paper_claims(self):
        result = self.build()
        tree = result.dpst
        events = result.recorder.memory_events()
        steps_of = {}
        for event in events:
            steps_of.setdefault(event.task, [])
            if event.step not in steps_of[event.task]:
                steps_of[event.task].append(event.step)
        s11, s12 = steps_of[0]
        (s2,) = steps_of[1]
        (s3,) = steps_of[2]
        assert relation.parallel(tree, s2, s12)
        assert relation.parallel(tree, s2, s3)
        assert not relation.parallel(tree, s11, s2)
        assert not relation.parallel(tree, s12, s3)


class TestSyncScoping:
    def test_sync_closes_scope_so_later_spawn_gets_new_finish(self):
        def child(ctx):
            ctx.read("X")

        def main(ctx):
            ctx.spawn(child)
            ctx.sync()
            ctx.spawn(child)
            ctx.sync()

        result = run(main)
        tree = result.dpst
        finishes = [
            n
            for n in tree.nodes()
            if n != ROOT_ID and tree.kind(n) is NodeKind.FINISH
        ]
        assert len(finishes) == 2
        assert all(tree.parent(f) == ROOT_ID for f in finishes)

    def test_tasks_in_series_across_sync(self):
        def child(ctx):
            ctx.read("X")

        def main(ctx):
            ctx.spawn(child)
            ctx.sync()
            ctx.spawn(child)
            ctx.sync()

        result = run(main)
        tree = result.dpst
        events = result.recorder.memory_events()
        first = next(e.step for e in events if e.task == 1)
        second = next(e.step for e in events if e.task == 2)
        assert relation.precedes(tree, first, second)


class TestExplicitFinish:
    def test_finish_node_created(self):
        def child(ctx):
            ctx.read("X")

        def main(ctx):
            with ctx.finish():
                ctx.spawn(child)

        result = run(main)
        tree = result.dpst
        finish = tree.children(ROOT_ID)[0]
        assert tree.kind(finish) is NodeKind.FINISH
        async_node = tree.children(finish)[0]
        assert tree.kind(async_node) is NodeKind.ASYNC

    def test_asyncs_in_finish_are_parallel(self):
        def child(ctx, i):
            ctx.read(("X", i))

        def main(ctx):
            with ctx.finish():
                ctx.spawn(child, 0)
                ctx.spawn(child, 1)

        result = run(main)
        tree = result.dpst
        events = result.recorder.memory_events()
        s0 = next(e.step for e in events if e.task == 1)
        s1 = next(e.step for e in events if e.task == 2)
        assert relation.parallel(tree, s0, s1)

    def test_after_finish_in_series(self):
        def child(ctx):
            ctx.read("X")

        def main(ctx):
            with ctx.finish():
                ctx.spawn(child)
            ctx.read("X")   # after the finish closes

        result = run(main)
        tree = result.dpst
        events = result.recorder.memory_events()
        child_step = next(e.step for e in events if e.task == 1)
        after_step = next(e.step for e in events if e.task == 0)
        assert relation.precedes(tree, child_step, after_step)


class TestLayouts:
    def test_both_layouts_produce_identical_trees(self):
        def child(ctx):
            ctx.add("X", 1)

        def main(ctx):
            ctx.write("X", 0)
            ctx.spawn(child)
            ctx.spawn(child)
            ctx.sync()
            ctx.read("X")

        array = run(main, dpst_layout="array").dpst
        linked = run(main, dpst_layout="linked").dpst
        assert len(array) == len(linked)
        for node in array.nodes():
            assert array.kind(node) == linked.kind(node)
            assert array.parent(node) == linked.parent(node)
