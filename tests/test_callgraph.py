"""The interprocedural layer: call graph, SCCs, summaries, suppressions.

Covers :mod:`repro.static.callgraph` (resolution through module globals,
closures, and attribute chains; Tarjan condensation; stats) and
:mod:`repro.static.summaries` (bottom-up effect folding with a fixpoint
inside SCCs), plus their integration into
:func:`repro.static.skeleton_from_function`.
"""

import types

from repro.static import build_callgraph, compute_summaries, skeleton_from_function
from repro.static.accesses import EXACT
from repro.static.callgraph import (
    INLINE,
    SPAWN,
    scan_suppressions,
)

# -- module-level bodies (resolvable through this module's globals) ----------


def _leaf(ctx):
    ctx.write("leaf", 1)


def _mid(ctx):
    _leaf(ctx)
    ctx.read("mid")


def _spawner(ctx):
    ctx.spawn(_mid)
    ctx.sync()


def _ping(ctx):
    ctx.write("p", 1)
    _pong(ctx)


def _pong(ctx):
    ctx.read("q")
    _ping(ctx)


def _ping_driver(ctx):
    _ping(ctx)


def _locked_rec(ctx):
    with ctx.lock("L"):
        ctx.write("r", 1)
    _locked_rec(ctx)


def _escaping(ctx):
    box = [ctx]  # noqa: F841 -- deliberate ctx escape
    ctx.write("e", 1)


def _unresolved_spawn(ctx):
    fn = undefined_factory()  # noqa: F821 -- deliberately dynamic
    ctx.spawn(fn)


helpers = types.SimpleNamespace(leaf=_leaf, nested=types.SimpleNamespace(mid=_mid))


def _attr_caller(ctx):
    helpers.leaf(ctx)
    helpers.nested.mid(ctx)


def _marker(fn):
    return f"{fn.__module__}.{fn.__qualname__}"


# -- graph construction ------------------------------------------------------


class TestCallGraph:
    def test_inline_chain_resolves_through_globals(self):
        graph = build_callgraph(_spawner)
        assert _marker(_mid) in graph.facts
        assert _marker(_leaf) in graph.facts
        kinds = {
            (site.kind, site.callee)
            for sites in graph.edges.values()
            for site in sites
        }
        assert (SPAWN, _marker(_mid)) in kinds
        assert (INLINE, _marker(_leaf)) in kinds
        assert graph.unresolved_calls() == 0

    def test_attribute_chains_resolve(self):
        graph = build_callgraph(_attr_caller)
        assert _marker(_leaf) in graph.facts
        assert _marker(_mid) in graph.facts
        assert graph.unresolved_calls() == 0

    def test_unresolved_spawn_counted(self):
        graph = build_callgraph(_unresolved_spawn)
        assert graph.unresolved_calls() >= 1
        assert graph.stats().unresolved_calls >= 1

    def test_sccs_emitted_callees_first(self):
        graph = build_callgraph(_spawner)
        order = [frozenset(component) for component in graph.sccs()]
        position = {
            marker: index
            for index, component in enumerate(order)
            for marker in component
        }
        assert position[_marker(_leaf)] < position[_marker(_mid)]
        assert position[_marker(_mid)] < position[_marker(_spawner)]

    def test_mutual_recursion_is_one_scc(self):
        graph = build_callgraph(_ping_driver)
        components = [set(c) for c in graph.sccs() if len(c) > 1]
        assert components == [{_marker(_ping), _marker(_pong)}]
        assert graph.recursive_markers() == {_marker(_ping), _marker(_pong)}

    def test_stats_shape(self):
        stats = build_callgraph(_ping_driver).stats()
        assert stats.functions == 3
        assert stats.sccs == 2  # {_ping,_pong} + {_ping_driver}
        assert stats.unresolved_calls == 0
        assert stats.recursive_functions == 2
        data = stats.to_dict()
        assert set(data) >= {"functions", "sccs", "unresolved_calls"}


# -- summaries ---------------------------------------------------------------


class TestSummaries:
    def test_patterns_fold_bottom_up(self):
        graph = build_callgraph(_spawner)
        summaries = compute_summaries(graph)
        mid = summaries[_marker(_mid)]
        described = {p.describe() for p in mid.patterns}
        assert any("leaf" in text for text in described)
        assert any("mid" in text for text in described)

    def test_step_local_recursion(self):
        summaries = compute_summaries(build_callgraph(_ping_driver))
        ping = summaries[_marker(_ping)]
        pong = summaries[_marker(_pong)]
        assert ping.recursive and pong.recursive
        # Patterns reach the fixpoint: both members see both locations.
        assert ping.patterns == pong.patterns
        assert len(ping.patterns) == 2
        # Pure straight-line ctx accesses: safe to stop unrolling at.
        assert ping.step_local and ping.resolved

    def test_locks_void_step_locality(self):
        summaries = compute_summaries(build_callgraph(_locked_rec))
        summary = summaries[_marker(_locked_rec)]
        assert summary.locks
        assert not summary.step_local
        assert summary.resolved  # accesses still fully accounted for

    def test_spawn_edge_forces_constructs(self):
        summaries = compute_summaries(build_callgraph(_spawner))
        assert summaries[_marker(_spawner)].constructs
        assert summaries[_marker(_mid)].step_local

    def test_escape_and_unresolved_void_resolution(self):
        escaped = compute_summaries(build_callgraph(_escaping))[_marker(_escaping)]
        assert escaped.escapes and not escaped.resolved
        graph = build_callgraph(_unresolved_spawn)
        summary = compute_summaries(graph)[_marker(_unresolved_spawn)]
        assert summary.unresolved >= 1 and not summary.resolved


# -- suppression comment scanning --------------------------------------------


class TestSuppressionScan:
    def test_codes_and_blanket_forms(self):
        source = (
            "x = 1  # repro: ignore[SAV001, SAV104]\n"
            "y = 2\n"
            "z = 3  # repro: ignore\n"
        )
        found = scan_suppressions(source)
        assert found == {1: frozenset({"SAV001", "SAV104"}), 3: frozenset()}

    def test_case_and_whitespace_tolerant(self):
        found = scan_suppressions("a = 1  #repro:ignore[ sav001 ]\n")
        assert found == {1: frozenset({"SAV001"})}


# -- skeleton integration ----------------------------------------------------


class TestSkeletonIntegration:
    def test_callgraph_stats_land_on_skeleton(self):
        skeleton = skeleton_from_function(_spawner)
        stats = skeleton.callgraph_stats
        assert stats is not None
        assert stats.functions == 3
        assert stats.unresolved_calls == 0

    def test_attribute_resolved_helper_stays_exact(self):
        skeleton = skeleton_from_function(_attr_caller)
        assert skeleton.is_exact, [n.kind for n in skeleton.notes]
        locations = {a.location for a in skeleton.accesses}
        assert locations == {"leaf", "mid"}

    def test_step_local_recursion_stays_exact(self):
        skeleton = skeleton_from_function(_ping_driver)
        assert skeleton.is_exact, [
            (n.kind, n.detail) for n in skeleton.notes
        ]
        locations = {a.location for a in skeleton.accesses}
        assert locations == {"p", "q"}

    def test_effectful_recursion_gets_localized_note(self):
        skeleton = skeleton_from_function(_locked_rec)
        notes = [n for n in skeleton.notes if n.kind == "recursive-inline"]
        assert notes, [(n.kind, n.detail) for n in skeleton.notes]
        note = notes[0]
        assert note.localized
        assert all(p.kind == EXACT for p in note.patterns)
        assert {p.location for p in note.patterns} == {"r"}
