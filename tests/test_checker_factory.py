"""make_checker polymorphism and the run_program(checkers=...) surface."""

import pytest

from repro.checker import (
    BasicAtomicityChecker,
    OptAtomicityChecker,
    UnknownCheckerError,
    VelodromeChecker,
    checker_name_of,
    make_checker,
)
from repro.errors import CheckerError
from repro.runtime import TaskProgram, run_program


def buggy(ctx):
    def rmw(inner):
        value = inner.read("X")
        inner.write("X", value + 1)

    ctx.spawn(rmw)
    ctx.spawn(rmw)
    ctx.sync()


class TestMakeChecker:
    def test_name(self):
        assert isinstance(make_checker("optimized"), OptAtomicityChecker)

    def test_name_with_kwargs(self):
        assert make_checker("optimized", mode="thorough").mode == "thorough"

    def test_class(self):
        assert isinstance(make_checker(BasicAtomicityChecker), BasicAtomicityChecker)

    def test_class_with_kwargs(self):
        checker = make_checker(OptAtomicityChecker, mode="thorough")
        assert checker.mode == "thorough"

    def test_instance_passes_through(self):
        instance = VelodromeChecker()
        assert make_checker(instance) is instance

    def test_instance_rejects_kwargs(self):
        with pytest.raises(CheckerError):
            make_checker(OptAtomicityChecker(), mode="thorough")

    def test_unknown_name(self):
        with pytest.raises(UnknownCheckerError):
            make_checker("psychic")

    def test_unknown_object(self):
        with pytest.raises(CheckerError):
            make_checker(42)

    def test_error_doubles_as_value_error(self):
        # Long-standing callers catch ValueError; that contract holds.
        with pytest.raises(ValueError):
            make_checker("psychic")

    def test_default_is_optimized(self):
        assert isinstance(make_checker(), OptAtomicityChecker)


class TestCheckerNameOf:
    def test_all_forms(self):
        assert checker_name_of("basic") == "basic"
        assert checker_name_of(OptAtomicityChecker) == "optimized"
        assert checker_name_of(BasicAtomicityChecker()) == "basic"

    def test_fallback_to_type_name(self):
        class Oddball:
            pass

        assert checker_name_of(Oddball()) == "Oddball"


class TestRunProgramCheckers:
    def test_mixed_spec_forms(self):
        instance = VelodromeChecker()
        result = run_program(
            TaskProgram(buggy),
            checkers=["optimized", BasicAtomicityChecker, instance],
        )
        assert set(result.reports) == {"optimized", "basic", "velodrome"}
        assert instance in result.observers

    def test_reports_mapping_and_alias(self):
        result = run_program(TaskProgram(buggy), checkers=["optimized"])
        assert set(result.reports["optimized"].locations()) == {"X"}
        assert result.reports_by_checker() == result.reports

    def test_first_violation(self):
        result = run_program(TaskProgram(buggy), checkers=["optimized"])
        violation = result.first_violation()
        assert violation.location == "X"
        assert violation.pattern in ("RWR", "RWW")

    def test_first_violation_none_when_clean(self):
        def clean(ctx):
            ctx.write("X", 1)

        result = run_program(TaskProgram(clean), checkers=["optimized"])
        assert result.first_violation() is None

    def test_checkers_compose_with_observers(self):
        explicit = OptAtomicityChecker()
        result = run_program(
            TaskProgram(buggy), observers=[explicit], checkers=["basic"]
        )
        assert explicit in result.observers
        assert set(result.reports) == {"optimized", "basic"}
