"""The static series-parallel skeleton and its MHP index.

Covers :mod:`repro.static.structure` (spec and AST front ends, the
runtime's frame rules replayed lexically) and :mod:`repro.static.mhp`
(the DPST LCA rule applied to the static tree).
"""

import pytest

from repro.report import READ, WRITE
from repro.static.mhp import MHPIndex
from repro.static.structure import (
    ASYNC,
    FINISH,
    STEP,
    skeleton_from_function,
    skeleton_from_spec,
)

# -- module-level task bodies (inspect.getsource needs real files) -----------


def _fork_join(ctx):
    ctx.write("x", 0)
    ctx.spawn(_reader)
    ctx.spawn(_reader)
    ctx.sync()
    ctx.read("x")


def _reader(ctx):
    ctx.read("x")


def _finish_scope(ctx):
    with ctx.finish():
        ctx.spawn(_reader)
        ctx.spawn(_reader)
    ctx.write("x", 1)


def _loop_spawner(ctx):
    for _ in range(4):
        ctx.spawn(_reader)
    ctx.sync()


def _loop_fork_join(ctx):
    for _ in range(4):
        ctx.spawn(_reader)
        ctx.sync()


def _locked_writer(ctx):
    with ctx.lock("L"):
        ctx.write("x", 1)
    with ctx.lock("L"):
        ctx.write("x", 2)


def _helper(ctx):
    ctx.write("h", 1)


def _inliner(ctx):
    _helper(ctx)
    ctx.spawn(_reader)
    ctx.sync()


def _recursive(ctx):
    ctx.write("r", 1)
    ctx.spawn(_recursive)
    ctx.sync()


def _escaper(ctx):
    _unknown_sink(ctx)
    ctx.write("x", 1)


def _unknown_sink(*args, **kwargs):  # not ctx-first-arg inlinable: no body ctx use
    return args, kwargs


def _conditional_sync(ctx):
    ctx.spawn(_reader)
    if ctx.read("flag"):
        ctx.sync()


def _template_user(ctx):
    from repro.runtime import parallel_for

    parallel_for(ctx, 0, 8, _reader)


def _steps_accessing(skeleton, location):
    return sorted(
        {access.step.index for access in skeleton.accesses
         if access.location == location}
    )


# -- spec front end ----------------------------------------------------------


class TestSpecSkeleton:
    SPEC = (
        "task",
        (
            ("access", "a", WRITE),
            ("finish", (
                ("spawn", (("access", "a", WRITE),)),
                ("spawn", (("access", "a", READ),)),
            )),
            ("access", "a", READ),
        ),
    )

    def test_structure_and_exactness(self):
        skeleton = skeleton_from_spec(self.SPEC)
        assert skeleton.is_exact
        kinds = [node.kind for node in skeleton.nodes]
        assert kinds.count(ASYNC) == 2
        assert kinds.count(FINISH) >= 1
        assert len(skeleton.steps()) == 4  # pre, two spawn bodies, post

    def test_mhp_fork_join(self):
        skeleton = skeleton_from_spec(self.SPEC)
        mhp = MHPIndex(skeleton)
        steps = skeleton.steps()
        pre, body1, body2, post = steps
        assert mhp.parallel(body1, body2)
        assert mhp.serial(pre, body1)       # parent prefix precedes spawn
        assert mhp.serial(body1, post)      # finish joins before the tail
        assert not mhp.self_parallel(body1)

    def test_locked_spec_builds_locksets(self):
        spec = (
            "task",
            (
                ("locked", "L", (("access", "x", WRITE),)),
                ("locked", "L", (("access", "x", WRITE),)),
            ),
        )
        skeleton = skeleton_from_spec(spec)
        locksets = [access.lockset for access in skeleton.accesses]
        assert all(len(ls) == 1 for ls in locksets)
        # Lock versioning: re-entry mints a fresh version, so two
        # critical sections never spuriously protect a pattern.
        assert locksets[0].isdisjoint(locksets[1])

    def test_bad_spec_item(self):
        with pytest.raises(ValueError):
            skeleton_from_spec(("task", (("teleport", "X"),)))


# -- AST front end: the runtime's frame rules --------------------------------


class TestAstSkeleton:
    def test_fork_join_shape(self):
        skeleton = skeleton_from_function(_fork_join)
        assert skeleton.is_exact, skeleton.notes
        mhp = MHPIndex(skeleton)
        x_steps = [skeleton.nodes[i] for i in _steps_accessing(skeleton, "x")]
        pre, r1, r2, post = x_steps
        assert mhp.parallel(r1, r2)
        assert mhp.serial(pre, r1)
        assert mhp.serial(r2, post)

    def test_finish_scope_joins(self):
        skeleton = skeleton_from_function(_finish_scope)
        assert skeleton.is_exact, skeleton.notes
        mhp = MHPIndex(skeleton)
        reads = [a.step for a in skeleton.accesses if a.access_type == READ]
        write = next(a.step for a in skeleton.accesses if a.access_type == WRITE)
        assert mhp.parallel(reads[0], reads[1])
        assert all(mhp.serial(read, write) for read in reads)

    def test_loop_unrolled_twice(self):
        """Loop bodies are walked twice so cross-iteration parallelism
        (spawns without an in-loop sync) is visible."""
        skeleton = skeleton_from_function(_loop_spawner)
        mhp = MHPIndex(skeleton)
        reads = [a.step for a in skeleton.accesses if a.location == "x"]
        assert len(reads) == 2
        assert mhp.parallel(reads[0], reads[1])

    def test_loop_with_inner_sync_is_serial(self):
        skeleton = skeleton_from_function(_loop_fork_join)
        mhp = MHPIndex(skeleton)
        reads = [a.step for a in skeleton.accesses if a.location == "x"]
        assert len(reads) == 2
        assert mhp.serial(reads[0], reads[1])

    def test_lock_versioning_across_scopes(self):
        skeleton = skeleton_from_function(_locked_writer)
        assert skeleton.is_exact, skeleton.notes
        first, second = [a.lockset for a in skeleton.accesses]
        assert first and second
        assert first.isdisjoint(second)

    def test_helper_call_inlined(self):
        skeleton = skeleton_from_function(_inliner)
        locations = {a.location for a in skeleton.accesses}
        assert locations == {"h", "x"}
        assert skeleton.is_exact, skeleton.notes

    def test_recursive_spawn_is_self_parallel(self):
        skeleton = skeleton_from_function(_recursive)
        assert skeleton.recursive_markers
        mhp = MHPIndex(skeleton)
        writes = [a.step for a in skeleton.accesses if a.location == "r"]
        assert any(mhp.self_parallel(step) for step in writes)

    def test_ctx_escape_voids_exactness(self):
        skeleton = skeleton_from_function(_escaper)
        assert not skeleton.is_exact
        assert any(note.kind == "ctx-escape" for note in skeleton.notes)

    def test_conditional_sync_noted(self):
        """A sync that may not pair with its spawn (different region) is
        ignored with a note.  The spawn stays unjoined -- extra *static*
        parallelism, the conservative direction for serial-location
        proofs -- so the skeleton itself stays exact."""
        skeleton = skeleton_from_function(_conditional_sync)
        assert any(note.kind == "conditional-sync" for note in skeleton.notes)
        assert skeleton.is_exact
        mhp = MHPIndex(skeleton)
        spawned = next(a.step for a in skeleton.accesses if a.location == "x")
        flag = next(a.step for a in skeleton.accesses if a.location == "flag")
        assert mhp.parallel(spawned, flag)

    def test_parallel_for_template(self):
        skeleton = skeleton_from_function(_template_user)
        mhp = MHPIndex(skeleton)
        reads = [a.step for a in skeleton.accesses if a.location == "x"]
        assert len(reads) == 2  # the template models two representative bodies
        assert mhp.parallel(reads[0], reads[1])

    def test_budget_exceeded_degrades_gracefully(self):
        skeleton = skeleton_from_function(_fork_join, budget=3)
        assert any(note.kind == "budget-exceeded" for note in skeleton.notes)
        assert not skeleton.is_exact

    def test_access_set_interop(self):
        """The skeleton projects to the flat StaticAccessSet shape used
        by trace-coverage validation."""
        access_set = skeleton_from_function(_fork_join).access_set()
        assert access_set.may_access("x", WRITE)
        assert access_set.may_access("x", READ)

    def test_describe_renders_tree(self):
        text = skeleton_from_function(_fork_join).describe()
        assert STEP in text and ASYNC in text
