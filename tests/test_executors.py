"""Executors: all schedules compute the same results and verdicts.

The paper's point is schedule insensitivity of the *analysis*; these tests
additionally pin schedule insensitivity of deterministic *programs* (those
whose shared accesses commute or are ordered) and basic liveness of the
work-stealing pool.
"""

import pytest

from repro.checker import OptAtomicityChecker
from repro.runtime import (
    RandomOrderExecutor,
    SerialExecutor,
    TaskProgram,
    WorkStealingExecutor,
    run_program,
)

ALL_EXECUTORS = [
    lambda: SerialExecutor(),
    lambda: SerialExecutor(policy="help_first", order="fifo"),
    lambda: SerialExecutor(policy="help_first", order="lifo"),
    lambda: RandomOrderExecutor(seed=1),
    lambda: RandomOrderExecutor(seed=2),
    lambda: WorkStealingExecutor(workers=2),
    lambda: WorkStealingExecutor(workers=4),
]


def fanout_program():
    def child(ctx, i):
        ctx.write(("out", i), i * i)

    def main(ctx):
        for i in range(8):
            ctx.spawn(child, i)
        ctx.sync()
        return sum(ctx.read(("out", i)) for i in range(8))

    return TaskProgram(main)


def tree_program():
    def node(ctx, depth, index):
        if depth == 0:
            ctx.write(("leaf", index), index)
            return
        ctx.spawn(node, depth - 1, index * 2)
        ctx.spawn(node, depth - 1, index * 2 + 1)
        ctx.sync()

    def main(ctx):
        ctx.spawn(node, 3, 0)
        ctx.sync()
        return sum(ctx.read(("leaf", i)) for i in range(8))

    return TaskProgram(main)


@pytest.mark.parametrize("make_executor", ALL_EXECUTORS)
def test_fanout_result_identical(make_executor):
    result = run_program(fanout_program(), executor=make_executor())
    assert result.value == sum(i * i for i in range(8))


@pytest.mark.parametrize("make_executor", ALL_EXECUTORS)
def test_tree_result_identical(make_executor):
    result = run_program(tree_program(), executor=make_executor())
    assert result.value == sum(range(8))


@pytest.mark.parametrize("make_executor", ALL_EXECUTORS)
def test_checker_verdict_schedule_insensitive(make_executor):
    def rmw(ctx):
        value = ctx.read("X")
        ctx.write("X", value + 1)

    def main(ctx):
        for _ in range(3):
            ctx.spawn(rmw)
        ctx.sync()

    result = run_program(
        TaskProgram(main), executor=make_executor(), observers=[OptAtomicityChecker()]
    )
    assert set(result.report().locations()) == {"X"}


@pytest.mark.parametrize("make_executor", ALL_EXECUTORS)
def test_locked_program_clean_everywhere(make_executor):
    def rmw(ctx):
        with ctx.lock("L"):
            value = ctx.read("X")
            ctx.write("X", value + 1)

    def main(ctx):
        for _ in range(4):
            ctx.spawn(rmw)
        ctx.sync()
        return ctx.read("X")

    result = run_program(
        TaskProgram(main), executor=make_executor(), observers=[OptAtomicityChecker()]
    )
    assert not result.report()
    assert result.value == 4  # the lock makes the count exact


class TestSerialPolicies:
    def test_child_first_runs_child_at_spawn(self):
        order = []

        def child(ctx):
            order.append("child")

        def main(ctx):
            ctx.spawn(child)
            order.append("parent")
            ctx.sync()

        run_program(TaskProgram(main), executor=SerialExecutor())
        assert order == ["child", "parent"]

    def test_help_first_defers_children(self):
        order = []

        def child(ctx, i):
            order.append(f"child{i}")

        def main(ctx):
            ctx.spawn(child, 0)
            ctx.spawn(child, 1)
            order.append("parent")
            ctx.sync()

        run_program(
            TaskProgram(main), executor=SerialExecutor(policy="help_first")
        )
        assert order == ["parent", "child0", "child1"]

    def test_help_first_lifo_reverses(self):
        order = []

        def child(ctx, i):
            order.append(i)

        def main(ctx):
            for i in range(3):
                ctx.spawn(child, i)
            ctx.sync()

        run_program(
            TaskProgram(main),
            executor=SerialExecutor(policy="help_first", order="lifo"),
        )
        assert order == [2, 1, 0]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SerialExecutor(policy="nope")
        with pytest.raises(ValueError):
            SerialExecutor(order="sideways")


class TestRandomExecutor:
    def test_seed_determinism(self):
        def child(ctx, i):
            ctx.write(("order", ctx.task_id), i)

        def main(ctx):
            for i in range(5):
                ctx.spawn(child, i)
            ctx.sync()

        snaps = []
        for _ in range(2):
            result = run_program(
                TaskProgram(main), executor=RandomOrderExecutor(seed=9),
                record_trace=True,
            )
            snaps.append([e.task for e in result.recorder.memory_events()])
        assert snaps[0] == snaps[1]


class TestWorkStealing:
    def test_many_tasks_complete(self):
        def child(ctx, i):
            ctx.write(("out", i), 1)

        def main(ctx):
            for i in range(40):
                ctx.spawn(child, i)
            ctx.sync()
            return sum(ctx.read(("out", i)) for i in range(40))

        result = run_program(
            TaskProgram(main), executor=WorkStealingExecutor(workers=4)
        )
        assert result.value == 40

    def test_nested_sync_under_stealing(self):
        def leaf(ctx, i):
            ctx.write(("leaf", i), i)

        def mid(ctx, base):
            for i in range(3):
                ctx.spawn(leaf, base * 3 + i)
            ctx.sync()
            ctx.write(("mid", base), 1)

        def main(ctx):
            for base in range(4):
                ctx.spawn(mid, base)
            ctx.sync()
            return sum(ctx.read(("mid", b)) for b in range(4))

        result = run_program(
            TaskProgram(main), executor=WorkStealingExecutor(workers=3)
        )
        assert result.value == 4

    def test_exception_propagates(self):
        def bad(ctx):
            raise RuntimeError("task exploded")

        def main(ctx):
            ctx.spawn(bad)
            ctx.sync()

        with pytest.raises(RuntimeError, match="task exploded"):
            run_program(TaskProgram(main), executor=WorkStealingExecutor(workers=2))

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            WorkStealingExecutor(workers=0)

    def test_locks_exclude_across_workers(self):
        def bump(ctx):
            with ctx.lock("L"):
                value = ctx.read("X")
                ctx.write("X", value + 1)

        def main(ctx):
            for _ in range(16):
                ctx.spawn(bump)
            ctx.sync()
            return ctx.read("X")

        result = run_program(
            TaskProgram(main), executor=WorkStealingExecutor(workers=4)
        )
        assert result.value == 16
