"""The pluggable parallelism-engine API: registry, engines, plumbing.

Covers the registry surface (register/available/make, unknown-name
errors), the vector-clock and DePa engines against the reference
relation semantics, the deprecated ``lca_engine`` aliases, duck-typed
third-party engines flowing through the runtime and checkers, and the
derived surfaces (CLI choices, fuzz-oracle legs, per-engine metrics)
that must track the registry automatically.
"""

import argparse

import pytest

from repro.checker import OptAtomicityChecker
from repro.dpst import ArrayDPST, NodeKind, ROOT_ID, relation
from repro.dpst.depa import DePaEngine
from repro.dpst.engines import (
    ParallelismEngine,
    UnknownEngineError,
    _ENGINE_FACTORIES,
    available_engines,
    engine_name_of,
    make_engine,
    register_engine,
)
from repro.dpst.stats import EngineStats
from repro.dpst.vclock import VectorClockEngine
from repro.errors import CheckerError, TraceError
from repro.runtime.program import run_program
from repro.trace.replay import _make_context


def tiny_program(ctx):
    def rmw(inner):
        value = inner.read("X")
        inner.write("X", value + 1)

    ctx.spawn(rmw)
    ctx.spawn(rmw)
    ctx.sync()


def diamond_tree():
    """step - (two parallel tasks) - step, under one finish."""
    tree = ArrayDPST()
    s0 = tree.add_node(ROOT_ID, NodeKind.STEP)
    finish = tree.add_node(ROOT_ID, NodeKind.FINISH)
    a1 = tree.add_node(finish, NodeKind.ASYNC)
    s1 = tree.add_node(a1, NodeKind.STEP)
    a2 = tree.add_node(finish, NodeKind.ASYNC)
    s2 = tree.add_node(a2, NodeKind.STEP)
    s3 = tree.add_node(ROOT_ID, NodeKind.STEP)
    return tree, (s0, s1, s2, s3)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_engines()) >= {"lca", "labels", "vc", "depa"}

    def test_available_engines_sorted(self):
        names = available_engines()
        assert list(names) == sorted(names)

    def test_make_engine_builds_each_builtin(self):
        tree, _ = diamond_tree()
        for name in available_engines():
            engine = make_engine(name, tree)
            assert engine.tree is tree
            assert engine_name_of(engine) == name
            assert isinstance(engine.stats, EngineStats)

    def test_make_engine_forwards_cache_flag(self):
        tree, _ = diamond_tree()
        assert make_engine("lca", tree, cache=False).cache_enabled is False
        assert make_engine("depa", tree, cache=True).cache_enabled is True

    def test_unknown_engine_error_type_and_message(self):
        tree, _ = diamond_tree()
        with pytest.raises(UnknownEngineError) as exc:
            make_engine("psychic", tree)
        message = str(exc.value)
        assert "psychic" in message
        for name in available_engines():
            assert name in message
        # Every historical except clause must keep catching it.
        assert isinstance(exc.value, CheckerError)
        assert isinstance(exc.value, TraceError)
        assert isinstance(exc.value, ValueError)

    def test_register_engine_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_engine("", lambda tree, cache=True: None)

    def test_register_and_unregister_custom_engine(self):
        register_engine("reltest", lambda tree, cache=True: RelationEngine(tree, cache))
        try:
            assert "reltest" in available_engines()
            tree, _ = diamond_tree()
            assert isinstance(make_engine("reltest", tree), RelationEngine)
        finally:
            _ENGINE_FACTORIES.pop("reltest", None)


class RelationEngine:
    """A minimal duck-typed engine: defers every query to the relation."""

    engine_name = "reltest"

    def __init__(self, tree, cache=True):
        self.tree = tree
        self.cache_enabled = cache
        self.stats = EngineStats()

    def parallel(self, a, b):
        self.stats.queries += 1
        return relation.parallel(self.tree, a, b)

    def series(self, a, b):
        return a != b and not self.parallel(a, b)

    def precedes(self, a, b):
        return relation.precedes(self.tree, a, b)

    def reset_stats(self):
        self.stats = EngineStats()


class TestNewEngines:
    @pytest.mark.parametrize("engine_cls", [VectorClockEngine, DePaEngine])
    def test_diamond_verdicts(self, engine_cls):
        tree, (s0, s1, s2, s3) = diamond_tree()
        engine = engine_cls(tree)
        assert engine.parallel(s1, s2)
        assert engine.precedes(s0, s1)
        assert engine.precedes(s1, s3)  # the finish joins before s3
        assert engine.series(s0, s3)
        assert not engine.parallel(s1, s1)

    @pytest.mark.parametrize("engine_cls", [VectorClockEngine, DePaEngine])
    @pytest.mark.parametrize("cache", [True, False])
    def test_matches_relation_on_nested_tree(self, engine_cls, cache):
        tree = ArrayDPST()
        scope = ROOT_ID
        for _ in range(4):
            finish = tree.add_node(scope, NodeKind.FINISH)
            for _ in range(3):
                async_node = tree.add_node(finish, NodeKind.ASYNC)
                tree.add_node(async_node, NodeKind.STEP)
            tree.add_node(scope, NodeKind.STEP)
            scope = finish
        engine = engine_cls(tree, cache=cache)
        for a in tree.nodes():
            for b in tree.nodes():
                assert engine.parallel(a, b) == relation.parallel(tree, a, b), (a, b)
                assert engine.precedes(a, b) == relation.precedes(tree, a, b), (a, b)

    def test_depa_width_growth_mid_query(self):
        """Materializing b's label may regrade the codes; the already
        fetched code of *a* must not leak through in the old grading."""
        tree = ArrayDPST()
        finish = tree.add_node(ROOT_ID, NodeKind.FINISH)
        steps = []
        for _ in range(5):  # ranks up to 4: overflows the 2-bit grading
            async_node = tree.add_node(finish, NodeKind.ASYNC)
            steps.append(tree.add_node(async_node, NodeKind.STEP))
        engine = DePaEngine(tree)
        # First query pairs a low-rank node (labelled at the minimum
        # width) with a high-rank one (which forces the growth).
        assert engine.parallel(steps[0], steps[4])
        for a in steps:
            for b in steps:
                assert engine.parallel(a, b) == (a != b), (a, b)

    def test_depa_cached_queries_cost_no_hops(self):
        tree, (s0, s1, s2, s3) = diamond_tree()
        engine = DePaEngine(tree, cache=False)
        engine.parallel(s1, s2)
        labelled = engine.stats.hops
        assert labelled > 0
        engine.parallel(s2, s1)
        engine.parallel(s1, s2)
        assert engine.stats.hops == labelled  # O(1): no new label walks

    def test_vc_reset_stats_keeps_clocks(self):
        tree, (s0, s1, s2, s3) = diamond_tree()
        engine = VectorClockEngine(tree)
        assert engine.parallel(s1, s2)
        engine.reset_stats()
        assert engine.stats.queries == 0
        assert engine.parallel(s1, s2)
        assert engine.stats.queries == 1


class TestRuntimePlumbing:
    @pytest.mark.parametrize("name", ["vc", "depa"])
    def test_run_program_accepts_new_engines(self, name):
        checker = OptAtomicityChecker(mode="thorough")
        result = run_program(
            tiny_program, observers=[checker], parallel_engine=name
        )
        assert result.report().locations() == ["X"]
        assert engine_name_of(result.engine) == name

    def test_run_program_unknown_engine(self):
        with pytest.raises(UnknownEngineError):
            run_program(
                tiny_program,
                observers=[OptAtomicityChecker()],
                parallel_engine="voodoo",
            )

    def test_run_result_lca_engine_deprecated_alias(self):
        result = run_program(tiny_program)
        with pytest.warns(DeprecationWarning):
            legacy = result.lca_engine
        assert legacy is result.engine

    def test_run_context_lca_engine_deprecated_alias(self):
        tree, _ = diamond_tree()
        context = _make_context(tree, None)
        with pytest.warns(DeprecationWarning):
            legacy = context.lca_engine
        assert legacy is context.engine

    def test_checker_accepts_duck_typed_engine(self):
        register_engine("reltest", lambda tree, cache=True: RelationEngine(tree, cache))
        try:
            checker = OptAtomicityChecker(mode="thorough")
            result = run_program(
                tiny_program, observers=[checker], parallel_engine="reltest"
            )
            assert result.report().locations() == ["X"]
            assert result.engine.stats.queries > 0
        finally:
            _ENGINE_FACTORIES.pop("reltest", None)

    def test_checker_rejects_missing_engine(self):
        context = _make_context(None, None)
        with pytest.raises(CheckerError, match="parallelism engine"):
            OptAtomicityChecker().on_run_begin(context)


class TestDerivedSurfaces:
    def test_cli_choices_track_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        for command in ("check", "check-trace", "suite", "fuzz"):
            sub = subparsers.choices[command]
            action = next(
                a for a in sub._actions if "--engine" in a.option_strings
            )
            assert tuple(action.choices) == available_engines(), command

    def test_exact_legs_derived_from_registry(self):
        from repro.fuzz.oracle import EXACT_LEGS, exact_legs

        legs = exact_legs()
        assert "lca-engine" not in legs  # the reference itself
        for name in available_engines():
            if name != "lca":
                assert f"{name}-engine" in legs
        assert "vc-engine" not in exact_legs(reference="vc")
        assert "lca-engine" in exact_legs(reference="vc")
        assert EXACT_LEGS == legs

    def test_per_engine_metric_names_registered(self):
        from repro.obs import METRIC_NAMES

        for name in available_engines():
            for suffix in ("queries", "unique", "hops"):
                assert f"engine.{name}.{suffix}" in METRIC_NAMES

    def test_stats_labelled_by_engine_name(self):
        stats = EngineStats()
        stats.queries = 5
        metrics = stats.as_metrics("depa")
        assert metrics["engine.depa.queries"] == 5
        assert metrics["engine.queries"] == 5
        assert "engine.depa.queries" not in stats.as_metrics()

    def test_flush_engine_stats_emits_per_engine_counters(self):
        from repro.obs import MetricsRecorder, flush_engine_stats

        tree, (s0, s1, s2, s3) = diamond_tree()
        engine = make_engine("vc", tree)
        engine.parallel(s1, s2)
        recorder = MetricsRecorder()
        flush_engine_stats(recorder, engine)
        counters = recorder.snapshot().counters
        assert counters["engine.vc.queries"] == 1
        assert counters["engine.queries"] == 1
