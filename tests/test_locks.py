"""Lock versioning and lockset tracking (Section 3.3)."""

import pytest

from repro.errors import RuntimeUsageError
from repro.runtime.locks import LockTable, TaskLockState, versioned_name


class TestVersionedName:
    def test_epoch_zero_is_bare(self):
        assert versioned_name("L", 0) == "L"

    def test_later_epochs_suffixed(self):
        assert versioned_name("L", 1) == "L#1"
        assert versioned_name("L", 7) == "L#7"


class TestTaskLockState:
    def test_first_acquire_unversioned(self):
        state = TaskLockState(1)
        assert state.acquire("L") == "L"
        assert state.lockset() == {"L"}

    def test_reacquire_after_release_is_versioned(self):
        state = TaskLockState(1)
        state.acquire("L")
        assert state.release("L") == "L"
        assert state.acquire("L") == "L#1"
        state.release("L")
        assert state.acquire("L") == "L#2"

    def test_versioned_locksets_do_not_intersect(self):
        """The paper's Figure 12 property: {L} and {L#1} are disjoint."""
        state = TaskLockState(1)
        state.acquire("L")
        first = state.lockset()
        state.release("L")
        state.acquire("L")
        second = state.lockset()
        assert not (first & second)

    def test_multiple_locks(self):
        state = TaskLockState(1)
        state.acquire("L")
        state.acquire("M")
        assert state.lockset() == {"L", "M"}
        assert state.lockset_tuple() == ("L", "M")

    def test_double_acquire_rejected(self):
        state = TaskLockState(1)
        state.acquire("L")
        with pytest.raises(RuntimeUsageError):
            state.acquire("L")

    def test_release_unheld_rejected(self):
        state = TaskLockState(1)
        with pytest.raises(RuntimeUsageError):
            state.release("L")

    def test_holds(self):
        state = TaskLockState(1)
        assert not state.holds_any
        state.acquire("L")
        assert state.holds("L")
        assert state.holds_any
        assert not state.holds("M")

    def test_lockset_snapshot_is_immutable_view(self):
        state = TaskLockState(1)
        state.acquire("L")
        snapshot = state.lockset()
        state.release("L")
        assert snapshot == {"L"}
        assert state.lockset() == frozenset()

    def test_independent_epochs_per_lock(self):
        state = TaskLockState(1)
        state.acquire("L")
        state.release("L")
        assert state.acquire("M") == "M"
        assert state.acquire("L") == "L#1"


class TestLockTable:
    def test_acquire_release_roundtrip(self):
        table = LockTable()
        table.acquire("L")
        table.release("L")
        table.acquire("L")
        table.release("L")

    def test_known_locks(self):
        table = LockTable()
        table.acquire("B")
        table.release("B")
        table.acquire("A")
        table.release("A")
        assert table.known_locks() == ("A", "B")
