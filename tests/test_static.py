"""Static access-set analysis and trace-coverage validation."""

import pytest

from repro.report import READ, WRITE
from repro.runtime import TaskProgram, run_program
from repro.static import (
    AccessPattern,
    analyze_function,
    analyze_spec,
    check_trace_coverage,
)
from repro.static.accesses import EXACT, PREFIX, UNKNOWN
from repro.trace.generator import GeneratorConfig, TraceGenerator


# -- module-level task bodies for the AST front end --------------------------


def _child_reader(ctx):
    ctx.read("X")


def _child_rmw(ctx):
    ctx.add("Y", 1)


def _parent(ctx):
    ctx.write("X", 0)
    ctx.spawn(_child_reader)
    ctx.spawn(_child_rmw)
    ctx.sync()


def _tuple_locations(ctx):
    ctx.read(("grid", 0, 1))
    for i in range(3):
        ctx.write(("grid", i, 0), i)   # dynamic index -> prefix pattern


def _dynamic_everything(ctx, loc):
    ctx.read(loc)                      # -> unknown pattern


class TestSpecFrontEnd:
    def test_exact_from_spec(self):
        config = GeneratorConfig(tasks=3, accesses_per_task=3, locations=2, seed=4)
        spec = TraceGenerator(config).generate_spec()
        result = analyze_spec(spec)
        assert result.is_precise
        assert all(p.kind == EXACT for p in result.patterns)

    def test_spec_matches_trace_exactly(self):
        """Spec analysis + generated trace: full coverage, no surprises."""
        config = GeneratorConfig(tasks=3, accesses_per_task=3, locations=2, seed=4)
        generator = TraceGenerator(config)
        spec = generator.generate_spec(seed=9)
        static = analyze_spec(spec)
        program = generator.program_from_spec(spec)
        trace = run_program(program, record_trace=True).trace
        report = check_trace_coverage(static, trace)
        assert report.complete, report.describe()

    def test_nested_spec_items(self):
        spec = (
            "task",
            (
                ("access", "A", READ),
                ("locked", "L", (("access", "B", WRITE),)),
                ("finish", (("spawn", (("access", "C", READ),)),)),
                ("sync",),
            ),
        )
        result = analyze_spec(spec)
        locations = result.exact_locations()
        assert locations == {"A", "B", "C"}

    def test_bad_spec_item(self):
        with pytest.raises(ValueError):
            analyze_spec((("teleport", "X"),))


class TestAstFrontEnd:
    def test_constant_locations(self):
        result = analyze_function(_parent)
        assert result.may_access("X", WRITE)
        assert result.may_access("X", READ)       # child reader
        assert result.may_access("Y", READ)       # ctx.add reads...
        assert result.may_access("Y", WRITE)      # ...and writes
        assert not result.unresolved_tasks

    def test_rmw_counts_both_ways(self):
        result = analyze_function(_child_rmw)
        kinds = {(p.access_type) for p in result.patterns}
        assert kinds == {READ, WRITE}

    def test_tuple_prefix_degradation(self):
        result = analyze_function(_tuple_locations)
        exact = result.exact_locations(READ)
        assert ("grid", 0, 1) in exact
        prefixes = [p for p in result.patterns if p.kind == PREFIX]
        assert any(p.location == "grid" and p.access_type == WRITE for p in prefixes)
        assert result.may_access(("grid", 99, 0), WRITE)
        assert not result.may_access(("other", 0), WRITE)

    def test_dynamic_location_is_unknown(self):
        result = analyze_function(_dynamic_everything)
        assert any(p.kind == UNKNOWN for p in result.patterns)
        assert result.may_access("absolutely anything", READ)

    def test_nested_def_bodies(self):
        def main(ctx):
            def worker(c):
                c.write("nested", 1)

            ctx.spawn(worker)
            ctx.sync()

        result = analyze_function(main)
        assert result.may_access("nested", WRITE)

    def test_unresolvable_body_flagged(self):
        def main(ctx, body):
            ctx.spawn(body)
            ctx.sync()

        result = analyze_function(main)
        assert result.unresolved_tasks
        assert not result.is_precise


class TestCoverage:
    def run_trace(self, body):
        return run_program(TaskProgram(body), record_trace=True).trace

    def test_full_coverage(self):
        trace = self.run_trace(_parent)
        report = check_trace_coverage(analyze_function(_parent), trace)
        assert not report.missing
        assert not report.unpredicted
        assert report.complete

    def test_untaken_branch_detected(self):
        def branchy(ctx):
            ctx.write("flag", 0)
            if ctx.read("flag"):
                ctx.write("rare", 1)   # never executed with this input

        trace = self.run_trace(branchy)
        report = check_trace_coverage(analyze_function(branchy), trace)
        assert any(p.location == "rare" for p in report.missing)
        assert not report.complete
        assert "rare" in report.suspect_locations

    def test_unpredicted_access_detected(self):
        """A static set missing patterns flags the extra trace accesses."""
        static = analyze_function(_child_reader)  # knows only R(X)
        trace = self.run_trace(_parent)           # also writes X, touches Y
        report = check_trace_coverage(static, trace)
        assert report.unpredicted
        assert not report.complete

    def test_imprecise_patterns_reported(self):
        trace = self.run_trace(_tuple_locations)
        report = check_trace_coverage(analyze_function(_tuple_locations), trace)
        assert report.imprecise            # the prefix writes
        assert not report.complete         # cannot *prove* coverage
        assert not report.missing

    def test_describe_mentions_verdict(self):
        trace = self.run_trace(_parent)
        report = check_trace_coverage(analyze_function(_parent), trace)
        assert "STANDS" in report.describe()

        def branchy(ctx):
            ctx.write("flag", 0)
            if ctx.read("flag"):
                ctx.write("rare", 1)

        bad = check_trace_coverage(
            analyze_function(branchy), self.run_trace(branchy)
        )
        assert "VOID" in bad.describe()
        assert "MISSING" in bad.describe()


class TestPatternMatching:
    def test_exact(self):
        pattern = AccessPattern(EXACT, ("a", 1), READ)
        assert pattern.matches(("a", 1))
        assert not pattern.matches(("a", 2))

    def test_prefix(self):
        pattern = AccessPattern(PREFIX, "a", WRITE)
        assert pattern.matches(("a", 1))
        assert pattern.matches(("a", 1, 2))
        assert not pattern.matches("a")
        assert not pattern.matches(("b", 1))

    def test_unknown(self):
        pattern = AccessPattern(UNKNOWN, None, READ)
        assert pattern.matches("anything")
        assert pattern.matches(("any", "thing"))

    def test_describe(self):
        assert AccessPattern(EXACT, "X", WRITE).describe() == "W('X')"
        assert AccessPattern(PREFIX, "g", READ).describe() == "R(('g', *))"
        assert AccessPattern(UNKNOWN, None, READ).describe() == "R(?)"


# -- keyword arguments and analyze_function edge cases -----------------------


def _kwarg_accessor(ctx):
    ctx.write(location="kw_w", value=1)
    ctx.read(location="kw_r")
    ctx.add(location="kw_a", delta=1)
    ctx.update(location="kw_u", fn=lambda v: v)


def _kwarg_spawner(ctx):
    ctx.spawn(body=_kwarg_accessor)
    ctx.sync()


def _kwarg_template(ctx):
    from repro.runtime import parallel_for, parallel_pipeline, parallel_reduce

    parallel_for(ctx, 0, 4, body=_kwarg_accessor)
    parallel_reduce(ctx, 0, 4, map_body=_reduce_body, combine=max, identity=0)
    parallel_pipeline(ctx, [1, 2], stages=[_stage])


def _reduce_body(ctx, i):
    return ctx.read("reduce_src")


def _stage(ctx, item):
    ctx.write("stage_out", item)


def _lambda_spawner(ctx):
    ctx.spawn(lambda c: c.write("from_lambda", 1))
    ctx.sync()


def _grandchild_defs(ctx):
    def child(c):
        def grandchild(cc):
            cc.write("deep", 1)

        c.spawn(grandchild)
        c.sync()

    ctx.spawn(child)
    ctx.sync()


def _mutual_a(ctx):
    ctx.write("ping", 1)
    ctx.spawn(_mutual_b)
    ctx.sync()


def _mutual_b(ctx):
    ctx.write("pong", 1)
    ctx.spawn(_mutual_a)
    ctx.sync()


class TestKeywordArguments:
    """Regression: the analyzer used to see positional arguments only."""

    def test_access_location_kwargs(self):
        result = analyze_function(_kwarg_accessor)
        assert result.may_access("kw_w", WRITE)
        assert result.may_access("kw_r", READ)
        # RMW helpers count both ways, kwargs included.
        assert result.may_access("kw_a", READ)
        assert result.may_access("kw_a", WRITE)
        assert result.may_access("kw_u", WRITE)

    def test_spawn_body_kwarg(self):
        result = analyze_function(_kwarg_spawner)
        assert result.may_access("kw_w", WRITE)
        assert not result.unresolved_tasks

    def test_template_body_kwargs(self):
        result = analyze_function(_kwarg_template)
        assert result.may_access("kw_w", WRITE)
        assert result.may_access("reduce_src", READ)
        assert result.may_access("stage_out", WRITE)


class TestAnalyzeFunctionEdgeCases:
    def test_lambda_spawn_body(self):
        result = analyze_function(_lambda_spawner)
        assert result.may_access("from_lambda", WRITE)
        assert not result.unresolved_tasks

    def test_nested_def_grandchildren(self):
        result = analyze_function(_grandchild_defs)
        assert result.may_access("deep", WRITE)

    def test_rmw_literal_produces_read_and_write(self):
        def rmw(ctx):
            ctx.add("acc", 2)

        kinds = {(p.location, p.access_type) for p in analyze_function(rmw).patterns}
        assert ("acc", READ) in kinds
        assert ("acc", WRITE) in kinds

    def test_mutual_recursion_terminates(self):
        result = analyze_function(_mutual_a)
        assert result.may_access("ping", WRITE)
        assert result.may_access("pong", WRITE)
