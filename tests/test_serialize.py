"""Trace serialization round-trips and format guards."""

import json

import pytest

from repro.checker import OptAtomicityChecker
from repro.errors import TraceError
from repro.runtime import TaskProgram, run_program
from repro.trace.replay import replay_trace
from repro.trace.serialize import (
    decode_location,
    dpst_from_dict,
    dpst_to_dict,
    dump_trace,
    encode_location,
    event_from_dict,
    event_to_dict,
    load_trace,
    trace_from_dict,
    trace_to_dict,
)


def recorded_run():
    def child(ctx, i):
        with ctx.lock("L"):
            ctx.add(("cell", i % 2), 1)

    def main(ctx):
        for i in range(3):
            ctx.spawn(child, i)
        ctx.sync()

    return run_program(
        TaskProgram(main, initial_memory={("cell", 0): 0, ("cell", 1): 0}),
        record_trace=True,
    )


class TestLocationEncoding:
    @pytest.mark.parametrize(
        "location",
        ["X", 7, 3.5, None, True, ("a", 1), ("grid", 2, 3), (("deep", 1), "x")],
    )
    def test_roundtrip(self, location):
        assert decode_location(encode_location(location)) == location

    def test_tuple_stays_tuple(self):
        decoded = decode_location(encode_location(("a", 1)))
        assert isinstance(decoded, tuple)

    def test_unserializable_rejected(self):
        with pytest.raises(TraceError):
            encode_location(object())

    def test_malformed_rejected(self):
        with pytest.raises(TraceError):
            decode_location({"bogus": 1})


class TestDpstRoundtrip:
    def test_structure_preserved(self):
        result = recorded_run()
        rebuilt = dpst_from_dict(dpst_to_dict(result.dpst))
        assert len(rebuilt) == len(result.dpst)
        for node in result.dpst.nodes():
            assert rebuilt.kind(node) == result.dpst.kind(node)
            assert rebuilt.parent(node) == result.dpst.parent(node)
            assert rebuilt.sibling_rank(node) == result.dpst.sibling_rank(node)

    def test_bad_root_rejected(self):
        with pytest.raises(TraceError):
            dpst_from_dict({"layout": "array", "kinds": [0], "parents": [-1]})


class TestEventRoundtrip:
    def test_all_events_roundtrip(self):
        result = recorded_run()
        for event in result.recorder.events:
            clone = event_from_dict(event_to_dict(event))
            assert clone == event

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceError):
            event_from_dict({"type": "MysteryEvent"})


class TestTraceRoundtrip:
    def test_dict_roundtrip_is_json_safe(self):
        result = recorded_run()
        data = trace_to_dict(result.trace)
        rehydrated = trace_from_dict(json.loads(json.dumps(data)))
        assert len(rehydrated) == len(result.trace)
        rehydrated.validate()

    def test_file_roundtrip(self, tmp_path):
        result = recorded_run()
        path = str(tmp_path / "trace.json")
        dump_trace(result.trace, path)
        loaded = load_trace(path)
        assert [e.seq for e in loaded.memory_events()] == [
            e.seq for e in result.trace.memory_events()
        ]

    def test_replay_after_roundtrip_same_verdict(self, tmp_path):
        result = recorded_run()
        path = str(tmp_path / "trace.json")
        dump_trace(result.trace, path)
        loaded = load_trace(path)
        original = replay_trace(result.trace, OptAtomicityChecker())
        replayed = replay_trace(loaded, OptAtomicityChecker())
        assert set(replayed.locations()) == set(original.locations())

    def test_version_guard(self):
        with pytest.raises(TraceError):
            trace_from_dict({"version": 99, "events": []})
