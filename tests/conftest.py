"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.dpst import ArrayDPST, LinkedDPST, NodeKind


@pytest.fixture(params=["array", "linked"])
def dpst_layout(request):
    """Parametrize a test over both DPST layouts (Figure 14's two variants)."""
    return request.param


@pytest.fixture
def tree(dpst_layout):
    """An empty DPST of the parametrized layout."""
    return ArrayDPST() if dpst_layout == "array" else LinkedDPST()


def build_figure2(tree):
    """Build the paper's Figure 2 DPST by hand.

    Returns the node ids ``(s11, f12, a2, s2, s12, a3, s3)`` under root 0::

        F0
         |- S11
         |- F12
             |- A2 -- S2
             |- S12
             |- A3 -- S3
    """
    s11 = tree.add_node(0, NodeKind.STEP)
    f12 = tree.add_node(0, NodeKind.FINISH)
    a2 = tree.add_node(f12, NodeKind.ASYNC)
    s2 = tree.add_node(a2, NodeKind.STEP)
    s12 = tree.add_node(f12, NodeKind.STEP)
    a3 = tree.add_node(f12, NodeKind.ASYNC)
    s3 = tree.add_node(a3, NodeKind.STEP)
    return s11, f12, a2, s2, s12, a3, s3
