"""The 48-case combinatorial suite: first-principles ground truth.

Every case's expectation is *derived* (unserializable AND separable), not
hand-written, so these tests check the checker against the theory across
the full triple x locking x placement product -- and cross-validate a
sample against the schedule-enumeration oracle.
"""

import pytest

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.runtime import RandomOrderExecutor, run_program
from repro.suite.extended import LOCK_MODES, PLACEMENTS, all_extended_cases
from repro.trace.explore import explore_violation_locations

CASES = all_extended_cases()


class TestEnumeration:
    def test_48_cases(self):
        assert len(CASES) == 48

    def test_product_is_complete(self):
        combos = {(c.code, c.lock_mode, c.placement) for c in CASES}
        assert len(combos) == 8 * len(LOCK_MODES) * len(PLACEMENTS)

    def test_expected_counts(self):
        """5 unserializable triples x 2 separable modes x 2 placements."""
        violating = [c for c in CASES if c.expected]
        assert len(violating) == 5 * 2 * 2


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
class TestVerdicts:
    def test_optimized_paper_mode(self, case):
        checker = OptAtomicityChecker()
        result = run_program(case.build(), observers=[checker])
        assert set(result.report().locations()) == set(case.expected), case.name

    def test_basic_checker(self, case):
        checker = BasicAtomicityChecker()
        result = run_program(case.build(), observers=[checker])
        assert set(result.report().locations()) == set(case.expected), case.name


@pytest.mark.parametrize(
    "case",
    [c for c in CASES if c.expected],
    ids=lambda c: c.name,
)
def test_violating_cases_under_random_schedule(case):
    checker = OptAtomicityChecker(mode="thorough")
    result = run_program(
        case.build(), executor=RandomOrderExecutor(seed=7), observers=[checker]
    )
    assert set(result.report().locations()) == set(case.expected)


@pytest.mark.parametrize(
    "case",
    [c for c in CASES if c.placement == "flat"],
    ids=lambda c: c.name,
)
def test_oracle_confirms_flat_cases(case):
    """Exhaustive schedule enumeration agrees with the derived truth."""
    result = run_program(case.build(), record_trace=True)
    explored = explore_violation_locations(result.trace, max_schedules=2_000)
    assert explored == set(case.expected), case.name
