"""The streaming JSONL (v2) trace format: writer, reader, sniffing."""

import json

import pytest

from repro.errors import TraceError
from repro.runtime import TaskProgram, run_program
from repro.runtime.events import MemoryEvent
from repro.trace.serialize import (
    TraceReader,
    TraceWriter,
    decode_location,
    dump_trace,
    dump_trace_jsonl,
    encode_location,
    is_jsonl_trace,
    load_trace,
    location_shard_key,
    open_trace,
)


def recorded_run():
    def child(ctx, i):
        with ctx.lock("L"):
            ctx.add(("cell", i % 2), 1)

    def main(ctx):
        for i in range(3):
            ctx.spawn(child, i)
        ctx.sync()

    return run_program(
        TaskProgram(main, initial_memory={("cell", 0): 0, ("cell", 1): 0}),
        record_trace=True,
    )


@pytest.fixture
def trace():
    return recorded_run().trace


class TestRoundTrip:
    def test_events_and_dpst_survive(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        loaded = load_trace(path)
        assert [type(e).__name__ for e in loaded.events] == [
            type(e).__name__ for e in trace.events
        ]
        assert [e.seq for e in loaded.events] == [e.seq for e in trace.events]
        assert len(loaded.dpst) == len(trace.dpst)
        loaded.validate()

    def test_one_event_per_line(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        lines = [l for l in open(path).read().splitlines() if l]
        assert len(lines) == 1 + len(trace.events)  # header + events
        header = json.loads(lines[0])
        assert header["format"] == "repro-trace" and header["version"] == 2

    def test_small_chunk_size_flushes_correctly(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path, chunk_size=2)
        assert len(load_trace(path)) == len(trace)


class TestTraceWriter:
    def test_incremental_writes_and_count(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path, dpst=trace.dpst, chunk_size=3) as writer:
            for event in trace.events:
                writer.write(event)
            assert writer.count == len(trace.events)
        assert len(load_trace(path)) == len(trace)

    def test_closed_writer_rejects_events(self, trace, tmp_path):
        writer = TraceWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(TraceError):
            writer.write(trace.events[0])

    def test_bad_chunk_size(self, tmp_path):
        with pytest.raises(TraceError):
            TraceWriter(str(tmp_path / "t.jsonl"), chunk_size=0)

    def test_dpst_free_trace(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as writer:
            writer.write_all(trace.events)
        reader = open_trace(path)
        assert reader.dpst is None
        assert len(list(reader.events())) == len(trace.events)


class TestTraceReader:
    def test_streaming_memory_events(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        dump_trace_jsonl(trace, path)
        reader = open_trace(path)
        streamed = list(reader.memory_events())
        assert all(isinstance(e, MemoryEvent) for e in streamed)
        assert [e.seq for e in streamed] == [
            e.seq for e in trace.memory_events()
        ]

    def test_multiple_passes(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        dump_trace_jsonl(trace, path)
        reader = open_trace(path)
        first = [e.seq for e in reader.events()]
        second = [e.seq for e in reader.events()]
        assert first == second

    def test_reads_v1_files_too(self, trace, tmp_path):
        path = str(tmp_path / "t.json")
        dump_trace(trace, path, format="json")
        reader = open_trace(path)
        assert reader.version == 1
        assert len(reader.read()) == len(trace)
        assert len(list(reader.memory_events())) == len(trace.memory_events())

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-trace", "version": 99}\n')
        with pytest.raises(TraceError):
            open_trace(str(path))


class TestShardFiltering:
    def shards(self, reader, jobs):
        return [
            [e.seq for e in reader.memory_events(shard=s, jobs=jobs)]
            for s in range(jobs)
        ]

    def test_memory_lines_carry_shard_stamp(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        dump_trace_jsonl(trace, path)
        for line in open(path).read().splitlines()[1:]:
            row = json.loads(line)
            assert ("sk" in row) == (row["type"] == "MemoryEvent")

    def test_shards_partition_the_memory_events(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        dump_trace_jsonl(trace, path)
        reader = open_trace(path)
        shards = self.shards(reader, 3)
        merged = sorted(seq for shard in shards for seq in shard)
        assert merged == [e.seq for e in trace.memory_events()]

    def test_stampless_v2_falls_back_to_decoding(self, trace, tmp_path):
        # A v2 file produced without "sk" stamps (e.g. by an external
        # tool) must shard identically, just slower.
        stamped = tmp_path / "stamped.jsonl"
        dump_trace_jsonl(trace, str(stamped))
        stripped = tmp_path / "plain.jsonl"
        lines = stamped.read_text().splitlines()
        rows = [json.loads(l) for l in lines[1:]]
        for row in rows:
            row.pop("sk", None)
        stripped.write_text(
            "\n".join([lines[0]] + [json.dumps(r) for r in rows]) + "\n"
        )
        assert self.shards(open_trace(str(stripped)), 4) == self.shards(
            open_trace(str(stamped)), 4
        )

    def test_v1_files_shard_too(self, trace, tmp_path):
        v1 = str(tmp_path / "t.json")
        v2 = str(tmp_path / "t.jsonl")
        dump_trace(trace, v1, format="json")
        dump_trace(trace, v2, format="jsonl")
        assert self.shards(open_trace(v1), 4) == self.shards(open_trace(v2), 4)

    def test_decoded_events_do_not_leak_the_stamp(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        dump_trace_jsonl(trace, path)
        for event in open_trace(path).memory_events():
            assert not hasattr(event, "sk")


class TestFormatSelection:
    def test_sniffing(self, trace, tmp_path):
        v1 = str(tmp_path / "t.json")
        v2 = str(tmp_path / "t.jsonl")
        dump_trace(trace, v1)
        dump_trace(trace, v2)
        assert not is_jsonl_trace(v1)
        assert is_jsonl_trace(v2)

    def test_extension_does_not_fool_the_sniffer(self, trace, tmp_path):
        # A v2 trace under a .json name still loads as v2 and vice versa.
        path = str(tmp_path / "mislabeled.json")
        dump_trace(trace, path, format="jsonl")
        assert is_jsonl_trace(path)
        assert TraceReader(path).version == 2
        assert len(load_trace(path)) == len(trace)

    def test_explicit_format_override(self, trace, tmp_path):
        path = str(tmp_path / "t.dat")
        dump_trace(trace, path, format="jsonl")
        assert is_jsonl_trace(path)

    def test_unknown_format_rejected(self, trace, tmp_path):
        with pytest.raises(TraceError):
            dump_trace(trace, str(tmp_path / "t.x"), format="yaml")

    def test_load_trace_handles_both(self, trace, tmp_path):
        for name, format in (("a.json", "json"), ("b.jsonl", "jsonl")):
            path = str(tmp_path / name)
            dump_trace(trace, path, format=format)
            assert len(load_trace(path)) == len(trace)


class TestLenientReader:
    """``strict=False``: undecodable lines are counted and skipped."""

    def dump(self, trace, tmp_path, *extra_lines):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        if extra_lines:
            with open(path, "a", encoding="utf-8") as handle:
                for line in extra_lines:
                    handle.write(line)
        return path

    def test_strict_reader_raises_on_garbage(self, trace, tmp_path):
        path = self.dump(trace, tmp_path, "{broken json\n")
        reader = open_trace(path)
        with pytest.raises((TraceError, ValueError)):
            list(reader.events())

    def test_lenient_reader_skips_and_counts(self, trace, tmp_path):
        path = self.dump(
            trace, tmp_path, "{broken json\n", '{"valid": "but not an event"}\n'
        )
        reader = open_trace(path, strict=False)
        events = list(reader.events())
        assert len(events) == len(trace.events)
        assert reader.lines_skipped == 2

    def test_lenient_skips_truncated_tail(self, trace, tmp_path):
        path = self.dump(trace, tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        # Simulate a crash mid-write: chop the final line in half.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content[: len(content) - len(content.splitlines()[-1]) // 2 - 1])
        reader = open_trace(path, strict=False)
        events = list(reader.events())
        assert len(events) == len(trace.events) - 1
        assert reader.lines_skipped == 1

    def test_lenient_memory_event_stream(self, trace, tmp_path):
        path = self.dump(trace, tmp_path, "not json at all\n")
        reader = open_trace(path, strict=False)
        memory = list(reader.memory_events())
        assert [e.seq for e in memory] == [
            e.seq for e in trace.memory_events()
        ]
        assert reader.lines_skipped == 1

    def test_lenient_sharded_scan_counts_once_per_pass(self, trace, tmp_path):
        path = self.dump(trace, tmp_path, "garbage\n")
        reader = open_trace(path, strict=False)
        collected = []
        for shard in range(2):
            reader_pass = open_trace(path, strict=False)
            collected.extend(reader_pass.memory_events(shard=shard, jobs=2))
            assert reader_pass.lines_skipped == 1
        assert len(collected) == len(trace.memory_events())


class TestStreamingLenientCounting:
    """Streaming a damaged v2 file counts skips once, at any job count.

    The v2 analogue of the columnar regression: the jobs>1 pipeline
    attributes skipped lines to shard 0 only, the jobs=1 streaming check
    counts the reader's delta, and both must report the same
    ``trace.lines_skipped`` total and the same verdict.
    """

    def damaged(self, trace, tmp_path):
        return TestLenientReader().dump(
            trace, tmp_path, "{broken json\n", '{"valid": "but not an event"}\n'
        )

    def checked(self, path, jobs):
        from repro import CheckSession
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder()
        session = CheckSession(path, jobs=jobs, recorder=recorder, strict=False)
        report = session.check(streaming=True, window=1)
        return report, recorder.snapshot().counters

    def test_lines_skipped_equal_across_job_counts(self, trace, tmp_path):
        from repro.report import normalize_report

        path = self.damaged(trace, tmp_path)
        report_one, counters_one = self.checked(path, jobs=1)
        report_four, counters_four = self.checked(path, jobs=4)
        assert counters_one["trace.lines_skipped"] == 2
        assert counters_four["trace.lines_skipped"] == 2
        assert normalize_report(report_four) == normalize_report(report_one)


class TestSniffingRobustness:
    """Sniffing parses the header, never matches an exact byte rendering."""

    def header_variants(self, trace, tmp_path):
        reference = tmp_path / "ref.jsonl"
        dump_trace_jsonl(trace, str(reference))
        lines = reference.read_text().splitlines()
        header = json.loads(lines[0])
        return header, lines[1:]

    def write(self, tmp_path, name, header_text, body):
        path = tmp_path / name
        path.write_text("\n".join([header_text] + body) + "\n")
        return str(path)

    def test_compact_separators(self, trace, tmp_path):
        header, body = self.header_variants(trace, tmp_path)
        path = self.write(
            tmp_path, "compact.jsonl",
            json.dumps(header, separators=(",", ":")), body,
        )
        assert is_jsonl_trace(path)
        assert len(load_trace(path)) == len(trace)

    def test_reordered_keys(self, trace, tmp_path):
        header, body = self.header_variants(trace, tmp_path)
        reordered = {
            key: header[key]
            for key in sorted(header, reverse=True)  # format key last
        }
        path = self.write(
            tmp_path, "reordered.jsonl", json.dumps(reordered), body
        )
        assert is_jsonl_trace(path)
        assert len(load_trace(path)) == len(trace)

    def test_spaced_and_indented_header(self, trace, tmp_path):
        header, body = self.header_variants(trace, tmp_path)
        spaced = json.dumps(header, separators=(" , ", " : "))
        path = self.write(tmp_path, "spaced.jsonl", spaced, body)
        assert is_jsonl_trace(path)

    def test_leading_whitespace(self, trace, tmp_path):
        header, body = self.header_variants(trace, tmp_path)
        path = self.write(tmp_path, "padded.jsonl", "  " + json.dumps(header), body)
        assert is_jsonl_trace(path)

    def test_json_lookalikes_are_rejected(self, tmp_path):
        cases = {
            "empty.jsonl": "",
            "other.jsonl": '{"format": "not-a-trace", "version": 2}\n',
            "report.jsonl": '{"schema": "repro-report/1"}\n',
            "string.jsonl": '"repro-trace"\n',
            "garbage.jsonl": "{not json\n",
        }
        for name, content in cases.items():
            path = tmp_path / name
            path.write_text(content)
            assert not is_jsonl_trace(str(path)), name

    def test_missing_file(self, tmp_path):
        assert not is_jsonl_trace(str(tmp_path / "absent.jsonl"))


class TestUnparsableFiles:
    """Satellite: broken inputs raise TraceError naming the file, never a
    raw json.JSONDecodeError out of the reader's guts."""

    @pytest.mark.parametrize(
        "name,content",
        [
            ("empty.json", b""),
            ("truncated.json", b'{"events": [{"type": "Mem'),
            ("binary.json", b"\x00\x01\x02\x03 not a trace \xff"),
            ("text.json", b"just some prose, no JSON here\n"),
        ],
    )
    def test_trace_reader_wraps_parse_failures(self, tmp_path, name, content):
        path = tmp_path / name
        path.write_bytes(content)
        with pytest.raises(TraceError) as err:
            TraceReader(str(path))
        assert name in str(err.value)

    def test_load_trace_wraps_too(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_jsonl_with_broken_header_names_the_file(self, tmp_path):
        # Sniffed as v2 by prefix, but the header line is cut short.
        path = tmp_path / "torn.jsonl"
        path.write_text('{"format": "repro-trace", "version": 2, "dp')
        with pytest.raises(TraceError) as err:
            TraceReader(str(path))
        assert "torn.jsonl" in str(err.value)


class TestWriterCrashSafety:
    """Satellite: the v2 writer publishes via a temp sibling, so a crash
    mid-recording never leaves a truncated file at the target path."""

    def test_nothing_at_target_until_close(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path, dpst=trace.dpst)
        writer.write_all(trace.events)
        import os

        assert not os.path.exists(path)
        writer.close()
        assert os.path.exists(path)
        assert os.listdir(tmp_path) == ["t.jsonl"]  # temp sibling gone

    def test_context_manager_discards_on_error(self, trace, tmp_path):
        import os

        path = str(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with TraceWriter(path, dpst=trace.dpst) as writer:
                writer.write_all(trace.events)
                raise RuntimeError("recording failed")
        assert os.listdir(tmp_path) == []

    def test_bad_chunk_size_leaves_no_file(self, tmp_path):
        import os

        with pytest.raises(TraceError):
            TraceWriter(str(tmp_path / "t.jsonl"), chunk_size=-1)
        assert os.listdir(tmp_path) == []

    def test_discard_is_idempotent(self, tmp_path):
        import os

        writer = TraceWriter(str(tmp_path / "t.jsonl"))
        writer.discard()
        writer.discard()
        assert os.listdir(tmp_path) == []


class TestLocationRoundTrip:
    """Satellite: the location codec and shard key over the full
    vocabulary, including the == / hash collision cases."""

    VOCABULARY = [
        "x", "", 0, 1, -7, 1.0, 0.5, True, False, None,
        ("cell", 3), ("a", ("b", ("c",))), (), ("f", 0.25, None, False),
    ]

    @pytest.mark.parametrize("location", VOCABULARY, ids=repr)
    def test_encode_decode_identity(self, location):
        decoded = decode_location(encode_location(location))
        assert repr(decoded) == repr(location)  # type-exact, not just ==

    def test_shard_key_is_repr_stable(self):
        import zlib as _zlib

        for location in self.VOCABULARY:
            assert location_shard_key(location) == _zlib.crc32(
                repr(location).encode("utf-8")
            )

    def test_colliding_locations_get_distinct_keys(self):
        # 1 == 1.0 == True under Python equality; the shard key (and the
        # columnar interner) must still tell them apart.
        keys = {location_shard_key(loc) for loc in (1, 1.0, True)}
        assert len(keys) == 3

    def test_shard_key_agrees_across_formats(self, trace, tmp_path):
        # The stamped "sk" value in v2 files is exactly location_shard_key.
        path = str(tmp_path / "t.jsonl")
        dump_trace_jsonl(trace, path)
        for line in open(path).read().splitlines()[1:]:
            row = json.loads(line)
            if row["type"] != "MemoryEvent":
                continue
            location = decode_location(row["location"])
            assert row["sk"] == location_shard_key(location)

    def test_unserializable_location_rejected(self):
        with pytest.raises(TraceError):
            encode_location({"dict": "not allowed"})
        with pytest.raises(TraceError):
            decode_location({"neither": "tag"})


class TestReaderLifecycle:
    """close() / context-manager support (driver error paths)."""

    def test_context_manager_closes(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        with open_trace(path) as reader:
            assert list(reader.memory_events())
            assert not reader.closed
        assert reader.closed

    def test_closed_reader_refuses_new_streams(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        reader = open_trace(path)
        reader.close()
        with pytest.raises(TraceError):
            list(reader.events())

    def test_close_is_idempotent(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        reader = open_trace(path)
        reader.close()
        reader.close()
        assert reader.closed

    def test_close_releases_live_handles(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        reader = open_trace(path)
        stream = reader.events()
        next(stream)  # handle now open mid-iteration
        reader.close()
        assert reader.closed
