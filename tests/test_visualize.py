"""Trace visualization: timelines, step tables, violation context."""

import pytest

from repro.checker import OptAtomicityChecker
from repro.runtime import TaskProgram, run_program
from repro.trace.trace import Trace
from repro.trace.visualize import (
    render_step_table,
    render_timeline,
    render_violation_context,
)


@pytest.fixture
def run():
    def rmw(ctx):
        value = ctx.read("X")
        ctx.write("X", value + 1)

    def writer(ctx):
        with ctx.lock("L"):
            ctx.write("X", 9)

    def main(ctx):
        ctx.write("X", 0)
        ctx.spawn(rmw)
        ctx.spawn(writer)
        ctx.sync()

    checker = OptAtomicityChecker()
    return run_program(
        TaskProgram(main), observers=[checker], record_trace=True
    ), checker


class TestTimeline:
    def test_one_lane_per_task(self, run):
        result, _ = run
        text = render_timeline(result.trace)
        assert "task 0 |" in text
        assert "task 1 |" in text
        assert "task 2 |" in text

    def test_cells_show_accesses_and_locks(self, run):
        result, _ = run
        text = render_timeline(result.trace)
        assert "W('X')" in text
        assert "R('X')" in text
        assert "+L" in text and "-L" in text

    def test_columns_align(self, run):
        result, _ = run
        lines = render_timeline(result.trace).splitlines()
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_task_events_optional(self, run):
        result, _ = run
        without = render_timeline(result.trace)
        with_task = render_timeline(result.trace, include_task_events=True)
        assert "spawn:" not in without
        assert "spawn:" in with_task
        assert "sync" in with_task

    def test_truncation(self, run):
        result, _ = run
        text = render_timeline(result.trace, max_columns=2)
        assert "more events shown" in text

    def test_empty_trace(self):
        assert render_timeline(Trace([])) == "(empty trace)"


class TestStepTable:
    def test_lists_every_accessing_step(self, run):
        result, _ = run
        text = render_step_table(result.trace)
        steps = {e.step for e in result.trace.memory_events()}
        for step in steps:
            assert f"S{step}" in text

    def test_shows_location(self, run):
        result, _ = run
        assert "'X'" in render_step_table(result.trace)


class TestViolationContext:
    def test_marks_all_three_accesses(self, run):
        result, checker = run
        violation = checker.report.violations[0]
        text = render_violation_context(result.trace, violation)
        assert "<A1>" in text
        assert "<A2>" in text
        assert "<A3>" in text

    def test_includes_description(self, run):
        result, checker = run
        violation = checker.report.violations[0]
        text = render_violation_context(result.trace, violation)
        assert "Atomicity violation" in text

    def test_filters_to_violation_location(self, run):
        def noisy(ctx):
            def rmw(c):
                value = c.read("X")
                c.write("X", value + 1)

            def other(c):
                c.write("Y", 1)
                c.write("Z", 2)

            ctx.spawn(rmw)
            ctx.spawn(rmw)
            ctx.spawn(other)
            ctx.sync()

        checker = OptAtomicityChecker()
        result = run_program(
            TaskProgram(noisy), observers=[checker], record_trace=True
        )
        violation = checker.report.violations[0]
        text = render_violation_context(result.trace, violation)
        assert "'Y'" not in text
        assert "'Z'" not in text
