"""Systematic branch coverage of the optimized checker's dispatch.

One test per pseudocode branch of Figures 7, 8 and 9: every update path
of the single slots, every candidate-formation path, every check set.
These complement the behavioural tests with white-box assertions on the
metadata state after each event.
"""

import pytest

from repro.checker import OptAtomicityChecker
from repro.dpst import ArrayDPST, NodeKind, ROOT_ID
from repro.report import READ, WRITE
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events


def mem(seq, task, step, loc, access, lockset=()):
    return MemoryEvent(seq, task, step, loc, access, lockset)


def parallel_steps(count):
    """count mutually parallel steps under one finish."""
    tree = ArrayDPST()
    steps = []
    for _ in range(count):
        async_node = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        steps.append(tree.add_node(async_node, NodeKind.STEP))
    return tree, steps


def serial_then_parallel():
    """s0 precedes everything; s1, s2 mutually parallel."""
    tree = ArrayDPST()
    s0 = tree.add_node(ROOT_ID, NodeKind.STEP)
    a1 = tree.add_node(ROOT_ID, NodeKind.ASYNC)
    s1 = tree.add_node(a1, NodeKind.STEP)
    a2 = tree.add_node(ROOT_ID, NodeKind.ASYNC)
    s2 = tree.add_node(a2, NodeKind.STEP)
    return tree, s0, s1, s2


def run(tree, events, mode="paper"):
    checker = OptAtomicityChecker(mode=mode)
    replay_memory_events(events, checker, dpst=tree)
    return checker


class TestFigure7FirstAccess:
    def test_first_read_seeds_r1_and_local(self):
        tree, (s,) = parallel_steps(1)
        checker = run(tree, [mem(0, 1, s, "X", READ)])
        space = checker._gs["X"]
        assert space.R1.step == s and space.W1 is None
        cell = checker._ls[1]._cells["X"]
        assert cell.read.step == s and cell.write is None

    def test_first_write_seeds_w1_and_local(self):
        tree, (s,) = parallel_steps(1)
        checker = run(tree, [mem(0, 1, s, "X", WRITE)])
        space = checker._gs["X"]
        assert space.W1.step == s and space.R1 is None
        cell = checker._ls[1]._cells["X"]
        assert cell.write.step == s and cell.read is None

    def test_no_lca_queries_on_first_access(self):
        tree, (s,) = parallel_steps(1)
        checker = OptAtomicityChecker()
        from repro.dpst import LCAEngine
        from repro.trace.replay import _make_context

        context = _make_context(tree, None)
        checker.on_run_begin(context)
        checker.on_memory(mem(0, 1, s, "X", WRITE))
        assert context.engine.stats.queries == 0


class TestFigure8SingleSlots:
    def test_parallel_second_reader_fills_r2(self):
        tree, (a, b) = parallel_steps(2)
        checker = run(tree, [mem(0, 1, a, "X", READ), mem(1, 2, b, "X", READ)])
        space = checker._gs["X"]
        assert (space.R1.step, space.R2.step) == (a, b)

    def test_series_second_reader_replaces_r1(self):
        tree, s0, s1, s2 = serial_then_parallel()
        checker = run(tree, [mem(0, 1, s0, "X", READ), mem(1, 2, s1, "X", READ)])
        space = checker._gs["X"]
        assert space.R1.step == s1
        assert space.R2 is None

    def test_third_parallel_reader_dropped(self):
        tree, (a, b, c) = parallel_steps(3)
        checker = run(
            tree,
            [
                mem(0, 1, a, "X", READ),
                mem(1, 2, b, "X", READ),
                mem(2, 3, c, "X", READ),
            ],
        )
        space = checker._gs["X"]
        assert (space.R1.step, space.R2.step) == (a, b)

    def test_write_slots_mirror(self):
        tree, (a, b, c) = parallel_steps(3)
        checker = run(
            tree,
            [
                mem(0, 1, a, "X", WRITE),
                mem(1, 2, b, "X", WRITE),
                mem(2, 3, c, "X", WRITE),
            ],
        )
        space = checker._gs["X"]
        assert (space.W1.step, space.W2.step) == (a, b)


class TestFigure8InterleaverChecks:
    def test_read_checks_only_ww(self):
        """A first-access read must break WW but not RW/WR/RR."""
        tree, (a, b, c) = parallel_steps(3)
        base = [
            mem(0, 1, a, "X", READ),
            mem(1, 1, a, "X", WRITE),   # a's RW pattern stored
        ]
        checker = run(tree, base + [mem(2, 2, b, "X", READ)])
        assert not checker.report  # (R, R, W) serializable

        base_ww = [
            mem(0, 1, a, "X", WRITE),
            mem(1, 1, a, "X", WRITE),   # a's WW pattern stored
        ]
        checker = run(tree, base_ww + [mem(2, 2, b, "X", READ)])
        assert {v.pattern for v in checker.report.violations} == {"WRW"}

    def test_write_checks_all_four_kinds(self):
        tree, (a, b, c) = parallel_steps(3)
        combos = {
            (READ, READ): "RWR",
            (READ, WRITE): "RWW",
            (WRITE, READ): "WWR",
            (WRITE, WRITE): "WWW",
        }
        for (first, second), expected in combos.items():
            events = [
                mem(0, 1, a, "X", first),
                mem(1, 1, a, "X", second),
                mem(2, 2, b, "X", WRITE),
            ]
            checker = run(tree, events)
            assert expected in {v.pattern for v in checker.report.violations}, (
                first,
                second,
            )


class TestFigure9CandidateChecks:
    def test_rr_candidate_vs_write_singles(self):
        tree, (a, b) = parallel_steps(2)
        events = [
            mem(0, 2, b, "X", WRITE),   # W1 = b
            mem(1, 1, a, "X", READ),
            mem(2, 1, a, "X", READ),    # RR candidate vs W1 -> RWR
        ]
        checker = run(tree, events)
        assert {v.pattern for v in checker.report.violations} == {"RWR"}

    def test_wr_candidate_vs_write_singles(self):
        tree, (a, b) = parallel_steps(2)
        events = [
            mem(0, 2, b, "X", WRITE),
            mem(1, 1, a, "X", WRITE),
            mem(2, 1, a, "X", READ),    # WR candidate vs b's W -> WWR
        ]
        checker = run(tree, events)
        assert "WWR" in {v.pattern for v in checker.report.violations}

    def test_rw_candidate_vs_write_singles(self):
        tree, (a, b) = parallel_steps(2)
        events = [
            mem(0, 2, b, "X", WRITE),
            mem(1, 1, a, "X", READ),
            mem(2, 1, a, "X", WRITE),   # RW candidate vs b's W -> RWW
        ]
        checker = run(tree, events)
        assert "RWW" in {v.pattern for v in checker.report.violations}

    def test_ww_candidate_vs_read_and_write_singles(self):
        tree, (a, b, c) = parallel_steps(3)
        events = [
            mem(0, 2, b, "X", WRITE),   # W1
            mem(1, 3, c, "X", READ),    # R1
            mem(2, 1, a, "X", WRITE),
            mem(3, 1, a, "X", WRITE),   # WW candidate vs both singles
        ]
        checker = run(tree, events)
        patterns = {v.pattern for v in checker.report.violations}
        assert "WWW" in patterns  # vs b's write
        assert "WRW" in patterns  # vs c's read

    def test_rr_candidate_ignores_read_singles(self):
        tree, (a, b) = parallel_steps(2)
        events = [
            mem(0, 2, b, "X", READ),    # R1 only
            mem(1, 1, a, "X", READ),
            mem(2, 1, a, "X", READ),    # RR candidate: (R,R,R) serializable
        ]
        checker = run(tree, events)
        assert not checker.report

    def test_candidate_vs_series_single_ignored(self):
        tree, s0, s1, s2 = serial_then_parallel()
        events = [
            mem(0, 1, s0, "X", WRITE),  # W1 = s0, series with everyone
            mem(1, 2, s1, "X", READ),
            mem(2, 2, s1, "X", READ),   # candidate vs s0: not parallel
        ]
        checker = run(tree, events)
        assert not checker.report


class TestFigure9PatternPromotion:
    def test_candidate_promoted_into_empty_slot(self):
        tree, (a, b) = parallel_steps(2)
        checker = run(tree, [mem(0, 1, a, "X", READ), mem(1, 1, a, "X", WRITE)])
        assert checker._gs["X"].RW.step == a

    def test_parallel_occupant_blocks_in_paper_mode(self):
        tree, (a, b) = parallel_steps(2)
        events = [
            mem(0, 1, a, "X", READ),
            mem(1, 1, a, "X", WRITE),
            mem(2, 2, b, "X", READ),
            mem(3, 2, b, "X", WRITE),
        ]
        checker = run(tree, events)
        assert checker._gs["X"].RW.step == a  # b's candidate dropped

    def test_series_occupant_replaced(self):
        tree, s0, s1, s2 = serial_then_parallel()
        events = [
            mem(0, 1, s0, "X", READ),
            mem(1, 1, s0, "X", WRITE),  # s0's RW stored
            mem(2, 2, s1, "X", READ),
            mem(3, 2, s1, "X", WRITE),  # s1 in series with s0: replaces
        ]
        checker = run(tree, events)
        assert checker._gs["X"].RW.step == s1

    def test_thorough_keeps_both(self):
        tree, (a, b) = parallel_steps(2)
        events = [
            mem(0, 1, a, "X", READ),
            mem(1, 1, a, "X", WRITE),
            mem(2, 2, b, "X", READ),
            mem(3, 2, b, "X", WRITE),
        ]
        checker = run(tree, events, mode="thorough")
        stored = {p.step for p in checker._gs["X"].patterns("RW")}
        assert stored == {a, b}


class TestLocalSpaceMaintenance:
    def test_first_read_after_write_recorded(self):
        tree, (a,) = parallel_steps(1)
        checker = run(tree, [mem(0, 1, a, "X", WRITE), mem(1, 1, a, "X", READ)])
        cell = checker._ls[1]._cells["X"]
        assert cell.write.step == a
        assert cell.read.step == a

    def test_local_keeps_first_access_not_latest(self):
        tree, (a,) = parallel_steps(1)
        events = [
            mem(0, 1, a, "X", READ, ("L",)),
            mem(1, 1, a, "X", READ),        # later read must not displace
        ]
        checker = run(tree, events)
        cell = checker._ls[1]._cells["X"]
        assert cell.read.lockset == frozenset({"L"})
