"""Guard tests for the differential oracle and the shrinker.

The oracle is only worth its runtime if it actually catches broken
checkers, so the central test here injects one -- a checker that reports
nothing -- and requires the oracle to flag it.  The shrinker must then
reduce that seeded disagreement to a tiny (<= 8 events) 1-minimal spec
whose emitted pytest reproducer is genuinely runnable.
"""

import pytest

from repro.checker import OptAtomicityChecker
from repro.fuzz import (
    FuzzConfig,
    ProgramGenerator,
    check_seed,
    check_spec,
    reproducer_source,
    shrink_spec,
)
from repro.fuzz.harness import campaign_seeds, run_campaign
from repro.fuzz.shrink import ShrinkResult
from repro.obs import MetricsRecorder
from repro.report import ViolationReport
from repro.runtime.observer import RuntimeObserver

#: A seed whose generated program provably has atomicity violations
#: (asserted below), so a violation-blind checker must disagree.
VIOLATING_SEED = 1


class BlindChecker(RuntimeObserver):
    """Deliberately broken: sees every event, reports nothing."""

    def __init__(self):
        self.report = ViolationReport()

    def on_memory(self, event):
        pass


def _broken_outcome(spec):
    return check_spec(
        spec,
        seed=VIOLATING_SEED,
        jobs=1,
        extra_checkers={"blind": BlindChecker},
        schedules=False,
    )


def test_clean_seeds_agree_across_the_matrix():
    for seed in (0, 1, 2, 3):
        outcome = check_seed(seed, jobs=2)
        assert outcome.ok, outcome.describe()
        assert "reference" in outcome.verdicts
        assert "labels-engine" in outcome.verdicts
        assert "sharded-jobs2" in outcome.verdicts
        assert "prefilter" in outcome.verdicts
        assert "prefilter-poisoned" in outcome.verdicts
        assert "replay" in outcome.verdicts
        assert "columnar" in outcome.verdicts
        assert "cached" in outcome.verdicts
        assert "basic" in outcome.verdicts
        assert "paper-mode" in outcome.verdicts
        assert "schedule:random" in outcome.verdicts
        # Prefilter decisions are never silent.
        assert "prefilter" in outcome.notes
        assert "proven=" in outcome.notes["prefilter"]
        assert "poisoned=" in outcome.notes["prefilter"]
        # Neither are cache decisions: the cached leg must actually hit.
        assert "hit=True" in outcome.notes["cached"]


def test_poisoned_prefilter_leg_filters_partially():
    """The deliberately-poisoned leg must exercise *partial* filtering
    somewhere: a location poisoned, the rest still proven and dropped --
    while agreeing with the unfiltered legs on every seed."""
    from repro.fuzz.oracle import exact_legs

    assert "prefilter-poisoned" in exact_legs()
    partial = 0
    for seed in campaign_seeds(base_seed=1, runs=12):
        spec = ProgramGenerator(FuzzConfig()).generate_spec(seed)
        outcome = check_spec(spec, seed=seed, jobs=1, schedules=False)
        assert outcome.ok, outcome.describe()
        note = outcome.notes.get("prefilter-poisoned", "")
        if "applied=True" in note and "poisoned=1" in note:
            partial += 1
    assert partial >= 1, "no seed exercised partial (poisoned) filtering"


def test_oracle_catches_a_blind_checker():
    spec = ProgramGenerator(FuzzConfig()).generate_spec(VIOLATING_SEED)
    outcome = _broken_outcome(spec)
    assert not outcome.ok
    broken = [d for d in outcome.disagreements if d.right == "blind"]
    assert broken, outcome.describe()
    assert broken[0].level == "locations"
    # Provenance: the disagreement carries the seed and the whole spec.
    assert broken[0].seed == VIOLATING_SEED
    assert broken[0].spec == spec


def test_oracle_catches_a_lock_blind_checker():
    """A subtler bug -- ignoring locksets -- must also be caught.

    Dropping lock protection can only add violations, so the blind spot
    shows up as extra implicated locations on some generated program.
    """

    import dataclasses

    class LockBlind(OptAtomicityChecker):
        def on_memory(self, event):
            super().on_memory(dataclasses.replace(event, lockset=()))

    caught = False
    for seed in campaign_seeds(base_seed=1, runs=40):
        spec = ProgramGenerator(FuzzConfig(lock_density=0.9)).generate_spec(seed)
        outcome = check_spec(
            spec,
            seed=seed,
            jobs=1,
            extra_checkers={"lock-blind": lambda: LockBlind(mode="thorough")},
            schedules=False,
        )
        if any(d.right == "lock-blind" for d in outcome.disagreements):
            caught = True
            break
    assert caught, "40 lock-heavy programs never exposed a lockset-blind checker"


def test_shrinker_reduces_seeded_disagreement_to_at_most_8_events():
    spec = ProgramGenerator(FuzzConfig()).generate_spec(VIOLATING_SEED)
    assert not _broken_outcome(spec).ok

    recorder = MetricsRecorder()
    result = shrink_spec(
        spec, lambda s: not _broken_outcome(s).ok, recorder=recorder
    )
    assert isinstance(result, ShrinkResult)
    assert result.events <= 8, result.describe()
    assert result.tasks <= 2, result.describe()
    assert result.steps > 0
    # The shrunk spec still fails, and it is 1-minimal by construction.
    assert not _broken_outcome(result.spec).ok
    assert recorder.snapshot().counters["fuzz.shrink_steps"] == result.steps

    # The emitted reproducer is a runnable, self-contained pytest module.
    source = reproducer_source(result.spec, seed=VIOLATING_SEED, jobs=1)
    namespace = {}
    exec(compile(source, "<reproducer>", "exec"), namespace)
    test_fn = namespace[f"test_fuzz_reproducer_seed_{VIOLATING_SEED}"]
    assert namespace["SPEC"] == result.spec
    # The stock matrix agrees on the shrunk spec (only the injected
    # blind checker disagreed), so the pasted test passes as-is.
    test_fn()


def test_shrink_rejects_passing_spec():
    spec = ("task", (("access", ("g", 0), "read"),))
    with pytest.raises(ValueError):
        shrink_spec(spec, lambda s: False)


def test_campaign_surfaces_and_shrinks_injected_failures(monkeypatch):
    """End-to-end: a broken matrix turns into shrunk reproducers."""
    import repro.fuzz.harness as harness

    real_check_spec = harness.check_spec

    def sabotaged(spec, seed=None, jobs=4, recorder=None, **kwargs):
        return real_check_spec(
            spec,
            seed=seed,
            jobs=1,
            recorder=recorder,
            extra_checkers={"blind": BlindChecker},
            schedules=False,
        )

    monkeypatch.setattr(harness, "check_spec", sabotaged)
    summary = run_campaign(runs=6, base_seed=1, jobs=1, shrink=True)
    assert not summary.ok
    assert summary.disagreements > 0
    assert summary.reproducers
    for _seed, (result, source) in summary.reproducers.items():
        assert result.events <= 8
        assert "def test_fuzz_reproducer" in source


def test_campaign_metrics_and_determinism():
    recorder = MetricsRecorder()
    summary = run_campaign(runs=5, base_seed=7, jobs=1, recorder=recorder)
    assert summary.ok, summary.describe()
    counters = recorder.snapshot().counters
    assert counters["fuzz.runs"] == 5
    assert counters["fuzz.comparisons"] > 0
    assert counters["fuzz.events_checked"] == summary.events
    assert "fuzz.disagreements" not in counters
    # Campaign seed derivation is pure in the base seed.
    assert campaign_seeds(7, 5) == campaign_seeds(7, 5)
    again = run_campaign(runs=5, base_seed=7, jobs=1)
    assert again.events == summary.events
