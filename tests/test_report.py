"""Violation report objects: deduplication, queries, rendering."""

from repro.report import (
    READ,
    WRITE,
    AccessInfo,
    AtomicityViolation,
    TraceCycleViolation,
    ViolationReport,
    merge_reports,
)


def make_violation(location="X", steps=(1, 2, 1), pattern="RWW"):
    a1 = AccessInfo(step=steps[0], access_type=READ, location=location, task=1)
    a2 = AccessInfo(step=steps[1], access_type=WRITE, location=location, task=2)
    a3 = AccessInfo(step=steps[2], access_type=WRITE, location=location, task=1)
    return AtomicityViolation(
        location=location, first=a1, second=a2, third=a3, pattern=pattern,
        checker="test",
    )


class TestDeduplication:
    def test_add_returns_true_for_new(self):
        report = ViolationReport()
        assert report.add(make_violation())

    def test_duplicate_not_double_counted(self):
        report = ViolationReport()
        report.add(make_violation())
        assert not report.add(make_violation())
        assert len(report) == 1
        assert report.raw_count == 2

    def test_different_location_is_distinct(self):
        report = ViolationReport()
        report.add(make_violation("X"))
        report.add(make_violation("Y"))
        assert len(report) == 2

    def test_different_pattern_is_distinct(self):
        report = ViolationReport()
        report.add(make_violation(pattern="RWW"))
        report.add(make_violation(pattern="RWR"))
        assert len(report) == 2

    def test_cycle_dedup_ignores_rotation(self):
        report = ViolationReport()
        closing = AccessInfo(step=3, access_type=WRITE, location="X")
        report.add_cycle(TraceCycleViolation("X", (1, 2, 3), closing))
        assert not report.add_cycle(TraceCycleViolation("X", (2, 3, 1), closing))
        assert len(report.cycles) == 1


class TestQueries:
    def test_bool_and_len(self):
        report = ViolationReport()
        assert not report
        report.add(make_violation())
        assert report
        assert len(report) == 1

    def test_locations(self):
        report = ViolationReport()
        report.add(make_violation("B"))
        report.add(make_violation("A"))
        report.add(make_violation("B", steps=(5, 6, 5)))
        assert report.locations() == ["B", "A"]

    def test_for_location(self):
        report = ViolationReport()
        report.add(make_violation("X"))
        report.add(make_violation("Y"))
        assert len(report.for_location("X")) == 1

    def test_patterns(self):
        report = ViolationReport()
        report.add(make_violation(pattern="WWW"))
        report.add(make_violation(pattern="RWR"))
        assert report.patterns() == ["RWR", "WWW"]

    def test_iteration_covers_both_kinds(self):
        report = ViolationReport()
        report.add(make_violation())
        closing = AccessInfo(step=3, access_type=WRITE, location="X")
        report.add_cycle(TraceCycleViolation("X", (1, 2), closing))
        assert len(list(report)) == 2


class TestRendering:
    def test_empty_describe(self):
        assert ViolationReport().describe() == "no violations"

    def test_describe_mentions_pattern_and_location(self):
        report = ViolationReport()
        report.add(make_violation("counter", pattern="RWW"))
        text = report.describe()
        assert "counter" in text
        assert "RWW" in text
        assert "interleaving parallel access" in text

    def test_access_info_describe(self):
        info = AccessInfo(step=4, access_type=WRITE, location="X", task=2,
                          lockset=("L", "M"))
        text = info.describe()
        assert "W('X')" in text
        assert "step 4" in text
        assert "task 2" in text
        assert "L, M" in text

    def test_cycle_describe(self):
        closing = AccessInfo(step=3, access_type=WRITE, location="X")
        cycle = TraceCycleViolation("X", (1, 2, 3), closing)
        assert "1 -> 2 -> 3" in cycle.describe()


class TestMerging:
    def test_extend_deduplicates(self):
        first = ViolationReport()
        first.add(make_violation())
        second = ViolationReport()
        second.add(make_violation())
        second.add(make_violation("Y"))
        first.extend(second)
        assert len(first) == 2

    def test_merge_reports(self):
        reports = []
        for location in ("A", "B", "A"):
            r = ViolationReport()
            r.add(make_violation(location))
            reports.append(r)
        merged = merge_reports(reports)
        assert len(merged) == 2
