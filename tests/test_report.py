"""Violation report objects: deduplication, queries, rendering."""

from repro.report import (
    READ,
    WRITE,
    AccessInfo,
    AtomicityViolation,
    TraceCycleViolation,
    ViolationReport,
    merge_reports,
)


def make_violation(location="X", steps=(1, 2, 1), pattern="RWW"):
    a1 = AccessInfo(step=steps[0], access_type=READ, location=location, task=1)
    a2 = AccessInfo(step=steps[1], access_type=WRITE, location=location, task=2)
    a3 = AccessInfo(step=steps[2], access_type=WRITE, location=location, task=1)
    return AtomicityViolation(
        location=location, first=a1, second=a2, third=a3, pattern=pattern,
        checker="test",
    )


class TestDeduplication:
    def test_add_returns_true_for_new(self):
        report = ViolationReport()
        assert report.add(make_violation())

    def test_duplicate_not_double_counted(self):
        report = ViolationReport()
        report.add(make_violation())
        assert not report.add(make_violation())
        assert len(report) == 1
        assert report.raw_count == 2

    def test_different_location_is_distinct(self):
        report = ViolationReport()
        report.add(make_violation("X"))
        report.add(make_violation("Y"))
        assert len(report) == 2

    def test_different_pattern_is_distinct(self):
        report = ViolationReport()
        report.add(make_violation(pattern="RWW"))
        report.add(make_violation(pattern="RWR"))
        assert len(report) == 2

    def test_cycle_dedup_ignores_rotation(self):
        report = ViolationReport()
        closing = AccessInfo(step=3, access_type=WRITE, location="X")
        report.add_cycle(TraceCycleViolation("X", (1, 2, 3), closing))
        assert not report.add_cycle(TraceCycleViolation("X", (2, 3, 1), closing))
        assert len(report.cycles) == 1


class TestQueries:
    def test_bool_and_len(self):
        report = ViolationReport()
        assert not report
        report.add(make_violation())
        assert report
        assert len(report) == 1

    def test_locations(self):
        report = ViolationReport()
        report.add(make_violation("B"))
        report.add(make_violation("A"))
        report.add(make_violation("B", steps=(5, 6, 5)))
        assert report.locations() == ["B", "A"]

    def test_for_location(self):
        report = ViolationReport()
        report.add(make_violation("X"))
        report.add(make_violation("Y"))
        assert len(report.for_location("X")) == 1

    def test_patterns(self):
        report = ViolationReport()
        report.add(make_violation(pattern="WWW"))
        report.add(make_violation(pattern="RWR"))
        assert report.patterns() == ["RWR", "WWW"]

    def test_iteration_covers_both_kinds(self):
        report = ViolationReport()
        report.add(make_violation())
        closing = AccessInfo(step=3, access_type=WRITE, location="X")
        report.add_cycle(TraceCycleViolation("X", (1, 2), closing))
        assert len(list(report)) == 2


class TestRendering:
    def test_empty_describe(self):
        assert ViolationReport().describe() == "no violations"

    def test_describe_mentions_pattern_and_location(self):
        report = ViolationReport()
        report.add(make_violation("counter", pattern="RWW"))
        text = report.describe()
        assert "counter" in text
        assert "RWW" in text
        assert "interleaving parallel access" in text

    def test_access_info_describe(self):
        info = AccessInfo(step=4, access_type=WRITE, location="X", task=2,
                          lockset=("L", "M"))
        text = info.describe()
        assert "W('X')" in text
        assert "step 4" in text
        assert "task 2" in text
        assert "L, M" in text

    def test_cycle_describe(self):
        closing = AccessInfo(step=3, access_type=WRITE, location="X")
        cycle = TraceCycleViolation("X", (1, 2, 3), closing)
        assert "1 -> 2 -> 3" in cycle.describe()


class TestMerging:
    def test_extend_deduplicates(self):
        first = ViolationReport()
        first.add(make_violation())
        second = ViolationReport()
        second.add(make_violation())
        second.add(make_violation("Y"))
        first.extend(second)
        assert len(first) == 2

    def test_merge_reports(self):
        reports = []
        for location in ("A", "B", "A"):
            r = ViolationReport()
            r.add(make_violation(location))
            reports.append(r)
        merged = merge_reports(reports)
        assert len(merged) == 2


class TestRawCountAccounting:
    """Regression: ``extend``/``merge`` must sum the inputs' raw counts.

    ``raw_count`` is the total number of ``add`` calls, duplicates
    included.  Extending used to re-count only the *distinct* records it
    copied, so shards reporting duplicate violations under-counted (and
    a later ``merge`` overwrote the total again).
    """

    def test_extend_sums_raw_counts_with_duplicates(self):
        first = ViolationReport()
        first.add(make_violation())
        first.add(make_violation())  # duplicate: raw 2, distinct 1
        second = ViolationReport()
        second.add(make_violation())  # same key as first's
        second.add(make_violation("Y"))
        second.add(make_violation("Y"))  # duplicate: raw 3, distinct 2
        first.extend(second)
        assert len(first) == 2
        assert first.raw_count == 5

    def test_merge_sums_raw_counts(self):
        reports = []
        for location in ("A", "B", "A"):
            r = ViolationReport()
            r.add(make_violation(location))
            r.add(make_violation(location))  # duplicate in every shard
            reports.append(r)
        merged = ViolationReport.merge(reports)
        assert len(merged) == 2
        assert merged.raw_count == 6

    def test_chained_extends_keep_counting(self):
        total = ViolationReport()
        for _ in range(3):
            shard = ViolationReport()
            shard.add(make_violation())
            total.extend(shard)
        assert len(total) == 1
        assert total.raw_count == 3


class TestJsonRoundTrip:
    """``report_to_dict``/``report_from_dict`` (shard checkpoints)."""

    def restored(self, report):
        import json

        from repro.report import report_from_dict, report_to_dict

        # Through an actual JSON encode so only JSON-safe types survive.
        return report_from_dict(json.loads(json.dumps(report_to_dict(report))))

    def test_round_trip_preserves_everything(self):
        report = ViolationReport()
        report.add(make_violation())
        report.add(make_violation())  # duplicate keeps raw_count honest
        report.add(make_violation(("grid", 3), steps=(4, 5, 4), pattern="WWR"))
        cycle = TraceCycleViolation(
            location="Z",
            cycle=(3, 1, 2),
            closing_access=AccessInfo(step=9, access_type=WRITE, location="Z"),
        )
        report.add_cycle(cycle)
        back = self.restored(report)
        assert back.describe() == report.describe()
        assert back.raw_count == report.raw_count
        assert [v.key for v in back] == [v.key for v in report]

    def test_round_trip_empty(self):
        back = self.restored(ViolationReport())
        assert not back and back.raw_count == 0

    def test_restored_report_still_deduplicates(self):
        report = ViolationReport()
        report.add(make_violation())
        back = self.restored(report)
        assert not back.add(make_violation())  # same key: duplicate

    def test_rejects_foreign_dict(self):
        import pytest

        from repro.report import report_from_dict

        with pytest.raises(ValueError):
            report_from_dict({"schema": "something-else/9"})


class TestNormalization:
    """The canonical forms the equivalence tests and fuzz oracle compare."""

    def test_normal_form_is_insertion_order_independent(self):
        from repro.report import normalize_report

        forward = ViolationReport()
        backward = ViolationReport()
        violations = [
            make_violation("X", steps=(1, 2, 1)),
            make_violation("Y", steps=(4, 5, 4)),
            make_violation("X", steps=(7, 8, 7), pattern="RWR"),
        ]
        for v in violations:
            forward.add(v)
        for v in reversed(violations):
            backward.add(v)
        assert normalize_report(forward) == normalize_report(backward)

    def test_normal_form_distinguishes_different_triples(self):
        from repro.report import normalize_report

        one = ViolationReport()
        one.add(make_violation("X", steps=(1, 2, 1)))
        other = ViolationReport()
        other.add(make_violation("X", steps=(1, 3, 1)))
        assert normalize_report(one) != normalize_report(other)

    def test_normalized_locations_deduplicates_and_sorts(self):
        from repro.report import normalized_locations

        report = ViolationReport()
        report.add(make_violation("Y"))
        report.add(make_violation("X"))
        report.add(make_violation("X", pattern="RWR"))
        assert normalized_locations(report) == ("'X'", "'Y'")

    def test_heterogeneous_locations_are_orderable(self):
        from repro.report import normalize_locations

        # Tuples and strings are not mutually orderable; the string key
        # must make one canonical order anyway.
        keys = normalize_locations([("g", 1), "X", ("g", 0)])
        assert list(keys) == sorted(keys)
        assert len(keys) == 3

    def test_cycles_participate_in_the_normal_form(self):
        from repro.report import normalize_report

        closing = AccessInfo(step=3, access_type=WRITE, location="X")
        with_cycle = ViolationReport()
        with_cycle.add_cycle(TraceCycleViolation("X", (1, 2, 3), closing))
        without = ViolationReport()
        assert normalize_report(with_cycle) != normalize_report(without)
