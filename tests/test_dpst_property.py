"""Property-based tests on the DPST (hypothesis).

Random trees are generated as insertion scripts: a sequence of (parent
choice, kind) decisions replayed against both layouts.  Invariants:

* ``validate()`` holds after any legal insertion sequence;
* both layouts agree on every accessor and every relation query;
* the LCA walk agrees with a naive path-intersection implementation;
* ``parallel`` is symmetric and irreflexive; ``precedes`` is a strict
  partial order; distinct steps are exactly one of {parallel, <, >};
* the engine's cached verdicts equal the uncached ones.
"""

from hypothesis import given, settings, strategies as st

from repro.dpst import ArrayDPST, LCAEngine, LinkedDPST, NodeKind, ROOT_ID, relation


@st.composite
def insertion_scripts(draw):
    """A list of (parent_index_choice, kind) insertion decisions."""
    length = draw(st.integers(min_value=1, max_value=24))
    script = []
    for _ in range(length):
        parent_choice = draw(st.integers(min_value=0, max_value=10_000))
        kind = draw(st.sampled_from([NodeKind.STEP, NodeKind.ASYNC, NodeKind.FINISH]))
        script.append((parent_choice, kind))
    return script


def replay(script, tree):
    """Replay a script, mapping each parent choice onto a legal inner node."""
    inner = [ROOT_ID]
    for parent_choice, kind in script:
        parent = inner[parent_choice % len(inner)]
        node = tree.add_node(parent, kind)
        if kind is not NodeKind.STEP:
            inner.append(node)
    return tree


def naive_lca(tree, a, b):
    path_a = set(tree.path_to_root(a))
    node = b
    while node not in path_a:
        node = tree.parent(node)
    return node


@given(insertion_scripts())
@settings(max_examples=60, deadline=None)
def test_validate_after_any_script(script):
    tree = replay(script, ArrayDPST())
    tree.validate()


@given(insertion_scripts())
@settings(max_examples=60, deadline=None)
def test_layouts_agree(script):
    array = replay(script, ArrayDPST())
    linked = replay(script, LinkedDPST())
    assert len(array) == len(linked)
    for node in array.nodes():
        assert array.kind(node) == linked.kind(node)
        assert array.parent(node) == linked.parent(node)
        assert array.depth(node) == linked.depth(node)
        assert array.sibling_rank(node) == linked.sibling_rank(node)
    for a in array.nodes():
        for b in array.nodes():
            assert relation.parallel(array, a, b) == relation.parallel(linked, a, b)
            assert relation.precedes(array, a, b) == relation.precedes(linked, a, b)


@given(insertion_scripts())
@settings(max_examples=60, deadline=None)
def test_lca_matches_naive(script):
    tree = replay(script, ArrayDPST())
    nodes = list(tree.nodes())
    for a in nodes:
        for b in nodes:
            assert relation.lca(tree, a, b) == naive_lca(tree, a, b)


@given(insertion_scripts())
@settings(max_examples=60, deadline=None)
def test_parallel_symmetric_irreflexive(script):
    tree = replay(script, ArrayDPST())
    for a in tree.nodes():
        assert not relation.parallel(tree, a, a)
        for b in tree.nodes():
            assert relation.parallel(tree, a, b) == relation.parallel(tree, b, a)


@given(insertion_scripts())
@settings(max_examples=40, deadline=None)
def test_steps_trichotomy(script):
    tree = replay(script, ArrayDPST())
    steps = tree.step_nodes()
    for a in steps:
        for b in steps:
            if a == b:
                continue
            verdicts = (
                relation.parallel(tree, a, b),
                relation.precedes(tree, a, b),
                relation.precedes(tree, b, a),
            )
            assert sum(verdicts) == 1


@given(insertion_scripts())
@settings(max_examples=40, deadline=None)
def test_precedes_transitive_on_steps(script):
    tree = replay(script, ArrayDPST())
    steps = tree.step_nodes()[:8]  # bound the cubic loop
    for a in steps:
        for b in steps:
            if not relation.precedes(tree, a, b):
                continue
            for c in steps:
                if relation.precedes(tree, b, c):
                    assert relation.precedes(tree, a, c)


@given(insertion_scripts())
@settings(max_examples=40, deadline=None)
def test_all_registered_engines_match_relation(script):
    """Registry-driven equivalence: every engine (current and future)
    must agree with the SPD3 relation on every node pair."""
    from repro.dpst.engines import available_engines, make_engine

    tree = replay(script, ArrayDPST())
    engines = {name: make_engine(name, tree) for name in available_engines()}
    nodes = list(tree.nodes())
    for a in nodes:
        for b in nodes:
            want_parallel = relation.parallel(tree, a, b)
            want_precedes = relation.precedes(tree, a, b)
            for name, engine in engines.items():
                assert engine.parallel(a, b) == want_parallel, (name, a, b)
                assert engine.precedes(a, b) == want_precedes, (name, a, b)
                assert engine.series(a, b) == (
                    a != b and not want_parallel
                ), (name, a, b)


@given(insertion_scripts())
@settings(max_examples=40, deadline=None)
def test_engine_cache_transparent(script):
    tree = replay(script, ArrayDPST())
    cached = LCAEngine(tree, cache=True)
    uncached = LCAEngine(tree, cache=False)
    for a in tree.nodes():
        for b in tree.nodes():
            assert cached.parallel(a, b) == uncached.parallel(a, b)
            # Ask twice: the memoized answer must be stable.
            assert cached.parallel(a, b) == cached.parallel(b, a)


# ---------------------------------------------------------------------------
# Generator-driven MHP properties
#
# The fuzzing generator produces whole task-parallel programs (spawns,
# syncs, nested finishes, locks) rather than raw insertion scripts, so
# these trees exercise exactly the shapes the runtime builds.  Seeds are
# pinned: failures reproduce byte-for-byte.
# ---------------------------------------------------------------------------

import pytest

from repro.dpst import LabelEngine
from repro.fuzz import FuzzConfig, ProgramGenerator, program_from_spec
from repro.runtime.executor import SerialExecutor
from repro.runtime.program import run_program

PINNED_SEEDS = [0, 1, 2, 7, 11, 42, 1234]


def _fuzzed_dpst(seed):
    config = FuzzConfig(tasks=8, depth=3, locations=4, seed=seed)
    spec = ProgramGenerator(config).generate_spec(seed)
    result = run_program(
        program_from_spec(spec), executor=SerialExecutor(), record_trace=True
    )
    return result.dpst


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_fuzzed_mhp_symmetric_irreflexive_on_steps(seed):
    tree = _fuzzed_dpst(seed)
    tree.validate()
    steps = tree.step_nodes()
    for a in steps:
        assert not relation.parallel(tree, a, a)
        for b in steps:
            assert relation.parallel(tree, a, b) == relation.parallel(tree, b, a)


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_fuzzed_steps_trichotomy(seed):
    tree = _fuzzed_dpst(seed)
    steps = tree.step_nodes()
    for a in steps:
        for b in steps:
            if a == b:
                continue
            verdicts = (
                relation.parallel(tree, a, b),
                relation.precedes(tree, a, b),
                relation.precedes(tree, b, a),
            )
            assert sum(verdicts) == 1


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_fuzzed_lca_and_label_engines_agree(seed):
    tree = _fuzzed_dpst(seed)
    lca = LCAEngine(tree)
    labels = LabelEngine(tree)
    steps = tree.step_nodes()
    for a in steps:
        for b in steps:
            assert lca.parallel(a, b) == labels.parallel(a, b), (seed, a, b)
            assert lca.precedes(a, b) == labels.precedes(a, b), (seed, a, b)


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_fuzzed_all_registered_engines_agree(seed):
    """Every registered engine agrees pairwise on runtime-built trees.

    Driven by the registry, so an engine registered tomorrow is covered
    by this test without editing it.
    """
    from repro.dpst.engines import available_engines, make_engine

    tree = _fuzzed_dpst(seed)
    engines = {name: make_engine(name, tree) for name in available_engines()}
    steps = tree.step_nodes()
    for a in steps:
        for b in steps:
            parallels = {n: e.parallel(a, b) for n, e in engines.items()}
            assert len(set(parallels.values())) == 1, (seed, a, b, parallels)
            precedes = {n: e.precedes(a, b) for n, e in engines.items()}
            assert len(set(precedes.values())) == 1, (seed, a, b, precedes)
