"""Events, the trace recorder, and the Trace container."""

import pytest

from repro.errors import TraceError
from repro.report import READ, WRITE
from repro.runtime import TaskProgram, TraceRecorder, run_program
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.trace.trace import Trace


def sample_program():
    def child(ctx):
        with ctx.lock("L"):
            ctx.add("X", 1)

    def main(ctx):
        ctx.write("X", 0)
        ctx.spawn(child)
        ctx.spawn(child)
        ctx.sync()
        return ctx.read("X")

    return TaskProgram(main)


@pytest.fixture
def recorded():
    return run_program(sample_program(), record_trace=True)


class TestRecorder:
    def test_all_event_kinds_recorded(self, recorded):
        kinds = {type(e) for e in recorded.recorder.events}
        assert kinds >= {
            TaskSpawnEvent,
            TaskBeginEvent,
            TaskEndEvent,
            SyncEvent,
            MemoryEvent,
            AcquireEvent,
            ReleaseEvent,
        }

    def test_trace_carries_dpst(self, recorded):
        assert recorded.trace.dpst is recorded.dpst

    def test_memory_event_fields(self, recorded):
        events = recorded.recorder.memory_events()
        first = events[0]
        assert first.access_type == WRITE
        assert first.location == "X"
        assert first.task == 0
        locked = [e for e in events if e.lockset]
        assert locked and all(e.lockset == ("L",) for e in locked)

    def test_conflicts_with(self):
        a = MemoryEvent(0, 1, 2, "X", READ)
        b = MemoryEvent(1, 2, 3, "X", WRITE)
        c = MemoryEvent(2, 2, 3, "Y", WRITE)
        assert a.conflicts_with(b)
        assert not a.conflicts_with(a)   # read-read never conflicts
        assert not b.conflicts_with(c)   # different locations


class TestTraceViews:
    def test_lengths(self, recorded):
        trace = recorded.trace
        assert len(trace) == len(recorded.recorder.events)
        assert len(trace.memory_events()) == 6  # 1 init + 2*(R+W) + final R
        assert len(trace.lock_events()) == 4

    def test_task_ids(self, recorded):
        assert recorded.trace.task_ids() == [0, 1, 2]

    def test_locations(self, recorded):
        assert recorded.trace.locations() == ["X"]

    def test_events_by_step_partition(self, recorded):
        grouped = recorded.trace.events_by_step()
        total = sum(len(events) for events in grouped.values())
        assert total == len(recorded.trace.memory_events())

    def test_events_for_location(self, recorded):
        assert len(recorded.trace.events_for_location("X")) == 6
        assert recorded.trace.events_for_location("nope") == []

    def test_step_ids_are_steps(self, recorded):
        for step in recorded.trace.step_ids():
            assert recorded.dpst.is_step(step)


class TestValidation:
    def test_recorded_trace_validates(self, recorded):
        recorded.trace.validate()

    def test_non_monotonic_seq_rejected(self):
        events = [
            MemoryEvent(5, 0, 1, "X", READ),
            MemoryEvent(3, 0, 1, "X", READ),
        ]
        with pytest.raises(TraceError):
            Trace(events).validate()

    def test_step_owned_by_two_tasks_rejected(self):
        events = [
            MemoryEvent(0, 0, 1, "X", READ),
            MemoryEvent(1, 9, 1, "X", READ),
        ]
        with pytest.raises(TraceError):
            Trace(events).validate()

    def test_unknown_step_rejected_with_dpst(self, recorded):
        bogus = Trace(
            [MemoryEvent(0, 0, 9_999, "X", READ)], dpst=recorded.dpst
        )
        with pytest.raises(TraceError):
            bogus.validate()

    def test_to_dicts_roundtrip_fields(self, recorded):
        rows = recorded.trace.to_dicts()
        assert len(rows) == len(recorded.trace)
        memory_rows = [r for r in rows if r["type"] == "MemoryEvent"]
        assert all("location" in r and "seq" in r for r in memory_rows)
