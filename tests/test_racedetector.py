"""SPD3-style race detector: detection, lock awareness, and the paper's
race-vs-atomicity separation claims."""

import pytest

from repro.checker import OptAtomicityChecker, RaceDetector
from repro.runtime import RandomOrderExecutor, TaskProgram, run_program
from repro.suite import get


def detect(body, **kw):
    detector = RaceDetector()
    run_program(TaskProgram(body, **kw), observers=[detector])
    return detector


class TestBasicDetection:
    def test_write_write_race(self):
        def writer(ctx):
            ctx.write("X", ctx.task_id)

        def main(ctx):
            ctx.spawn(writer)
            ctx.spawn(writer)
            ctx.sync()

        detector = detect(main)
        assert detector.race_locations() == ["X"]

    def test_read_write_race(self):
        def reader(ctx):
            ctx.read("X")

        def writer(ctx):
            ctx.write("X", 1)

        def main(ctx):
            ctx.spawn(reader)
            ctx.spawn(writer)
            ctx.sync()

        detector = detect(main)
        assert detector.race_locations() == ["X"]

    def test_read_read_is_not_a_race(self):
        def reader(ctx):
            ctx.read("X")

        def main(ctx):
            ctx.spawn(reader)
            ctx.spawn(reader)
            ctx.sync()

        assert not detect(main).races

    def test_series_accesses_never_race(self):
        def writer(ctx):
            ctx.write("X", 1)

        def main(ctx):
            ctx.spawn(writer)
            ctx.sync()
            ctx.spawn(writer)
            ctx.sync()

        assert not detect(main).races

    def test_many_parallel_writers_all_racy(self):
        def writer(ctx):
            ctx.write("X", ctx.task_id)

        def main(ctx):
            for _ in range(4):
                ctx.spawn(writer)
            ctx.sync()

        detector = detect(main)
        assert len(detector.races) >= 3  # every adjacent pair at minimum


class TestLockAwareness:
    def test_common_lock_orders_accesses(self):
        def bump(ctx):
            with ctx.lock("L"):
                ctx.add("X", 1)

        def main(ctx):
            ctx.spawn(bump)
            ctx.spawn(bump)
            ctx.sync()

        assert not detect(main).races

    def test_versioned_lock_still_excludes(self):
        """Versioning is a checker construct; mutual exclusion is by base
        lock, so critical sections of L and (released/re-acquired) L do
        not race."""

        def split(ctx):
            with ctx.lock("L"):
                ctx.read("X")
            with ctx.lock("L"):
                ctx.write("X", 1)

        def locked_writer(ctx):
            with ctx.lock("L"):
                ctx.write("X", 2)

        def main(ctx):
            ctx.spawn(split)
            ctx.spawn(locked_writer)
            ctx.sync()

        assert not detect(main).races

    def test_different_locks_race(self):
        def bump(ctx, lock):
            with ctx.lock(lock):
                ctx.add("X", 1)

        def main(ctx):
            ctx.spawn(bump, "L")
            ctx.spawn(bump, "M")
            ctx.sync()

        assert detect(main).race_locations() == ["X"]


class TestSeparationClaims:
    """Section 1: races and atomicity violations are different properties."""

    def test_race_without_atomicity_violation(self):
        case = get("safe_race_without_violation")
        program = case.build()
        detector = RaceDetector()
        checker = OptAtomicityChecker()
        result = run_program(program, observers=[detector, checker])
        assert detector.races            # four unordered writes race
        assert not result.report()       # ...but no step has a pair

    def test_atomicity_violation_without_race(self):
        """Figure 11: fully lock-protected, still unserializable."""
        case = get("lock_paper_figure11")
        program = case.build()
        detector = RaceDetector()
        checker = OptAtomicityChecker()
        result = run_program(program, observers=[detector, checker])
        racy_on_x = [r for r in detector.races if r.location == "X"]
        assert not racy_on_x             # every X access holds L
        assert set(result.report().locations()) == {"X"}


class TestReporting:
    def test_describe(self):
        def writer(ctx):
            ctx.write("X", 1)

        def main(ctx):
            ctx.spawn(writer)
            ctx.spawn(writer)
            ctx.sync()

        detector = detect(main)
        text = detector.describe()
        assert "data race" in text
        assert "'X'" in text

    def test_no_races_describe(self):
        def main(ctx):
            ctx.write("X", 1)

        assert detect(main).describe() == "no data races"

    def test_dedup(self):
        def writer(ctx):
            ctx.write("X", 1)
            ctx.write("X", 2)   # same step: the pair is recorded once

        def main(ctx):
            ctx.spawn(writer)
            ctx.spawn(writer)
            ctx.sync()

        detector = detect(main)
        keys = [race.key for race in detector.races]
        assert len(keys) == len(set(keys))

    def test_schedule_insensitive(self):
        def writer(ctx):
            ctx.write("X", 1)

        def main(ctx):
            ctx.spawn(writer)
            ctx.spawn(writer)
            ctx.sync()

        verdicts = set()
        for seed in range(3):
            detector = RaceDetector()
            run_program(
                TaskProgram(main),
                executor=RandomOrderExecutor(seed=seed),
                observers=[detector],
            )
            verdicts.add(frozenset(detector.race_locations()))
        assert verdicts == {frozenset({"X"})}

    def test_workloads_are_race_free_where_locked(self):
        """Spot-check: the locked kernels have no races on their shared
        accumulators."""
        from repro.workloads import get as get_workload

        for name in ("kmeans", "swaptions"):
            detector = RaceDetector()
            run_program(get_workload(name).build(1), observers=[detector])
            racy = {r.location for r in detector.races}
            assert not any(
                loc[0] in ("sum", "sumx", "sumy", "count") for loc in racy
            ), (name, racy)
