"""Multi-variable atomicity groups: checker-level unit tests.

Complements the suite's multivar category with direct metadata-level
assertions: grouped locations share one metadata cell, cross-member
triples are detected, and the same accesses without grouping are quiet.
"""

import pytest

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.checker.annotations import AtomicAnnotations
from repro.dpst import ArrayDPST
from repro.report import READ, WRITE
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events

from tests.conftest import build_figure2


def mem(seq, task, step, loc, access, lockset=()):
    return MemoryEvent(seq, task, step, loc, access, lockset)


@pytest.fixture
def fig2():
    tree = ArrayDPST()
    s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
    return tree, s2, s3


def group_annotations():
    annotations = AtomicAnnotations()
    annotations.annotate_group("acct", ["checking", "savings"])
    return annotations


class TestCrossMemberTriples:
    def events_snapshot_vs_write(self, s2, s3):
        """s2 reads both members; s3 writes one of them."""
        return [
            mem(0, 2, s2, "checking", READ),
            mem(1, 2, s2, "savings", READ),
            mem(2, 3, s3, "savings", WRITE),
        ]

    def test_grouped_detects(self, fig2):
        tree, s2, s3 = fig2
        checker = OptAtomicityChecker()
        replay_memory_events(
            self.events_snapshot_vs_write(s2, s3),
            checker,
            dpst=tree,
            annotations=group_annotations(),
        )
        assert checker.report.locations() == [("group", "acct")]

    def test_ungrouped_misses(self, fig2):
        tree, s2, s3 = fig2
        checker = OptAtomicityChecker()
        annotations = AtomicAnnotations().annotate("checking").annotate("savings")
        replay_memory_events(
            self.events_snapshot_vs_write(s2, s3),
            checker,
            dpst=tree,
            annotations=annotations,
        )
        assert not checker.report

    def test_basic_checker_agrees(self, fig2):
        tree, s2, s3 = fig2
        checker = BasicAtomicityChecker()
        replay_memory_events(
            self.events_snapshot_vs_write(s2, s3),
            checker,
            dpst=tree,
            annotations=group_annotations(),
        )
        assert checker.report.locations() == [("group", "acct")]

    def test_write_write_across_members(self, fig2):
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "checking", WRITE),
            mem(1, 2, s2, "savings", WRITE),
            mem(2, 3, s3, "checking", WRITE),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(
            events, checker, dpst=tree, annotations=group_annotations()
        )
        assert len(checker.report) >= 1
        assert checker.report.locations() == [("group", "acct")]


class TestGroupMetadataSharing:
    def test_single_metadata_cell(self, fig2):
        tree, s2, s3 = fig2
        checker = OptAtomicityChecker()
        events = [
            mem(0, 2, s2, "checking", READ),
            mem(1, 2, s2, "savings", WRITE),
        ]
        replay_memory_events(
            events, checker, dpst=tree, annotations=group_annotations()
        )
        assert checker.tracked_locations() == 1

    def test_group_key_in_report(self, fig2):
        tree, s2, s3 = fig2
        checker = OptAtomicityChecker()
        events = [
            mem(0, 2, s2, "checking", READ),
            mem(1, 2, s2, "savings", WRITE),
            mem(2, 3, s3, "checking", WRITE),
        ]
        replay_memory_events(
            events, checker, dpst=tree, annotations=group_annotations()
        )
        violation = checker.report.violations[0]
        assert violation.location == ("group", "acct")
        # The individual accesses keep their member locations for debugging.
        assert violation.first.location == "checking"
        assert violation.third.location == "savings"


class TestUncheckedLocations:
    def test_other_locations_ignored_entirely(self, fig2):
        tree, s2, s3 = fig2
        checker = OptAtomicityChecker()
        events = [
            mem(0, 2, s2, "scratch", READ),
            mem(1, 2, s2, "scratch", WRITE),
            mem(2, 3, s3, "scratch", WRITE),
        ]
        replay_memory_events(
            events, checker, dpst=tree, annotations=group_annotations()
        )
        assert not checker.report
        assert checker.tracked_locations() == 0
