"""Sharding must not change what the pipeline counts.

Satellite guarantee of the observability layer: checker state is
per-location, so every registered counter the offline pipeline emits --
except the per-process memo-table statistics listed in
:data:`repro.obs.SHARD_SENSITIVE_METRICS` and the sharded driver's own
bookkeeping -- totals identically whether a trace is checked in-process
(``jobs=1``) or partitioned over four workers (``jobs=4``).  Verified
across the full 36-program suite, plus the end-to-end acceptance path:
``check-trace FILE --jobs 4 --metrics out.json`` writes per-shard spans
and merged counters that match a ``jobs=1`` run of the same file.
"""

import json

import pytest

from repro.checker import OptAtomicityChecker
from repro.checker.sharded import check_sharded
from repro.obs import (
    METRIC_NAMES,
    MetricsRecorder,
    comparable_counters,
    is_metrics_dict,
)
from repro.runtime import run_program
from repro.suite import all_cases
from repro.trace.serialize import dump_trace_jsonl

CASES = all_cases()


def record(program):
    """One instrumented run yielding the recorded trace."""
    return run_program(
        program, observers=[OptAtomicityChecker()], record_trace=True
    ).trace


def sharded_counters(source, jobs, annotations=None):
    """Merged counter totals of one observed sharded run."""
    recorder = MetricsRecorder()
    check_sharded(
        source,
        checker="optimized",
        jobs=jobs,
        annotations=annotations,
        recorder=recorder,
    )
    return recorder.snapshot().counters


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
class TestSuiteCounterStability:
    """jobs=4 merged totals equal jobs=1 on all 36 suite programs."""

    def test_jobs4_totals_match_jobs1(self, case):
        program = case.build()
        trace = record(program)
        single = sharded_counters(trace, 1, program.annotations)
        merged = sharded_counters(trace, 4, program.annotations)
        assert comparable_counters(merged) == comparable_counters(single), (
            f"{case.name}: sharding changed the counter totals"
        )
        # The merged run really did fan out and reach every event.
        assert merged["trace.events.routed"] == single["trace.events.routed"]
        assert set(single) <= set(METRIC_NAMES)


class TestAcceptancePath:
    """ISSUE acceptance: check-trace FILE --jobs 4 --metrics out.json."""

    def trace_file(self, tmp_path):
        # Reuse a suite case with cross-task conflicts on several
        # locations so four shards actually get populated.
        case = CASES[0]
        program = case.build()
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(record(program), path)
        return path

    def test_cli_metrics_match_jobs1(self, tmp_path, capsys):
        from repro.cli import main

        path = self.trace_file(tmp_path)
        out1 = str(tmp_path / "m1.json")
        out4 = str(tmp_path / "m4.json")
        main(["check-trace", path, "--jobs", "1", "--metrics", out1])
        main(["check-trace", path, "--jobs", "4", "--metrics", out4])
        capsys.readouterr()

        with open(out1, "r", encoding="utf-8") as handle:
            single = json.load(handle)
        with open(out4, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
        assert is_metrics_dict(single) and is_metrics_dict(merged)

        # Per-shard spans are present in the sharded output...
        assert merged.get("shards")
        for shard in merged["shards"]:
            assert "shard" in shard
            assert any(
                span["path"] == "replay" for span in shard.get("spans", [])
            ), "each worker snapshot must carry its replay span"
        # ...and the merged counter totals equal the jobs=1 run.
        assert comparable_counters(merged["counters"]) == comparable_counters(
            single["counters"]
        )

    def test_file_streamed_equals_in_memory_totals(self, tmp_path):
        case = CASES[0]
        program = case.build()
        trace = record(program)
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(trace, path)
        from_memory = sharded_counters(trace, 4, program.annotations)
        from_file = sharded_counters(path, 4, program.annotations)
        assert comparable_counters(from_file) == comparable_counters(
            from_memory
        )
