"""Coverage-report corners and the imprecision diagnostic paths.

Complements ``tests/test_static.py``: reserved template scratch
locations, unresolved-task plumbing, ``suspect_locations`` filtering,
and the ``SAV102``/``SAV105`` diagnostics together with their
per-location prefilter consequences (lock notes never poison; a
non-constant location leaves the *other* locations provable).
"""

from repro.runtime import TaskProgram, parallel_reduce, run_program
from repro.static import analyze_function, check_trace_coverage, lint_function
from repro.static.accesses import EXACT, PREFIX
from repro.static.diagnostics import INFO, WARNING


def _trace_of(body):
    return run_program(TaskProgram(body), record_trace=True).trace


# -- module-level bodies ------------------------------------------------------


def _reducer(ctx):
    ctx.write("total", parallel_reduce(ctx, 0, 4, _read_cell, lambda a, b: a + b, 0))


def _read_cell(ctx, i):
    return ctx.read("cells")


def _spawns_parameter(ctx, body):
    ctx.spawn(body)
    ctx.sync()


def _branchy(ctx):
    ctx.write("flag", 0)
    if ctx.read("flag"):
        ctx.write("rare", 1)
        for i in range(2):
            ctx.write(("arr", i), 1)


def _dynamic_lock(ctx, suffix="a"):
    with ctx.lock("L" + suffix):
        ctx.write("d", 1)


def _computed_cell(ctx):
    for i in range(3):
        ctx.write(("cell", i), i)
    ctx.write("ok", 0)


class TestCoverageCorners:
    def test_reserved_scratch_locations_ignored(self):
        """``__reduce__`` plumbing in the trace is not "unpredicted"."""
        trace = _trace_of(_reducer)
        assert any(
            isinstance(e.location, tuple) and e.location[0] == "__reduce__"
            for e in trace.memory_events()
        )
        report = check_trace_coverage(analyze_function(_reducer), trace)
        assert not report.unpredicted, report.describe()

    def test_unresolved_tasks_void_the_guarantee(self):
        static = analyze_function(_spawns_parameter)
        report = check_trace_coverage(static, _trace_of(_branchy))
        assert report.unresolved_tasks
        assert not report.complete
        assert "UNRESOLVED TASKS" in report.describe()

    def test_suspect_locations_only_from_exact_missing(self):
        report = check_trace_coverage(analyze_function(_branchy), _trace_of(_branchy))
        missing_kinds = {p.kind for p in report.missing}
        assert missing_kinds == {EXACT, PREFIX}  # "rare" + ("arr", *)
        assert report.suspect_locations == {"rare"}


class TestImprecisionDiagnostics:
    def test_dynamic_lock_name_is_info_and_never_poisons(self):
        report = lint_function(_dynamic_lock)
        sav105 = [d for d in report.diagnostics if d.code == "SAV105"]
        assert sav105 and sav105[0].severity == INFO
        assert "not a compile-time constant" in sav105[0].message
        # Soundness of the prefilter never rests on locksets, so the
        # dynamic lock name must not cost any proven-serial location.
        assert "d" in report.prefilter_locations()
        assert not report.poisoned_locations

    def test_nonconstant_location_warns_but_stays_per_location(self):
        report = lint_function(_computed_cell)
        sav102 = [d for d in report.diagnostics if d.code == "SAV102"]
        assert sav102 and sav102[0].severity == WARNING
        assert "prefix" in sav102[0].message
        # The old global boolean would have dropped everything here; the
        # per-location proof keeps the untainted exact location.
        assert not report.prefilter_safe
        assert "ok" in report.prefilter_locations()
        # Non-exact groups appear in neither the serial nor poisoned set.
        assert not report.poisoned_locations
