"""The Figure 4 serializability table, validated against first principles."""

import pytest

from repro.checker.access import AccessEntry, TwoAccessPattern
from repro.checker.patterns import (
    SERIALIZABLE_PATTERNS,
    UNSERIALIZABLE_PATTERNS,
    all_triples,
    brute_force_serializable,
    is_serializable,
    is_unserializable_triple,
    pattern_violated_by,
    serializability_table,
    triple_code,
)
from repro.report import READ, WRITE


class TestTable:
    def test_eight_rows(self):
        assert len(serializability_table()) == 8

    def test_exactly_five_unserializable(self):
        assert UNSERIALIZABLE_PATTERNS == ("RWR", "RWW", "WRW", "WWR", "WWW")

    def test_exactly_three_serializable(self):
        assert SERIALIZABLE_PATTERNS == ("RRR", "RRW", "WRR")

    @pytest.mark.parametrize("a1,a2,a3", list(all_triples()))
    def test_matches_brute_force(self, a1, a2, a3):
        assert is_serializable(a1, a2, a3) == brute_force_serializable(a1, a2, a3)

    def test_conflict_rule(self):
        """Unserializable iff A2 conflicts with both A1 and A3."""
        def conflicts(x, y):
            return x == WRITE or y == WRITE

        for a1, a2, a3 in all_triples():
            expected = conflicts(a1, a2) and conflicts(a2, a3)
            assert is_unserializable_triple(a1, a2, a3) == expected


class TestTripleCode:
    def test_codes(self):
        assert triple_code(READ, WRITE, READ) == "RWR"
        assert triple_code(WRITE, WRITE, WRITE) == "WWW"
        assert triple_code(READ, READ, WRITE) == "RRW"

    def test_paper_examples(self):
        # Figure 5: S2's (R, W) pair with S3's interleaving write.
        assert is_unserializable_triple(READ, WRITE, WRITE)
        # A read interleaving a read-read pair is harmless.
        assert is_serializable(READ, READ, READ)


class TestPatternViolatedBy:
    def _entry(self, step, access_type):
        return AccessEntry(step=step, access_type=access_type)

    def test_write_breaks_read_read(self):
        pattern = TwoAccessPattern(self._entry(1, READ), self._entry(1, READ))
        assert pattern_violated_by(pattern, self._entry(2, WRITE))
        assert not pattern_violated_by(pattern, self._entry(2, READ))

    def test_read_breaks_only_write_write(self):
        reader = self._entry(2, READ)
        ww = TwoAccessPattern(self._entry(1, WRITE), self._entry(1, WRITE))
        rw = TwoAccessPattern(self._entry(1, READ), self._entry(1, WRITE))
        wr = TwoAccessPattern(self._entry(1, WRITE), self._entry(1, READ))
        rr = TwoAccessPattern(self._entry(1, READ), self._entry(1, READ))
        assert pattern_violated_by(ww, reader)
        assert not pattern_violated_by(rw, reader)
        assert not pattern_violated_by(wr, reader)
        assert not pattern_violated_by(rr, reader)

    def test_write_breaks_every_pattern(self):
        writer = self._entry(2, WRITE)
        for first in (READ, WRITE):
            for second in (READ, WRITE):
                pattern = TwoAccessPattern(
                    self._entry(1, first), self._entry(1, second)
                )
                assert pattern_violated_by(pattern, writer)

    def test_kind_codes(self):
        pattern = TwoAccessPattern(self._entry(1, WRITE), self._entry(1, READ))
        assert pattern.kind == "WR"
        assert pattern.step == 1
