"""The content-addressed result cache: keys, storage, session integration."""

import json
import os

import pytest

from repro import CheckSession, TaskProgram, run_program
from repro.cache import (
    CACHE_SCHEMA,
    ResultCache,
    checker_cache_token,
    file_digest,
    normalized_report_copy,
    result_cache_key,
    trace_digest,
)
from repro.checker import OptAtomicityChecker
from repro.obs import MetricsRecorder
from repro.report import report_to_dict
from repro.trace.serialize import dump_trace


def _rmw(ctx):
    value = ctx.read("X")
    ctx.write("X", value + 1)


def buggy_body(ctx):
    ctx.write("X", 0)
    ctx.spawn(_rmw)
    ctx.spawn(_rmw)
    ctx.sync()


@pytest.fixture
def trace():
    return run_program(TaskProgram(buggy_body), record_trace=True).trace


def report_bytes(report):
    return json.dumps(report_to_dict(report), sort_keys=True)


class TestDigests:
    def test_trace_digest_is_deterministic(self, trace):
        assert trace_digest(trace) == trace_digest(trace)

    def test_trace_digest_sees_every_event(self, trace):
        from repro.trace.trace import Trace

        truncated = Trace(trace.events[:-1], dpst=trace.dpst)
        assert trace_digest(truncated) != trace_digest(trace)

    def test_file_digest_tracks_content(self, trace, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        dump_trace(trace, a, format="jsonl")
        dump_trace(trace, b, format="jsonl")
        assert file_digest(a) == file_digest(b)
        with open(b, "a", encoding="utf-8") as handle:
            handle.write("\n")
        assert file_digest(a) != file_digest(b)


class TestCheckerToken:
    def test_string_specs_are_cacheable(self):
        assert checker_cache_token("optimized") == "optimized"

    def test_kwargs_fold_into_the_token(self):
        plain = checker_cache_token("optimized")
        thorough = checker_cache_token("optimized", {"mode": "thorough"})
        assert thorough is not None and thorough != plain

    def test_class_and_instance_specs_are_not(self):
        assert checker_cache_token(OptAtomicityChecker) is None
        assert checker_cache_token(OptAtomicityChecker()) is None

    def test_unserializable_kwargs_are_not(self):
        assert checker_cache_token("optimized", {"hook": object()}) is None


class TestKey:
    def test_every_component_changes_the_key(self):
        base = dict(
            trace_digest="d1", checker_token="optimized",
            engine="lca", prefilter=False, strict=True,
        )
        key = result_cache_key(**base)
        for field, other in (
            ("trace_digest", "d2"),
            ("checker_token", "basic"),
            ("engine", "depa"),
            ("prefilter", True),
            ("strict", False),
        ):
            varied = dict(base)
            varied[field] = other
            assert result_cache_key(**varied) != key, field


class TestStore:
    def test_store_then_load(self, trace, tmp_path):
        report = CheckSession(trace).check()
        cache = ResultCache(str(tmp_path / "rc"))
        key = "ab" * 32
        nbytes = cache.store(key, report, meta={"checker": "optimized"})
        entry = cache.load(key)
        assert entry is not None
        assert entry.nbytes == nbytes
        assert entry.meta == {"checker": "optimized"}
        assert report_bytes(entry.report) == report_bytes(report)

    def test_missing_key_is_a_miss(self, tmp_path):
        assert ResultCache(str(tmp_path / "rc")).load("cd" * 32) is None

    def test_damaged_entry_is_a_miss(self, trace, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        key = "ef" * 32
        cache.store(key, CheckSession(trace).check())
        path = cache._path(key)
        open(path, "w").write("{torn write")
        assert cache.load(key) is None

    def test_foreign_schema_is_a_miss(self, trace, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        key = "01" * 32
        cache.store(key, CheckSession(trace).check())
        path = cache._path(key)
        data = json.loads(open(path).read())
        data["schema"] = CACHE_SCHEMA + "-future"
        open(path, "w").write(json.dumps(data))
        assert cache.load(key) is None


class TestNormalizedCopy:
    def test_jobs_layout_insensitive(self, trace):
        sequential = CheckSession(trace, jobs=1).check()
        sharded = CheckSession(trace, jobs=4).check()
        assert report_bytes(normalized_report_copy(sequential)) == report_bytes(
            normalized_report_copy(sharded)
        )

    def test_raw_count_preserved(self, trace):
        report = CheckSession(trace).check()
        assert normalized_report_copy(report).raw_count == report.raw_count


class TestSessionIntegration:
    def test_miss_then_hit_byte_identical(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        first = CheckSession(trace)
        fresh = first.check(cache_dir=cache_dir)
        assert first.cache_info["applied"] and not first.cache_info["hit"]
        second = CheckSession(trace, jobs=4)
        served = second.check(cache_dir=cache_dir)
        assert second.cache_info["hit"]
        assert second.cache_info["key"] == first.cache_info["key"]
        assert report_bytes(served) == report_bytes(fresh)

    def test_file_sources_hit_too(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace(trace, path, format="columnar")
        cache_dir = str(tmp_path / "rc")
        CheckSession(path).check(cache_dir=cache_dir)
        session = CheckSession(path)
        session.check(cache_dir=cache_dir)
        assert session.cache_info["hit"]

    def test_metrics(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        miss = MetricsRecorder()
        CheckSession(trace, recorder=miss).check(cache_dir=cache_dir)
        counters = miss.snapshot().counters
        assert counters["cache.miss"] == 1
        assert counters["cache.bytes"] > 0
        assert "cache.hit" not in counters
        hit = MetricsRecorder()
        CheckSession(trace, recorder=hit).check(cache_dir=cache_dir)
        counters = hit.snapshot().counters
        assert counters["cache.hit"] == 1
        assert counters["cache.bytes"] > 0
        assert "cache.miss" not in counters

    def test_no_cache_dir_means_no_cache_info(self, trace):
        session = CheckSession(trace)
        session.check()
        assert session.cache_info is None

    def test_engine_is_part_of_the_key(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        CheckSession(trace, engine="lca").check(cache_dir=cache_dir)
        session = CheckSession(trace, engine="depa")
        session.check(cache_dir=cache_dir)
        assert session.cache_info["applied"]
        assert not session.cache_info["hit"]

    def test_checker_kwargs_are_part_of_the_key(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        CheckSession(trace).check(cache_dir=cache_dir)
        session = CheckSession(trace)
        session.check(cache_dir=cache_dir, mode="thorough")
        assert session.cache_info["applied"]
        assert not session.cache_info["hit"]
        # ... and the kwargs variant caches under its own key.
        repeat = CheckSession(trace)
        repeat.check(cache_dir=cache_dir, mode="thorough")
        assert repeat.cache_info["hit"]


class TestBypasses:
    def test_instance_spec_bypasses(self, trace, tmp_path):
        session = CheckSession(trace, checker=OptAtomicityChecker())
        session.check(cache_dir=str(tmp_path / "rc"))
        info = session.cache_info
        assert info["requested"] and not info["applied"]
        assert "not content-addressable" in info["reason"]

    def test_prefilter_request_bypasses(self, tmp_path):
        session = CheckSession(TaskProgram(buggy_body))
        session.check(
            cache_dir=str(tmp_path / "rc"), static_prefilter=buggy_body
        )
        info = session.cache_info
        assert not info["applied"]
        assert "prefilter" in info["reason"]

    def test_nontrivial_annotations_bypass(self, trace, tmp_path):
        from repro.checker.annotations import AtomicAnnotations

        session = CheckSession(
            trace, annotations=AtomicAnnotations().annotate("X")
        )
        session.check(cache_dir=str(tmp_path / "rc"))
        assert not session.cache_info["applied"]
        assert "annotations" in session.cache_info["reason"]

    def test_bypass_counts_a_metric(self, trace, tmp_path):
        recorder = MetricsRecorder()
        session = CheckSession(
            trace, checker=OptAtomicityChecker(), recorder=recorder
        )
        session.check(cache_dir=str(tmp_path / "rc"))
        assert recorder.snapshot().counters["cache.bypass"] == 1

    def test_bypassed_check_still_reports(self, trace, tmp_path):
        session = CheckSession(trace, checker=OptAtomicityChecker())
        report = session.check(cache_dir=str(tmp_path / "rc"))
        assert set(report.locations()) == {"X"}
