"""The content-addressed result cache: keys, storage, session integration."""

import json
import os

import pytest

from repro import CheckSession, TaskProgram, run_program
from repro.cache import (
    CACHE_SCHEMA,
    ResultCache,
    checker_cache_token,
    file_digest,
    normalized_report_copy,
    result_cache_key,
    trace_digest,
)
from repro.checker import OptAtomicityChecker
from repro.obs import MetricsRecorder
from repro.report import report_to_dict
from repro.trace.serialize import dump_trace


def _rmw(ctx):
    value = ctx.read("X")
    ctx.write("X", value + 1)


def buggy_body(ctx):
    ctx.write("X", 0)
    ctx.spawn(_rmw)
    ctx.spawn(_rmw)
    ctx.sync()


@pytest.fixture
def trace():
    return run_program(TaskProgram(buggy_body), record_trace=True).trace


def report_bytes(report):
    return json.dumps(report_to_dict(report), sort_keys=True)


class TestDigests:
    def test_trace_digest_is_deterministic(self, trace):
        assert trace_digest(trace) == trace_digest(trace)

    def test_trace_digest_sees_every_event(self, trace):
        from repro.trace.trace import Trace

        truncated = Trace(trace.events[:-1], dpst=trace.dpst)
        assert trace_digest(truncated) != trace_digest(trace)

    def test_file_digest_tracks_content(self, trace, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        dump_trace(trace, a, format="jsonl")
        dump_trace(trace, b, format="jsonl")
        assert file_digest(a) == file_digest(b)
        with open(b, "a", encoding="utf-8") as handle:
            handle.write("\n")
        assert file_digest(a) != file_digest(b)


class TestCheckerToken:
    def test_string_specs_are_cacheable(self):
        assert checker_cache_token("optimized") == "optimized"

    def test_kwargs_fold_into_the_token(self):
        plain = checker_cache_token("optimized")
        thorough = checker_cache_token("optimized", {"mode": "thorough"})
        assert thorough is not None and thorough != plain

    def test_class_and_instance_specs_are_not(self):
        assert checker_cache_token(OptAtomicityChecker) is None
        assert checker_cache_token(OptAtomicityChecker()) is None

    def test_unserializable_kwargs_are_not(self):
        assert checker_cache_token("optimized", {"hook": object()}) is None


class TestKey:
    def test_every_component_changes_the_key(self):
        base = dict(
            trace_digest="d1", checker_token="optimized",
            engine="lca", prefilter=False, strict=True,
        )
        key = result_cache_key(**base)
        for field, other in (
            ("trace_digest", "d2"),
            ("checker_token", "basic"),
            ("engine", "depa"),
            ("prefilter", True),
            ("strict", False),
        ):
            varied = dict(base)
            varied[field] = other
            assert result_cache_key(**varied) != key, field


class TestStore:
    def test_store_then_load(self, trace, tmp_path):
        report = CheckSession(trace).check()
        cache = ResultCache(str(tmp_path / "rc"))
        key = "ab" * 32
        nbytes = cache.store(key, report, meta={"checker": "optimized"})
        entry = cache.load(key)
        assert entry is not None
        assert entry.nbytes == nbytes
        assert entry.meta == {"checker": "optimized"}
        assert report_bytes(entry.report) == report_bytes(report)

    def test_missing_key_is_a_miss(self, tmp_path):
        assert ResultCache(str(tmp_path / "rc")).load("cd" * 32) is None

    def test_damaged_entry_is_a_miss(self, trace, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        key = "ef" * 32
        cache.store(key, CheckSession(trace).check())
        path = cache._path(key)
        open(path, "w").write("{torn write")
        assert cache.load(key) is None

    def test_foreign_schema_is_a_miss(self, trace, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        key = "01" * 32
        cache.store(key, CheckSession(trace).check())
        path = cache._path(key)
        data = json.loads(open(path).read())
        data["schema"] = CACHE_SCHEMA + "-future"
        open(path, "w").write(json.dumps(data))
        assert cache.load(key) is None

    @pytest.mark.parametrize(
        "damage",
        [
            pytest.param(lambda path: open(path, "w").close(), id="empty-file"),
            pytest.param(
                lambda path: open(path, "wb").write(b"\x00\xff" * 64),
                id="binary-garbage",
            ),
            pytest.param(
                lambda path: open(path, "w").write(json.dumps([1, 2, 3])),
                id="non-dict-json",
            ),
        ],
    )
    def test_more_damage_modes_are_misses(self, trace, tmp_path, damage):
        cache = ResultCache(str(tmp_path / "rc"))
        key = "23" * 32
        cache.store(key, CheckSession(trace).check())
        damage(cache._path(key))
        assert cache.load(key) is None

    def test_valid_json_bad_report_payload_is_a_miss(self, trace, tmp_path):
        """Schema and key line up but the report body does not decode."""
        cache = ResultCache(str(tmp_path / "rc"))
        key = "45" * 32
        cache.store(key, CheckSession(trace).check())
        path = cache._path(key)
        data = json.loads(open(path).read())
        data["report"] = {"violations": "not-a-list"}
        open(path, "w").write(json.dumps(data))
        assert cache.load(key) is None

    def test_key_mismatch_is_a_miss(self, trace, tmp_path):
        """An entry copied to the wrong slot never serves for that key."""
        cache = ResultCache(str(tmp_path / "rc"))
        key, other = "67" * 32, "89" * 32
        cache.store(key, CheckSession(trace).check())
        os.makedirs(os.path.dirname(cache._path(other)), exist_ok=True)
        open(cache._path(other), "w").write(open(cache._path(key)).read())
        assert cache.load(other) is None

    def test_restore_recovers_damaged_entry(self, trace, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        key = "ab" * 32
        report = CheckSession(trace).check()
        cache.store(key, report)
        open(cache._path(key), "w").write("{torn write")
        assert cache.load(key) is None
        cache.store(key, report)
        entry = cache.load(key)
        assert entry is not None
        assert report_bytes(entry.report) == report_bytes(report)


class TestNormalizedCopy:
    def test_jobs_layout_insensitive(self, trace):
        sequential = CheckSession(trace, jobs=1).check()
        sharded = CheckSession(trace, jobs=4).check()
        assert report_bytes(normalized_report_copy(sequential)) == report_bytes(
            normalized_report_copy(sharded)
        )

    def test_raw_count_preserved(self, trace):
        report = CheckSession(trace).check()
        assert normalized_report_copy(report).raw_count == report.raw_count


class TestSessionIntegration:
    def test_miss_then_hit_byte_identical(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        first = CheckSession(trace)
        fresh = first.check(cache_dir=cache_dir)
        assert first.cache_info["applied"] and not first.cache_info["hit"]
        second = CheckSession(trace, jobs=4)
        served = second.check(cache_dir=cache_dir)
        assert second.cache_info["hit"]
        assert second.cache_info["key"] == first.cache_info["key"]
        assert report_bytes(served) == report_bytes(fresh)

    def test_file_sources_hit_too(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        dump_trace(trace, path, format="columnar")
        cache_dir = str(tmp_path / "rc")
        CheckSession(path).check(cache_dir=cache_dir)
        session = CheckSession(path)
        session.check(cache_dir=cache_dir)
        assert session.cache_info["hit"]

    def test_metrics(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        miss = MetricsRecorder()
        CheckSession(trace, recorder=miss).check(cache_dir=cache_dir)
        counters = miss.snapshot().counters
        assert counters["cache.miss"] == 1
        assert counters["cache.bytes"] > 0
        assert "cache.hit" not in counters
        hit = MetricsRecorder()
        CheckSession(trace, recorder=hit).check(cache_dir=cache_dir)
        counters = hit.snapshot().counters
        assert counters["cache.hit"] == 1
        assert counters["cache.bytes"] > 0
        assert "cache.miss" not in counters

    def test_no_cache_dir_means_no_cache_info(self, trace):
        session = CheckSession(trace)
        session.check()
        assert session.cache_info is None

    def test_engine_is_part_of_the_key(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        CheckSession(trace, engine="lca").check(cache_dir=cache_dir)
        session = CheckSession(trace, engine="depa")
        session.check(cache_dir=cache_dir)
        assert session.cache_info["applied"]
        assert not session.cache_info["hit"]

    def test_checker_kwargs_are_part_of_the_key(self, trace, tmp_path):
        cache_dir = str(tmp_path / "rc")
        CheckSession(trace).check(cache_dir=cache_dir)
        session = CheckSession(trace)
        session.check(cache_dir=cache_dir, mode="thorough")
        assert session.cache_info["applied"]
        assert not session.cache_info["hit"]
        # ... and the kwargs variant caches under its own key.
        repeat = CheckSession(trace)
        repeat.check(cache_dir=cache_dir, mode="thorough")
        assert repeat.cache_info["hit"]


class TestBypasses:
    def test_instance_spec_bypasses(self, trace, tmp_path):
        session = CheckSession(trace, checker=OptAtomicityChecker())
        session.check(cache_dir=str(tmp_path / "rc"))
        info = session.cache_info
        assert info["requested"] and not info["applied"]
        assert "not content-addressable" in info["reason"]

    def test_prefilter_request_bypasses(self, tmp_path):
        session = CheckSession(TaskProgram(buggy_body))
        session.check(
            cache_dir=str(tmp_path / "rc"), static_prefilter=buggy_body
        )
        info = session.cache_info
        assert not info["applied"]
        assert "prefilter" in info["reason"]

    def test_nontrivial_annotations_bypass(self, trace, tmp_path):
        from repro.checker.annotations import AtomicAnnotations

        session = CheckSession(
            trace, annotations=AtomicAnnotations().annotate("X")
        )
        session.check(cache_dir=str(tmp_path / "rc"))
        assert not session.cache_info["applied"]
        assert "annotations" in session.cache_info["reason"]

    def test_bypass_counts_a_metric(self, trace, tmp_path):
        recorder = MetricsRecorder()
        session = CheckSession(
            trace, checker=OptAtomicityChecker(), recorder=recorder
        )
        session.check(cache_dir=str(tmp_path / "rc"))
        assert recorder.snapshot().counters["cache.bypass"] == 1

    def test_bypassed_check_still_reports(self, trace, tmp_path):
        session = CheckSession(trace, checker=OptAtomicityChecker())
        report = session.check(cache_dir=str(tmp_path / "rc"))
        assert set(report.locations()) == {"X"}


# ---------------------------------------------------------------------------
# Concurrent writers: two processes racing one key must both succeed
# ---------------------------------------------------------------------------


def _race_check_worker(trace_path, cache_dir, out_path):
    """One racing process: full session check through the shared cache."""
    from repro import CheckSession

    session = CheckSession(trace_path)
    report = session.check(cache_dir=cache_dir)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {"bytes": report_bytes(report), "hit": session.cache_info["hit"]},
            handle,
        )


def _hammer_store_worker(trace_path, cache_dir, key, rounds):
    """Store the same entry *rounds* times; every own reload must hit."""
    from repro import CheckSession
    from repro.cache import ResultCache, normalized_report_copy

    report = normalized_report_copy(CheckSession(trace_path).check())
    expected = report_bytes(report)
    cache = ResultCache(cache_dir)
    for _ in range(rounds):
        cache.store(key, report)
        entry = cache.load(key)
        assert entry is not None, "store immediately followed by a miss"
        assert report_bytes(entry.report) == expected, "torn or foreign read"


class TestConcurrentWriters:
    """The atomic temp-file + ``os.replace`` discipline under real races.

    Readers must never observe a torn entry: every load is either a miss
    or a complete, byte-identical report, no matter how many writers are
    replacing the same key at the time.
    """

    def _start(self, target, args):
        from repro.checker.sharded import _mp_context

        process = _mp_context().Process(target=target, args=args)
        process.start()
        return process

    def _join(self, processes):
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

    def test_two_sessions_race_one_key(self, trace, tmp_path):
        trace_path = str(tmp_path / "t.trc")
        dump_trace(trace, trace_path, format="columnar")
        cache_dir = str(tmp_path / "rc")
        outs = [str(tmp_path / f"out{i}.json") for i in range(2)]
        processes = [
            self._start(_race_check_worker, (trace_path, cache_dir, out))
            for out in outs
        ]
        self._join(processes)
        results = [json.load(open(out)) for out in outs]
        assert results[0]["bytes"] == results[1]["bytes"]
        # Whatever the interleaving, a later check through the same
        # directory is a clean hit serving those same bytes.
        session = CheckSession(trace_path)
        served = session.check(cache_dir=cache_dir)
        assert session.cache_info["hit"]
        assert report_bytes(served) == results[0]["bytes"]

    def test_store_load_hammer(self, trace, tmp_path):
        trace_path = str(tmp_path / "t.trc")
        dump_trace(trace, trace_path, format="columnar")
        cache_dir = str(tmp_path / "rc")
        key = "cd" * 32
        processes = [
            self._start(
                _hammer_store_worker, (trace_path, cache_dir, key, 100)
            )
            for _ in range(2)
        ]
        self._join(processes)
        entry = ResultCache(cache_dir).load(key)
        assert entry is not None
