"""The ``repro lint`` pass and the sharded checker's static prefilter.

Covers :mod:`repro.static.lint` / :mod:`repro.static.diagnostics`,
:meth:`repro.session.CheckSession.lint`, ``static_prefilter=`` on
:meth:`~repro.session.CheckSession.check`, and the acceptance criterion:
on the 36-program suite the prefiltered check reports exactly what the
unfiltered check reports, at ``jobs=1`` and ``jobs=4``.
"""

import pytest

from repro.checker.annotations import AtomicAnnotations
from repro.errors import TraceError
from repro.obs import MetricsRecorder
from repro.report import READ, WRITE
from repro.runtime import TaskProgram, run_program
from repro.session import CheckSession
from repro.static import lint_function, lint_program, lint_spec
from repro.static.diagnostics import ERROR, RULES, WARNING
from repro.suite import all_cases

# -- module-level task bodies ------------------------------------------------


def _increment(ctx):
    value = ctx.read("counter")
    ctx.write("counter", value + 1)


def _lost_update(ctx):
    ctx.write("counter", 0)
    ctx.spawn(_increment)
    ctx.spawn(_increment)
    ctx.sync()


def _locked_increment(ctx):
    with ctx.lock("L"):
        value = ctx.read("counter")
        ctx.write("counter", value + 1)


def _locked_update(ctx):
    ctx.write("counter", 0)
    ctx.spawn(_locked_increment)
    ctx.spawn(_locked_increment)
    ctx.sync()


def _serial_only(ctx):
    ctx.write("y", 1)
    ctx.spawn(_reader)
    ctx.sync()
    ctx.write("y", 2)


def _reader(ctx):
    ctx.read("x")


def _dynamic_index(ctx):
    for i in range(3):
        ctx.spawn(lambda c, i=i: c.write(("cell", i), 1))
    ctx.sync()


# -- the lint pass -----------------------------------------------------------


class TestLintCandidates:
    def test_lost_update_flagged_exactly(self):
        report = lint_function(_lost_update)
        assert report.has_errors
        codes = {c.code for c in report.candidates}
        assert codes == {"SAV001"}
        assert {c.location for c in report.candidates} == {"counter"}
        patterns = {c.pattern for c in report.candidates}
        assert patterns <= {"RWR", "RWW", "WRW", "WWR", "WWW"}

    def test_lock_protection_suppresses_candidates(self):
        report = lint_function(_locked_update)
        assert not report.candidates
        assert not report.has_errors

    def test_spec_front_end(self):
        spec = (
            "task",
            (
                ("finish", (
                    ("spawn", (
                        ("access", "c", READ),
                        ("access", "c", WRITE),
                    )),
                    ("spawn", (("access", "c", WRITE),)),
                )),
            ),
        )
        report = lint_spec(spec)
        assert report.has_errors
        assert any(c.exact for c in report.candidates)

    def test_serial_program_is_clean_and_provable(self):
        report = lint_function(_serial_only)
        assert not report.diagnostics
        assert report.prefilter_safe
        assert report.prefilter_locations() == frozenset({"x", "y"})

    def test_imprecise_skeleton_disables_prefilter(self):
        report = lint_function(_dynamic_index)
        assert not report.prefilter_safe
        assert report.prefilter_locations() == frozenset()

    def test_report_dict_shape(self):
        data = lint_function(_lost_update).to_dict()
        assert data["counts"]["errors"] >= 1
        assert data["exact_skeleton"] is True
        assert data["candidates"]
        entry = data["candidates"][0]
        assert entry["code"] == "SAV001"
        assert all(code in RULES for d in data["diagnostics"]
                   for code in [d["code"]])

    def test_rule_catalog_is_complete(self):
        assert "SAV001" in RULES and "SAV002" in RULES
        severities = {severity for severity, _ in RULES.values()}
        assert severities <= {ERROR, WARNING, "info"}

    def test_lint_program_accepts_taskprogram(self):
        report = lint_program(TaskProgram(_lost_update, name="lost"))
        assert report.has_errors
        assert "lost" in report.target


class TestLintWorkloads:
    def test_buggy_workloads_have_candidates(self):
        from repro.workloads.buggy import build_swaptions_unlocked

        report = lint_program(build_swaptions_unlocked())
        assert report.has_errors
        assert {c.location for c in report.candidates if c.exact} == {
            ("sum",), ("sum2",)
        }

    def test_clean_workloads_have_no_errors(self):
        from repro.workloads import all_workloads

        for spec in all_workloads():
            report = lint_program(spec.build(spec.test_scale))
            assert not report.has_errors, (
                f"{spec.name}: {[d.describe() for d in report.errors]}"
            )


# -- CheckSession integration ------------------------------------------------


class TestSessionLint:
    def test_program_source_lints_and_caches(self):
        session = CheckSession(TaskProgram(_lost_update))
        report = session.lint()
        assert report.has_errors
        assert session.lint() is report

    def test_offline_source_needs_explicit_target(self):
        trace = run_program(TaskProgram(_serial_only), record_trace=True).trace
        session = CheckSession(trace)
        with pytest.raises(TraceError, match="program text"):
            session.lint()
        assert session.lint(_serial_only).prefilter_safe

    def test_lint_counters_recorded(self):
        recorder = MetricsRecorder()
        session = CheckSession(TaskProgram(_lost_update), recorder=recorder)
        session.lint()
        counters = recorder.snapshot().counters
        assert counters["static.lint.runs"] == 1
        assert counters["static.lint.errors"] >= 1
        assert counters["static.lint.candidates"] >= 1


class TestPrefilter:
    def test_applied_on_serial_program(self):
        recorder = MetricsRecorder()
        session = CheckSession(TaskProgram(_serial_only), recorder=recorder)
        report = session.check(static_prefilter=True)
        assert not report
        info = session.prefilter_info
        assert info["applied"]
        assert len(info["locations"]) == 2
        counters = recorder.snapshot().counters
        assert counters["static.prefilter.locations"] == 2
        assert counters["static.prefilter.events_skipped"] == 3

    def test_never_silent_when_refused(self):
        recorder = MetricsRecorder()
        session = CheckSession(TaskProgram(_dynamic_index), recorder=recorder)
        session.check(static_prefilter=True)
        info = session.prefilter_info
        assert not info["applied"]
        assert "not exact" in info["reason"]
        assert recorder.snapshot().counters["static.prefilter.disabled"] == 1

    def test_refused_under_grouped_annotations(self):
        annotations = AtomicAnnotations(check_all=True)
        annotations.annotate_group("pair", ["x", "y"])
        session = CheckSession(
            TaskProgram(_serial_only), annotations=annotations
        )
        session.check(static_prefilter=True)
        assert not session.prefilter_info["applied"]
        assert "annotations" in session.prefilter_info["reason"]

    def test_offline_trace_with_explicit_body(self):
        trace = run_program(TaskProgram(_serial_only), record_trace=True).trace
        session = CheckSession(trace)
        report = session.check(static_prefilter=_serial_only)
        assert not report
        assert session.prefilter_info["applied"]

    def test_violations_never_masked(self):
        baseline = CheckSession(TaskProgram(_lost_update)).check()
        session = CheckSession(TaskProgram(_lost_update))
        filtered = session.check(static_prefilter=True)
        assert set(filtered.locations()) == set(baseline.locations()) == {
            "counter"
        }


# -- acceptance: the 36-program suite ----------------------------------------


CASES = all_cases()


class TestSuiteEquivalence:
    @pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
    def test_prefilter_matches_unfiltered_jobs1(self, case):
        baseline = set(CheckSession(case.build()).check().locations())
        session = CheckSession(case.build())
        filtered = set(session.check(static_prefilter=True).locations())
        assert filtered == baseline
        assert session.prefilter_info["requested"]

    def test_prefilter_matches_unfiltered_jobs4(self):
        for case in CASES:
            baseline = set(
                CheckSession(case.build(), jobs=4).check().locations()
            )
            session = CheckSession(case.build(), jobs=4)
            filtered = set(
                session.check(static_prefilter=True).locations()
            )
            assert filtered == baseline, case.name

    def test_prefilter_actually_fires_somewhere(self):
        """The equivalence above must not hold vacuously: some suite
        cases get locations proven serial and events dropped."""
        fired = 0
        for case in CASES:
            recorder = MetricsRecorder()
            session = CheckSession(case.build(), recorder=recorder)
            session.check(static_prefilter=True)
            info = session.prefilter_info
            if info["applied"] and info["locations"]:
                counters = recorder.snapshot().counters
                if counters.get("static.prefilter.events_skipped", 0):
                    fired += 1
        assert fired >= 3

    def test_skip_accounting_matches_across_jobs(self):
        """events_skipped totals are shard-stable (parent-side for
        in-memory sources, summed worker-side for file streams)."""
        case = next(c for c in CASES if not c.violating)
        totals = []
        for jobs in (1, 4):
            recorder = MetricsRecorder()
            session = CheckSession(
                case.build(), jobs=jobs, recorder=recorder
            )
            session.check(static_prefilter=True)
            totals.append(
                recorder.snapshot().counters.get(
                    "static.prefilter.events_skipped", 0
                )
            )
        assert totals[0] == totals[1]
