"""The ``repro lint`` pass and the sharded checker's static prefilter.

Covers :mod:`repro.static.lint` / :mod:`repro.static.diagnostics`,
:meth:`repro.session.CheckSession.lint`, ``static_prefilter=`` on
:meth:`~repro.session.CheckSession.check`, and the acceptance criterion:
on the 36-program suite the prefiltered check reports exactly what the
unfiltered check reports, at ``jobs=1`` and ``jobs=4``.
"""

import pytest

from repro.checker.annotations import AtomicAnnotations
from repro.errors import TraceError
from repro.obs import MetricsRecorder
from repro.report import READ, WRITE
from repro.runtime import TaskProgram, run_program
from repro.session import CheckSession
from repro.static import lint_function, lint_program, lint_spec
from repro.static.diagnostics import ERROR, RULES, WARNING
from repro.suite import all_cases

# -- module-level task bodies ------------------------------------------------


def _increment(ctx):
    value = ctx.read("counter")
    ctx.write("counter", value + 1)


def _lost_update(ctx):
    ctx.write("counter", 0)
    ctx.spawn(_increment)
    ctx.spawn(_increment)
    ctx.sync()


def _locked_increment(ctx):
    with ctx.lock("L"):
        value = ctx.read("counter")
        ctx.write("counter", value + 1)


def _locked_update(ctx):
    ctx.write("counter", 0)
    ctx.spawn(_locked_increment)
    ctx.spawn(_locked_increment)
    ctx.sync()


def _serial_only(ctx):
    ctx.write("y", 1)
    ctx.spawn(_reader)
    ctx.sync()
    ctx.write("y", 2)


def _reader(ctx):
    ctx.read("x")


def _dynamic_index(ctx):
    for i in range(3):
        ctx.spawn(lambda c, i=i: c.write(("cell", i), 1))
    ctx.sync()


def _shared_helper(ctx):
    value = ctx.read("shared")
    ctx.write("shared", value + 1)


def _task_via_helper(ctx):
    _shared_helper(ctx)


def _interprocedural_serial(ctx):
    ctx.write("shared", 0)
    ctx.spawn(_task_via_helper)
    ctx.sync()
    ctx.read("shared")


def _grid_sweeper(ctx):
    for i in range(2):
        ctx.write(("grid", i), 1)


def _half_poisoned(ctx):
    ctx.write("safe", 0)
    ctx.write(("grid", 0), 0)
    ctx.spawn(_grid_sweeper)
    ctx.sync()
    ctx.read(("grid", 0))
    ctx.read("safe")


def _suppressed_nonconstant(ctx):
    for i in range(3):
        ctx.write(("cell", i), i)  # repro: ignore[SAV102]


def _blanket_suppressed(ctx):
    for i in range(3):
        ctx.write(("cell", i), i)  # repro: ignore


# -- the lint pass -----------------------------------------------------------


class TestLintCandidates:
    def test_lost_update_flagged_exactly(self):
        report = lint_function(_lost_update)
        assert report.has_errors
        codes = {c.code for c in report.candidates}
        assert codes == {"SAV001"}
        assert {c.location for c in report.candidates} == {"counter"}
        patterns = {c.pattern for c in report.candidates}
        assert patterns <= {"RWR", "RWW", "WRW", "WWR", "WWW"}

    def test_lock_protection_suppresses_candidates(self):
        report = lint_function(_locked_update)
        assert not report.candidates
        assert not report.has_errors

    def test_spec_front_end(self):
        spec = (
            "task",
            (
                ("finish", (
                    ("spawn", (
                        ("access", "c", READ),
                        ("access", "c", WRITE),
                    )),
                    ("spawn", (("access", "c", WRITE),)),
                )),
            ),
        )
        report = lint_spec(spec)
        assert report.has_errors
        assert any(c.exact for c in report.candidates)

    def test_serial_program_is_clean_and_provable(self):
        report = lint_function(_serial_only)
        assert not report.diagnostics
        assert report.prefilter_safe
        assert report.prefilter_locations() == frozenset({"x", "y"})

    def test_imprecise_skeleton_disables_prefilter(self):
        report = lint_function(_dynamic_index)
        assert not report.prefilter_safe
        assert report.prefilter_locations() == frozenset()

    def test_report_dict_shape(self):
        data = lint_function(_lost_update).to_dict()
        assert data["counts"]["errors"] >= 1
        assert data["exact_skeleton"] is True
        assert data["candidates"]
        entry = data["candidates"][0]
        assert entry["code"] == "SAV001"
        assert all(code in RULES for d in data["diagnostics"]
                   for code in [d["code"]])

    def test_rule_catalog_is_complete(self):
        assert "SAV001" in RULES and "SAV002" in RULES
        severities = {severity for severity, _ in RULES.values()}
        assert severities <= {ERROR, WARNING, "info"}

    def test_lint_program_accepts_taskprogram(self):
        report = lint_program(TaskProgram(_lost_update, name="lost"))
        assert report.has_errors
        assert "lost" in report.target


class TestLintWorkloads:
    def test_buggy_workloads_have_candidates(self):
        from repro.workloads.buggy import build_swaptions_unlocked

        report = lint_program(build_swaptions_unlocked())
        assert report.has_errors
        assert {c.location for c in report.candidates if c.exact} == {
            ("sum",), ("sum2",)
        }

    def test_clean_workloads_have_no_errors(self):
        from repro.workloads import all_workloads

        for spec in all_workloads():
            report = lint_program(spec.build(spec.test_scale))
            assert not report.has_errors, (
                f"{spec.name}: {[d.describe() for d in report.errors]}"
            )


# -- interprocedural exactness (ISSUE acceptance scenario 1) -----------------


class TestInterprocedural:
    def test_spawned_helper_analyzes_exactly(self):
        """A spawned body calling a module-level helper: no SAV101."""
        report = lint_function(_interprocedural_serial)
        assert not any(d.code == "SAV101" for d in report.diagnostics), [
            d.describe() for d in report.diagnostics
        ]
        assert report.prefilter_safe
        assert report.prefilter_locations() == frozenset({"shared"})

    def test_callgraph_stats_surface(self):
        report = lint_function(_interprocedural_serial)
        stats = report.callgraph_stats()
        assert stats is not None
        assert stats["functions"] >= 3  # root + task + helper
        assert stats["unresolved_calls"] == 0
        assert report.to_dict()["callgraph"] == stats
        assert "call graph:" in report.describe()

    def test_dynamic_equivalence_under_prefilter(self):
        baseline = CheckSession(TaskProgram(_interprocedural_serial)).check()
        session = CheckSession(TaskProgram(_interprocedural_serial))
        filtered = session.check(static_prefilter=True)
        assert set(filtered.locations()) == set(baseline.locations())
        assert session.prefilter_info["applied"]


# -- per-location poisoning (ISSUE acceptance scenario 2) --------------------


class TestPerLocationPoisoning:
    def test_untainted_location_still_proven(self):
        """One imprecise location must not cost the proven-serial ones."""
        report = lint_function(_half_poisoned)
        assert not report.prefilter_safe  # skeleton as a whole is imprecise
        assert "safe" in report.prefilter_locations()
        assert ("grid", 0) in report.poisoned_locations
        reasons = report.poisoned_locations[("grid", 0)]
        assert any("imprecise access" in reason for reason in reasons)

    def test_report_shapes_carry_the_split(self):
        report = lint_function(_half_poisoned)
        data = report.to_dict()
        assert data["prefilter"]["proven"] == ["'safe'"]
        assert list(data["prefilter"]["poisoned"]) == ["('grid', 0)"]
        assert "poisoned location" in report.describe()

    def test_partial_prefilter_applies_with_counters(self):
        recorder = MetricsRecorder()
        session = CheckSession(TaskProgram(_half_poisoned), recorder=recorder)
        baseline = CheckSession(TaskProgram(_half_poisoned)).check()
        filtered = session.check(static_prefilter=True)
        assert set(filtered.locations()) == set(baseline.locations())
        info = session.prefilter_info
        assert info["applied"]
        assert info["locations"] == ["'safe'"] or "safe" in str(info["locations"])
        counters = recorder.snapshot().counters
        assert counters["static.prefilter.proven"] == 1
        assert counters["static.prefilter.poisoned"] == 1
        assert counters["static.prefilter.dropped_events"] == 2  # W+R on "safe"


# -- suppression comments ----------------------------------------------------


class TestSuppressions:
    def test_code_specific_suppression(self):
        report = lint_function(_suppressed_nonconstant)
        assert not any(d.code == "SAV102" for d in report.diagnostics)
        assert [d.code for d in report.suppressed] == ["SAV102"]
        assert report.to_dict()["counts"]["suppressed"] == 1
        assert "[suppressed]" in report.describe()

    def test_blanket_suppression(self):
        report = lint_function(_blanket_suppressed)
        assert not any(d.code == "SAV102" for d in report.diagnostics)
        assert [d.code for d in report.suppressed] == ["SAV102"]

    def test_suppression_does_not_unpoison(self):
        """Silencing the diagnostic must not re-enable the prefilter:
        suppression is about reporting, the imprecision still stands."""
        report = lint_function(_suppressed_nonconstant)
        assert not report.prefilter_safe
        assert report.prefilter_locations() == frozenset()


# -- SARIF export ------------------------------------------------------------


class TestSarifExport:
    def test_log_shape(self):
        from repro.static import report_to_sarif

        log = report_to_sarif(lint_function(_lost_update))
        assert log["version"] == "2.1.0"
        assert "sarif-schema" in log["$schema"] or "sarif" in log["$schema"]
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert set(RULES) == rule_ids
        results = run["results"]
        assert results
        assert all(r["ruleId"] in rule_ids for r in results)
        assert {r["level"] for r in results} <= {"error", "warning", "note"}

    def test_results_carry_locations(self):
        from repro.static import report_to_sarif

        log = report_to_sarif(lint_function(_lost_update))
        result = log["runs"][0]["results"][0]
        locations = result["locations"]
        assert locations
        physical = locations[0].get("physicalLocation")
        assert physical is None or "artifactLocation" in physical

    def test_suppressed_results_marked_in_source(self):
        from repro.static import report_to_sarif

        log = report_to_sarif(lint_function(_suppressed_nonconstant))
        marked = [
            r for r in log["runs"][0]["results"] if r.get("suppressions")
        ]
        assert marked
        assert marked[0]["suppressions"] == [{"kind": "inSource"}]

    def test_one_run_per_report(self):
        from repro.static import reports_to_sarif

        log = reports_to_sarif(
            [lint_function(_lost_update), lint_function(_serial_only)]
        )
        assert len(log["runs"]) == 2


# -- baselines ---------------------------------------------------------------


class TestBaseline:
    def test_roundtrip_is_quiet(self, tmp_path):
        from repro.static import compare_to_baseline, update_baseline

        path = str(tmp_path / "baseline.json")
        reports = [lint_function(_lost_update)]
        data = update_baseline(reports, path)
        assert data["schema"] == "repro-lint-baseline/1"
        assert data["findings"]
        new, stale = compare_to_baseline(reports, path)
        assert not new and not stale

    def test_new_findings_detected(self, tmp_path):
        from repro.static import compare_to_baseline, update_baseline

        path = str(tmp_path / "baseline.json")
        update_baseline([lint_function(_serial_only)], path)  # no findings
        new, _ = compare_to_baseline([lint_function(_lost_update)], path)
        assert new
        assert all(d.code == "SAV001" for _, d in new)

    def test_update_merges_per_target(self, tmp_path):
        from repro.static import compare_to_baseline, update_baseline

        path = str(tmp_path / "baseline.json")
        update_baseline([lint_function(_lost_update)], path)
        update_baseline([lint_function(_dynamic_index)], path)
        new, stale = compare_to_baseline([lint_function(_lost_update)], path)
        assert not new and not stale

    def test_fixed_findings_reported_stale(self, tmp_path):
        from repro.static import compare_to_baseline, update_baseline

        path = str(tmp_path / "baseline.json")
        report = lint_function(_lost_update)
        update_baseline([report], path)
        clean = lint_function(_locked_update, target=report.target)
        new, stale = compare_to_baseline([clean], path)
        assert not new
        assert stale  # the SAV001 entries no longer match anything

    def test_missing_baseline_is_actionable(self, tmp_path):
        from repro.static import BaselineError, compare_to_baseline

        with pytest.raises(BaselineError, match="--update-baseline"):
            compare_to_baseline([], str(tmp_path / "missing.json"))


# -- CheckSession integration ------------------------------------------------


class TestSessionLint:
    def test_program_source_lints_and_caches(self):
        session = CheckSession(TaskProgram(_lost_update))
        report = session.lint()
        assert report.has_errors
        assert session.lint() is report

    def test_offline_source_needs_explicit_target(self):
        trace = run_program(TaskProgram(_serial_only), record_trace=True).trace
        session = CheckSession(trace)
        with pytest.raises(TraceError, match="program text"):
            session.lint()
        assert session.lint(_serial_only).prefilter_safe

    def test_lint_counters_recorded(self):
        recorder = MetricsRecorder()
        session = CheckSession(TaskProgram(_lost_update), recorder=recorder)
        session.lint()
        counters = recorder.snapshot().counters
        assert counters["static.lint.runs"] == 1
        assert counters["static.lint.errors"] >= 1
        assert counters["static.lint.candidates"] >= 1

    def test_callgraph_counters_recorded(self):
        recorder = MetricsRecorder()
        session = CheckSession(
            TaskProgram(_interprocedural_serial), recorder=recorder
        )
        session.lint()
        counters = recorder.snapshot().counters
        assert counters["static.callgraph.functions"] >= 3
        assert counters["static.callgraph.sccs"] >= 3
        assert counters.get("static.callgraph.unresolved_calls", 0) == 0


class TestPrefilter:
    def test_applied_on_serial_program(self):
        recorder = MetricsRecorder()
        session = CheckSession(TaskProgram(_serial_only), recorder=recorder)
        report = session.check(static_prefilter=True)
        assert not report
        info = session.prefilter_info
        assert info["applied"]
        assert len(info["locations"]) == 2
        counters = recorder.snapshot().counters
        assert counters["static.prefilter.locations"] == 2
        assert counters["static.prefilter.events_skipped"] == 3

    def test_never_silent_when_refused(self):
        recorder = MetricsRecorder()
        session = CheckSession(TaskProgram(_dynamic_index), recorder=recorder)
        session.check(static_prefilter=True)
        info = session.prefilter_info
        assert not info["applied"]
        assert "no locations proven" in info["reason"]
        assert recorder.snapshot().counters["static.prefilter.disabled"] == 1

    def test_refused_under_grouped_annotations(self):
        annotations = AtomicAnnotations(check_all=True)
        annotations.annotate_group("pair", ["x", "y"])
        session = CheckSession(
            TaskProgram(_serial_only), annotations=annotations
        )
        session.check(static_prefilter=True)
        assert not session.prefilter_info["applied"]
        assert "annotations" in session.prefilter_info["reason"]

    def test_offline_trace_with_explicit_body(self):
        trace = run_program(TaskProgram(_serial_only), record_trace=True).trace
        session = CheckSession(trace)
        report = session.check(static_prefilter=_serial_only)
        assert not report
        assert session.prefilter_info["applied"]

    def test_violations_never_masked(self):
        baseline = CheckSession(TaskProgram(_lost_update)).check()
        session = CheckSession(TaskProgram(_lost_update))
        filtered = session.check(static_prefilter=True)
        assert set(filtered.locations()) == set(baseline.locations()) == {
            "counter"
        }


# -- acceptance: the 36-program suite ----------------------------------------


CASES = all_cases()


class TestSuiteEquivalence:
    @pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
    def test_prefilter_matches_unfiltered_jobs1(self, case):
        baseline = set(CheckSession(case.build()).check().locations())
        session = CheckSession(case.build())
        filtered = set(session.check(static_prefilter=True).locations())
        assert filtered == baseline
        assert session.prefilter_info["requested"]

    def test_prefilter_matches_unfiltered_jobs4(self):
        for case in CASES:
            baseline = set(
                CheckSession(case.build(), jobs=4).check().locations()
            )
            session = CheckSession(case.build(), jobs=4)
            filtered = set(
                session.check(static_prefilter=True).locations()
            )
            assert filtered == baseline, case.name

    def test_prefilter_actually_fires_somewhere(self):
        """The equivalence above must not hold vacuously: some suite
        cases get locations proven serial and events dropped."""
        fired = 0
        for case in CASES:
            recorder = MetricsRecorder()
            session = CheckSession(case.build(), recorder=recorder)
            session.check(static_prefilter=True)
            info = session.prefilter_info
            if info["applied"] and info["locations"]:
                counters = recorder.snapshot().counters
                if counters.get("static.prefilter.events_skipped", 0):
                    fired += 1
        assert fired >= 3

    def test_skip_accounting_matches_across_jobs(self):
        """events_skipped totals are shard-stable (parent-side for
        in-memory sources, summed worker-side for file streams)."""
        case = next(c for c in CASES if not c.violating)
        totals = []
        for jobs in (1, 4):
            recorder = MetricsRecorder()
            session = CheckSession(
                case.build(), jobs=jobs, recorder=recorder
            )
            session.check(static_prefilter=True)
            totals.append(
                recorder.snapshot().counters.get(
                    "static.prefilter.events_skipped", 0
                )
            )
        assert totals[0] == totals[1]
