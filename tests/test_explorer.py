"""Interleaving explorer: schedule enumeration and the two oracles."""

import pytest

from repro.errors import TraceError
from repro.runtime import SerialExecutor, TaskProgram, run_program
from repro.trace.explore import (
    InterleavingExplorer,
    analytic_violation_locations,
    explore_violation_locations,
    realized_violation_keys,
)
from repro.trace.trace import Trace


def record(body, initial=None):
    program = TaskProgram(body, initial_memory=initial or {})
    return run_program(program, record_trace=True).trace


class TestEnumeration:
    def test_two_independent_singletons(self):
        def a(ctx):
            ctx.write("X", 1)

        def b(ctx):
            ctx.write("Y", 1)

        def main(ctx):
            ctx.spawn(a)
            ctx.spawn(b)
            ctx.sync()

        explorer = InterleavingExplorer(record(main))
        schedules = explorer.schedules()
        assert len(schedules) == 2  # the two orders of two events
        assert not explorer.truncated

    def test_series_is_single_schedule(self):
        def a(ctx):
            ctx.write("X", 1)

        def main(ctx):
            ctx.spawn(a)
            ctx.sync()
            ctx.spawn(a)
            ctx.sync()

        schedules = InterleavingExplorer(record(main)).schedules()
        assert len(schedules) == 1

    def test_interleaving_counts(self):
        """Two parallel steps of 2 ops each: C(4,2) = 6 interleavings."""

        def two_ops(ctx, tag):
            ctx.write((tag, 0), 1)
            ctx.write((tag, 1), 1)

        def main(ctx):
            ctx.spawn(two_ops, "a")
            ctx.spawn(two_ops, "b")
            ctx.sync()

        schedules = InterleavingExplorer(record(main)).schedules()
        assert len(schedules) == 6

    def test_schedule_respects_program_order(self):
        def two_ops(ctx, tag):
            ctx.write((tag, 0), 1)
            ctx.write((tag, 1), 1)

        def main(ctx):
            ctx.spawn(two_ops, "a")
            ctx.spawn(two_ops, "b")
            ctx.sync()

        for schedule in InterleavingExplorer(record(main)).schedules():
            per_tag = {}
            for event in schedule:
                per_tag.setdefault(event.location[0], []).append(event.location[1])
            assert per_tag["a"] == [0, 1]
            assert per_tag["b"] == [0, 1]

    def test_truncation_flag(self):
        def many(ctx, i):
            ctx.write(("X", i), 1)

        def main(ctx):
            for i in range(6):
                ctx.spawn(many, i)
            ctx.sync()

        explorer = InterleavingExplorer(record(main), max_schedules=5)
        schedules = explorer.schedules()
        assert len(schedules) == 5
        assert explorer.truncated

    def test_requires_dpst(self):
        with pytest.raises(TraceError):
            InterleavingExplorer(Trace([], dpst=None))


class TestLockExclusion:
    def test_lock_blocks_interleaving(self):
        """Both tasks' ops inside one CS of L: no mixed schedule exists."""

        def locked_pair(ctx, tag):
            with ctx.lock("L"):
                ctx.write((tag, 0), 1)
                ctx.write((tag, 1), 1)

        def main(ctx):
            ctx.spawn(locked_pair, "a")
            ctx.spawn(locked_pair, "b")
            ctx.sync()

        schedules = InterleavingExplorer(record(main)).schedules()
        # Only the two all-a-then-all-b orders survive mutual exclusion.
        assert len(schedules) == 2

    def test_different_locks_do_not_exclude(self):
        def locked_pair(ctx, tag, lock):
            with ctx.lock(lock):
                ctx.write((tag, 0), 1)
                ctx.write((tag, 1), 1)

        def main(ctx):
            ctx.spawn(locked_pair, "a", "L")
            ctx.spawn(locked_pair, "b", "M")
            ctx.sync()

        schedules = InterleavingExplorer(record(main)).schedules()
        assert len(schedules) == 6


class TestRealizedKeys:
    def test_detects_physical_interleaving(self):
        def rmw(ctx):
            value = ctx.read("X")
            ctx.write("X", value + 1)

        def writer(ctx):
            ctx.write("X", 9)

        def main(ctx):
            ctx.spawn(rmw)
            ctx.spawn(writer)
            ctx.sync()

        trace = record(main)
        explorer = InterleavingExplorer(trace)
        keys = set()
        for schedule in explorer.schedules():
            keys |= realized_violation_keys(schedule)
        assert keys == {"X"}

    def test_serial_schedule_realizes_nothing(self):
        def rmw(ctx):
            value = ctx.read("X")
            ctx.write("X", value + 1)

        def main(ctx):
            ctx.spawn(rmw)
            ctx.sync()
            ctx.spawn(rmw)
            ctx.sync()

        trace = record(main)
        assert explore_violation_locations(trace) == set()


class TestAnalyticOracle:
    def test_agrees_on_simple_violation(self):
        def rmw(ctx):
            value = ctx.read("X")
            ctx.write("X", value + 1)

        def main(ctx):
            ctx.spawn(rmw)
            ctx.spawn(rmw)
            ctx.sync()

        trace = record(main)
        assert analytic_violation_locations(trace) == {"X"}
        assert explore_violation_locations(trace) == {"X"}

    def test_lock_window_blocks_interleaver(self):
        """Pair inside one CS, interleaver takes the same lock: safe."""

        def locked_rmw(ctx):
            with ctx.lock("L"):
                value = ctx.read("X")
                ctx.write("X", value + 1)

        def locked_writer(ctx):
            with ctx.lock("L"):
                ctx.write("X", 9)

        def main(ctx):
            ctx.spawn(locked_rmw)
            ctx.spawn(locked_writer)
            ctx.sync()

        trace = record(main)
        assert analytic_violation_locations(trace) == set()
        assert explore_violation_locations(trace) == set()

    def test_rogue_interleaver_found_by_both_oracles(self):
        """Pair in one CS but the writer ignores the lock: the oracles see
        the violation (the checkers intentionally do not -- Section 3.3)."""

        def locked_rmw(ctx):
            with ctx.lock("L"):
                value = ctx.read("X")
                ctx.write("X", value + 1)

        def rogue(ctx):
            ctx.write("X", 9)

        def main(ctx):
            ctx.spawn(locked_rmw)
            ctx.spawn(rogue)
            ctx.sync()

        trace = record(main)
        assert analytic_violation_locations(trace) == {"X"}
        assert explore_violation_locations(trace) == {"X"}
