"""Benchmark harness plumbing: measurement, rendering, module smoke runs."""

import pytest

from repro.bench.harness import Measurement, geometric_mean, measure, run_once
from repro.bench.reporting import format_count, render_bars, render_table
from repro.bench import ablation, fig13, fig14, table1
from repro.workloads import get


class TestGeometricMean:
    def test_known_values(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0


class TestFormatting:
    def test_format_count(self):
        assert format_count(None) == "-NA-"
        assert format_count(0) == "0"
        assert format_count(1_352) == "1,352"
        assert format_count(9_870_000) == "9.87M"
        assert format_count(56.32) == "56.32"

    def test_render_table_alignment(self):
        text = render_table(["a", "bee"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert set(lines[2]) == {"-"}

    def test_render_bars(self):
        text = render_bars([("g1", [("x", 2.0), ("y", 1.0)])], unit="x")
        assert "g1" in text
        assert "2.00x" in text
        assert "#" in text


class TestMeasure:
    def test_baseline_has_no_dpst(self):
        result = run_once(get("sort").build(1), "baseline")
        assert result.dpst is None
        assert not result.report()

    def test_checker_config_collects_stats(self):
        m = measure(get("sort"), "optimized", scale=1, repeats=1)
        assert m.workload == "sort"
        assert m.elapsed > 0
        assert m.dpst_nodes > 0
        assert m.lca_queries > 0
        assert m.violations == 0
        assert m.unique_lca_percent is not None

    def test_baseline_measurement(self):
        m = measure(get("sort"), "baseline", scale=1, repeats=2)
        assert m.lca_queries == 0
        assert m.unique_lca_percent is None
        assert len(m.runs) == 2

    def test_layout_and_cache_options(self):
        linked = measure(get("sort"), "optimized", scale=1, repeats=1,
                         dpst_layout="linked")
        uncached = measure(get("sort"), "optimized", scale=1, repeats=1,
                           lca_cache=False)
        assert linked.violations == 0
        assert uncached.violations == 0


class TestExperimentModules:
    """Smoke runs at scale 1 x 1 repeat: each module produces its artifact."""

    def test_table1(self):
        rows = table1.collect(scale=1, repeats=1)
        assert len(rows) == 13
        text = table1.render(rows)
        assert "blackscholes" in text and "paper" in text
        blackscholes = next(r for r in rows if r.workload == "blackscholes")
        assert blackscholes.lca_queries == 0

    def test_fig13(self):
        rows = fig13.collect(scale=1, repeats=1)
        assert len(rows) == 13
        # Checking is never free, but single-round timings of
        # sub-millisecond baselines are noisy: assert per-row sanity
        # loosely and the aggregate trend firmly.
        for row in rows:
            assert row.optimized_slowdown > 0.5
        slowdowns = [row.optimized_slowdown for row in rows]
        assert geometric_mean(slowdowns) > 1.5
        text = fig13.render(rows)
        assert "geomean" in text and "velodrome" in text

    def test_fig14(self):
        rows = fig14.collect(scale=1, repeats=1)
        assert len(rows) == 13
        text = fig14.render(rows)
        assert "array-DPST" in text and "linked-DPST" in text

    def test_ablation_lca_cache(self):
        rows = ablation.collect_lca_cache(scale=1, repeats=1)
        assert len(rows) == 13
        assert "cache speedup" in ablation.render_lca_cache(rows)

    def test_ablation_metadata(self):
        rows = ablation.collect_metadata(scale=1)
        assert len(rows) == 13
        for row in rows:
            # The paper's headline metadata claim, measured:
            assert row.optimized_max_per_location <= 12
            assert row.basic_entries >= row.accesses * 0  # defined
        text = ablation.render_metadata(rows)
        assert "opt max/loc" in text


class TestFullReport:
    def test_build_report_contains_all_sections(self):
        from repro.bench.report import build_report

        report = build_report(scale=1, repeats=1)
        for section in (
            "## Detection",
            "## Table 1",
            "## Figure 13",
            "## Figure 14",
            "## Ablation: LCA cache",
            "## Ablation: metadata",
        ):
            assert section in report
        assert "violation suite: 36/36 exact" in report

    def test_detection_summary_failure_injection(self):
        from repro.bench.report import detection_summary

        text = detection_summary()
        assert "failure injection" in text
        assert "kmeans_unlocked_reduction" in text
        assert "IMPRECISE" not in text
