"""Velodrome + interleaving exploration (the paper's required combination).

Demonstrates the Section 4 argument quantitatively: the combination can
match the optimized checker's verdict, but only by exploring many
schedules of the recorded trace.
"""

import pytest

from repro.checker import ExploringVelodrome, OptAtomicityChecker, VelodromeChecker
from repro.runtime import SerialExecutor, TaskProgram, run_program


def rmw_vs_writer():
    def rmw(ctx):
        value = ctx.read("X")
        ctx.write("X", value + 1)

    def writer(ctx):
        ctx.write("X", 100)

    def main(ctx):
        ctx.spawn(rmw)
        ctx.spawn(writer)
        ctx.sync()

    return TaskProgram(main)


class TestFindsHiddenViolations:
    def test_plain_velodrome_misses_exploring_finds(self):
        plain = run_program(rmw_vs_writer(), observers=[VelodromeChecker()])
        assert not plain.report()

        exploring = ExploringVelodrome()
        run_program(rmw_vs_writer(), observers=[exploring])
        assert exploring.violation_locations() == {"X"}

    def test_matches_optimized_checker(self):
        exploring = ExploringVelodrome()
        optimized = OptAtomicityChecker()
        run_program(rmw_vs_writer(), observers=[exploring, optimized])
        assert exploring.violation_locations() == set(
            optimized.report.locations()
        )

    def test_explores_multiple_schedules(self):
        exploring = ExploringVelodrome()
        run_program(rmw_vs_writer(), observers=[exploring])
        # 3 memory events, 2 steps: 3 distinct interleavings.
        assert exploring.schedules_explored == 3
        assert not exploring.truncated

    def test_safe_program_stays_quiet(self):
        def rmw(ctx):
            value = ctx.read("X")
            ctx.write("X", value + 1)

        def main(ctx):
            ctx.spawn(rmw)
            ctx.sync()
            ctx.spawn(rmw)
            ctx.sync()

        exploring = ExploringVelodrome()
        run_program(TaskProgram(main), observers=[exploring])
        assert not exploring.report
        assert exploring.schedules_explored == 1


class TestCost:
    def test_schedule_count_grows_fast(self):
        """The quantity the paper's comparison hinges on."""

        def writer(ctx, i):
            ctx.write("X", i)

        def main(ctx):
            for i in range(5):
                ctx.spawn(writer, i)
            ctx.sync()

        exploring = ExploringVelodrome(max_schedules=500)
        run_program(TaskProgram(main), observers=[exploring])
        # 5 parallel single-write steps: 5! = 120 schedules, explored in
        # full -- versus the optimized checker's single pass.
        assert exploring.schedules_explored == 120

    def test_truncation_respected(self):
        def writer(ctx, i):
            ctx.write("X", i)

        def main(ctx):
            for i in range(6):
                ctx.spawn(writer, i)
            ctx.sync()

        exploring = ExploringVelodrome(max_schedules=50)
        run_program(TaskProgram(main), observers=[exploring])
        assert exploring.schedules_explored == 50
        assert exploring.truncated

    def test_lock_protected_program_with_locks_in_trace(self):
        def bump(ctx):
            with ctx.lock("L"):
                ctx.add("X", 1)

        def main(ctx):
            ctx.spawn(bump)
            ctx.spawn(bump)
            ctx.sync()

        exploring = ExploringVelodrome()
        run_program(TaskProgram(main), observers=[exploring])
        # Mutual exclusion leaves only the two serial orders.
        assert exploring.schedules_explored == 2
        assert not exploring.report


class TestFactory:
    def test_make_checker_names(self):
        from repro.checker import make_checker

        assert isinstance(make_checker("velodrome+explorer"), ExploringVelodrome)
        from repro.checker import RaceDetector

        assert isinstance(make_checker("racedetector"), RaceDetector)
        with pytest.raises(ValueError):
            make_checker("psychic")
