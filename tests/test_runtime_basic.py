"""TaskContext semantics: memory ops, spawn/sync, finish, locks, errors."""

import pytest

from repro.errors import RuntimeUsageError
from repro.runtime import SerialExecutor, TaskProgram, run_program
from repro.runtime.program import check_program


class TestMemoryOps:
    def test_values_flow_through_shared_memory(self):
        def main(ctx):
            ctx.write("X", 10)
            return ctx.read("X") + 1

        assert run_program(TaskProgram(main)).value == 11

    def test_update_and_add(self):
        def main(ctx):
            ctx.write("X", 10)
            ctx.update("X", lambda v: v * 2)
            ctx.add("X", 5)
            return ctx.read("X")

        assert run_program(TaskProgram(main)).value == 25

    def test_initial_memory(self):
        def main(ctx):
            return ctx.read(("arr", 2))

        program = TaskProgram(main, initial_memory={("arr", 2): 7})
        assert run_program(program).value == 7

    def test_default_read_is_zero(self):
        def main(ctx):
            return ctx.read("never_written")

        assert run_program(TaskProgram(main)).value == 0


class TestSpawnSync:
    def test_child_result_visible_after_sync(self):
        def child(ctx):
            ctx.write("out", 99)

        def main(ctx):
            ctx.spawn(child)
            ctx.sync()
            return ctx.read("out")

        assert run_program(TaskProgram(main)).value == 99

    def test_spawn_args_and_kwargs(self):
        def child(ctx, a, b=0):
            ctx.write("out", a + b)

        def main(ctx):
            ctx.spawn(child, 3, b=4)
            ctx.sync()
            return ctx.read("out")

        assert run_program(TaskProgram(main)).value == 7

    def test_task_ids_unique(self):
        seen = []

        def child(ctx):
            seen.append(ctx.task_id)

        def main(ctx):
            seen.append(ctx.task_id)
            for _ in range(3):
                ctx.spawn(child)
            ctx.sync()

        run_program(TaskProgram(main))
        assert len(set(seen)) == 4
        assert seen[0] == 0

    def test_depth(self):
        depths = []

        def grandchild(ctx):
            depths.append(ctx.depth)

        def child(ctx):
            depths.append(ctx.depth)
            ctx.spawn(grandchild)
            ctx.sync()

        def main(ctx):
            depths.append(ctx.depth)
            ctx.spawn(child)
            ctx.sync()

        run_program(TaskProgram(main))
        assert sorted(depths) == [0, 1, 2]

    def test_implicit_sync_at_task_end(self):
        def child(ctx):
            ctx.write("out", 1)

        def main(ctx):
            ctx.spawn(child)
            # no explicit sync: the task must still wait for its child

        result = run_program(TaskProgram(main))
        assert result.shadow.peek("out") == 1

    def test_sync_without_spawn_is_noop(self):
        def main(ctx):
            ctx.sync()
            ctx.sync()
            return 1

        assert run_program(TaskProgram(main)).value == 1

    def test_nested_spawns(self):
        def leaf(ctx, i):
            ctx.write(("out", i), i * i)

        def mid(ctx, base):
            for i in range(2):
                ctx.spawn(leaf, base + i)
            ctx.sync()

        def main(ctx):
            ctx.spawn(mid, 0)
            ctx.spawn(mid, 2)
            ctx.sync()
            return sum(ctx.read(("out", i)) for i in range(4))

        assert run_program(TaskProgram(main)).value == 0 + 1 + 4 + 9


class TestFinish:
    def test_finish_block_waits(self):
        def child(ctx):
            ctx.write("out", 5)

        def main(ctx):
            with ctx.finish():
                ctx.spawn(child)
            return ctx.read("out")

        assert run_program(TaskProgram(main)).value == 5

    def test_nested_finish(self):
        def child(ctx, i):
            ctx.write(("out", i), 1)

        def main(ctx):
            with ctx.finish():
                ctx.spawn(child, 0)
                with ctx.finish():
                    ctx.spawn(child, 1)
                ctx.spawn(child, 2)
            return sum(ctx.read(("out", i)) for i in range(3))

        assert run_program(TaskProgram(main)).value == 3


class TestLocks:
    def test_lock_context_manager(self):
        def main(ctx):
            with ctx.lock("L"):
                assert ctx.locked("L")
                ctx.write("X", 1)
            assert not ctx.locked("L")
            return ctx.read("X")

        assert run_program(TaskProgram(main)).value == 1

    def test_release_unheld_raises(self):
        def main(ctx):
            ctx.release("L")

        with pytest.raises(RuntimeUsageError):
            run_program(TaskProgram(main))

    def test_double_acquire_raises(self):
        def main(ctx):
            ctx.acquire("L")
            ctx.acquire("L")

        with pytest.raises(RuntimeUsageError):
            run_program(TaskProgram(main))


class TestProgramWrapper:
    def test_bare_function_accepted(self):
        def main(ctx):
            return 42

        assert run_program(main).value == 42

    def test_program_name_defaults_to_function_name(self):
        def my_program(ctx):
            return None

        assert TaskProgram(my_program).name == "my_program"

    def test_program_args(self):
        def main(ctx, n, offset=0):
            return n + offset

        program = TaskProgram(main, args=(10,), kwargs={"offset": 5})
        assert run_program(program).value == 15

    def test_check_program_helper(self):
        def child(ctx):
            ctx.add("X", 1)

        def main(ctx):
            ctx.spawn(child)
            ctx.spawn(child)
            ctx.sync()

        # The deprecated shim still works, but says so.
        with pytest.warns(DeprecationWarning, match="CheckSession"):
            report = check_program(main)
        assert report
        assert report.locations() == ["X"]

    def test_exceptions_propagate(self):
        def main(ctx):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_program(TaskProgram(main))

    def test_child_exception_propagates_serial(self):
        def child(ctx):
            raise KeyError("child went wrong")

        def main(ctx):
            ctx.spawn(child)
            ctx.sync()

        with pytest.raises(KeyError):
            run_program(TaskProgram(main))
