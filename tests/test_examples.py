"""The shipped examples run end to end and say what they claim to say.

Each example is executed as a subprocess (its real usage mode) and its
output is checked for the headline facts the docstring promises.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, fragments that must appear in stdout)
EXPECTATIONS = {
    "quickstart.py": [
        "Atomicity violation on location 'counter'",
        "velodrome (this trace only):",
        "no violations",
    ],
    "paper_example.py": [
        "DPST (cf. Figure 2):",
        "pattern RWW",
        "{L#1}",            # lock versioning visible in the Fig. 11 report
    ],
    "bank_transfer.py": [
        "misses the torn snapshot",
        "('group', 'account')",
    ],
    "lock_versioning.py": [
        "split critical sections (buggy)",
        "single critical section (correct)",
        "no violations",
    ],
    "kmeans_audit.py": [
        "shipped kmeans kernel: no violations",
        "identical verdict under every executor",
    ],
    "races_vs_atomicity.py": [
        "data race",
        "no data races",
        "schedules",
    ],
    "coverage_guarantee.py": [
        "guarantee STANDS",
        "guarantee VOID",
        "MISSING",
    ],
    "pipeline_audit.py": [
        "unprotected running max",
        "locked running max",
        "no violations",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS), ids=lambda s: s)
def test_example_runs_and_reports(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for fragment in EXPECTATIONS[script]:
        assert fragment in completed.stdout, (script, fragment)


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTATIONS)
