"""The version-gated memoization must never change verdicts.

The optimized checker skips re-running a candidate-check branch when the
global space is unchanged since the step last ran it (GlobalSpace.version
stamps in LocalCell).  These tests pin the safety property the skip rests
on: whenever the space *does* change in a way that could produce a new
triple, the next access re-checks and reports.
"""

import pytest

from repro.checker import OptAtomicityChecker
from repro.dpst import ArrayDPST, NodeKind, ROOT_ID
from repro.report import READ, WRITE
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events


def mem(seq, task, step, loc, access, lockset=()):
    return MemoryEvent(seq, task, step, loc, access, lockset)


def three_parallel_steps():
    """Root finish with three async/step pairs: all steps parallel."""
    tree = ArrayDPST()
    steps = []
    for _ in range(3):
        async_node = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        steps.append(tree.add_node(async_node, NodeKind.STEP))
    return tree, steps


class TestRecheckAfterSpaceChange:
    def test_new_write_single_triggers_recheck_on_next_access(self):
        """Step A reads twice (candidate checked against empty singles),
        a parallel write lands, then A reads a third time: the re-formed
        candidate must now be checked against the new W1 and report."""
        tree, (a, b, _) = three_parallel_steps()
        events = [
            mem(0, 1, a, "X", READ),
            mem(1, 1, a, "X", READ),    # candidate RR checked: no writes yet
            mem(2, 2, b, "X", WRITE),   # space changes: W1 = b
            mem(3, 1, a, "X", READ),    # must re-check: (R, W, R)
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert set(checker.report.locations()) == {"X"}

    def test_unchanged_space_skip_does_not_lose_reports(self):
        """Hammering the same access pattern with no space change in
        between neither re-reports nor misses anything."""
        tree, (a, b, _) = three_parallel_steps()
        events = [
            mem(0, 2, b, "X", WRITE),
            mem(1, 1, a, "X", READ),
            mem(2, 1, a, "X", READ),    # reports (R, W, R) via W1
            mem(3, 1, a, "X", READ),    # gated: identical check skipped
            mem(4, 1, a, "X", READ),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1

    def test_write_after_reads_rechecks_other_kind(self):
        """Gating is per pattern kind: a skipped RR branch must not gate
        the RW branch of a later write."""
        tree, (a, b, _) = three_parallel_steps()
        events = [
            mem(0, 2, b, "X", WRITE),   # W1 = b
            mem(1, 1, a, "X", READ),
            mem(2, 1, a, "X", READ),    # RR candidate: (R,W,R) reported
            mem(3, 1, a, "X", WRITE),   # RW candidate: (R,W,W) must report too
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        patterns = {v.pattern for v in checker.report.violations}
        assert "RWR" in patterns
        assert "RWW" in patterns

    def test_lockset_change_after_gate(self):
        """A gated step whose earlier candidate ran can later form a
        candidate with a *different* lockset; gating must not suppress a
        candidate that previously could not form at all."""
        tree, (a, b, _) = three_parallel_steps()
        events = [
            # First read and second read share a critical section: no
            # candidate forms (locks not disjoint), nothing to gate.
            mem(0, 1, a, "X", READ, ("L",)),
            mem(1, 1, a, "X", READ, ("L",)),
            mem(2, 2, b, "X", WRITE),          # W1 = b
            # Lock released and re-acquired: now disjoint with the first
            # read, candidate forms and must be checked.
            mem(3, 1, a, "X", READ, ("L#1",)),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert set(checker.report.locations()) == {"X"}

    def test_gating_stays_within_documented_semantics(self):
        """Differential on every prefix of a busy stream: gated paper mode
        is always a subset of thorough mode, and any gap is the documented
        Figure 9 omission (paper mode defers the verdict until a first
        access by some step re-checks the stored pattern), never an effect
        of the version gating: by the final event the modes agree here."""
        tree, (a, b, c) = three_parallel_steps()
        stream = [
            mem(0, 1, a, "X", READ),
            mem(1, 1, a, "X", READ),
            mem(2, 2, b, "X", READ),
            mem(3, 2, b, "X", WRITE),   # Fig. 9 path: paper defers RWR here
            mem(4, 3, c, "X", WRITE),   # first access by c: paper catches up
            mem(5, 1, a, "X", WRITE),
            mem(6, 3, c, "X", READ),
            mem(7, 2, b, "X", READ),
        ]
        for prefix_len in range(1, len(stream) + 1):
            gated = OptAtomicityChecker()
            replay_memory_events(stream[:prefix_len], gated, dpst=tree)
            fresh = OptAtomicityChecker(mode="thorough")
            replay_memory_events(stream[:prefix_len], fresh, dpst=tree)
            assert set(gated.report.locations()) <= set(fresh.report.locations())
        final_gated = OptAtomicityChecker()
        replay_memory_events(stream, final_gated, dpst=tree)
        final_fresh = OptAtomicityChecker(mode="thorough")
        replay_memory_events(stream, final_fresh, dpst=tree)
        assert set(final_gated.report.locations()) == set(
            final_fresh.report.locations()
        )


class TestVersionCounterSemantics:
    def test_version_survives_dropped_updates(self):
        """An access that changes nothing must not bump the version (else
        gating would degrade to never-skip)."""
        from repro.checker.metadata import GlobalSpace
        from repro.checker.access import AccessEntry

        space = GlobalSpace()
        parallel = lambda x, y: True
        space.update_single("R", AccessEntry(1, READ), parallel)
        space.update_single("R", AccessEntry(2, READ), parallel)
        version = space.version
        space.update_single("R", AccessEntry(3, READ), parallel)  # dropped
        assert space.version == version
