"""Unit and integration tests for :mod:`repro.obs`.

Covers the value types (Histogram, SpanStats, MetricsSnapshot merge
semantics), the Recorder protocol (no-op default vs the collecting
MetricsRecorder, span path nesting, shard attachment), the pipeline
integration points (replay, CheckSession, RunResult), the metric name
registry, and the CLI surface (``--metrics`` and ``repro stats``).
"""

import json
import warnings

import pytest

from repro.checker import OptAtomicityChecker
from repro.dpst import EngineStats, LabelEngine, LCAEngine, LCAStats
from repro.obs import (
    METRIC_NAMES,
    METRICS_SCHEMA,
    NULL_RECORDER,
    SHARD_SENSITIVE_METRICS,
    Histogram,
    MetricsRecorder,
    MetricsSnapshot,
    Recorder,
    SpanStats,
    comparable_counters,
    flush_engine_stats,
    flush_observer_metrics,
    is_metrics_dict,
)
from repro.runtime import TaskProgram, run_program
from repro.session import CheckSession
from repro.trace.replay import replay_trace


def counter_program():
    """Two parallel unprotected increments: one guaranteed violation."""

    def increment(ctx):
        value = ctx.read("counter")
        ctx.write("counter", value + 1)

    def main(ctx):
        ctx.write("counter", 0)
        ctx.spawn(increment)
        ctx.spawn(increment)
        ctx.sync()

    return TaskProgram(main, name="obs-counter")


# -- value types -------------------------------------------------------------


class TestHistogram:
    def test_moments_are_exact(self):
        hist = Histogram()
        for value in (1.0, 2.0, 7.0, 0.5):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(10.5)
        assert hist.min == 0.5
        assert hist.max == 7.0
        assert hist.mean == pytest.approx(10.5 / 4)

    def test_merge_is_bucketwise(self):
        left, right = Histogram(), Histogram()
        left.observe(1.0)
        left.observe(3.0)
        right.observe(3.5)
        right.observe(100.0)
        left.merge(right)
        assert left.count == 4
        assert left.min == 1.0 and left.max == 100.0
        # 3.0 and 3.5 share the [2, 4) bucket.
        assert sum(left.buckets.values()) == 4
        assert max(left.buckets.values()) == 2

    def test_dict_round_trip(self):
        hist = Histogram()
        for value in (0.0, 0.25, 8.0):
            hist.observe(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_empty_histogram_mean(self):
        assert Histogram().mean == 0.0


class TestSpanStats:
    def test_record_and_merge(self):
        span = SpanStats("check/replay")
        span.record(0.5)
        span.record(1.5)
        other = SpanStats("check/replay")
        other.record(0.1)
        span.merge(other)
        assert span.count == 3
        assert span.total_s == pytest.approx(2.1)
        assert span.min_s == 0.1 and span.max_s == 1.5

    def test_dict_round_trip(self):
        span = SpanStats("replay")
        span.record(0.25)
        assert SpanStats.from_dict(span.to_dict()) == span


class TestMetricsSnapshot:
    def sample(self, counter=3, gauge=5.0):
        snapshot = MetricsSnapshot()
        snapshot.counters["trace.events.routed"] = counter
        snapshot.gauges["dpst.nodes"] = gauge
        hist = Histogram()
        hist.observe(2.0)
        snapshot.histograms["lat"] = hist
        span = SpanStats("replay")
        span.record(0.5)
        snapshot.spans["replay"] = span
        return snapshot

    def test_merge_counters_sum_gauges_max(self):
        merged = MetricsSnapshot.merge(
            [self.sample(counter=3, gauge=5.0), self.sample(counter=4, gauge=2.0)]
        )
        assert merged.counters["trace.events.routed"] == 7
        assert merged.gauges["dpst.nodes"] == 5.0
        assert merged.histograms["lat"].count == 2
        assert merged.spans["replay"].count == 2

    def test_json_round_trip(self, tmp_path):
        snapshot = self.sample()
        snapshot.shards = [{"shard": 0, "counters": {"x": 1}}]
        path = str(tmp_path / "m.json")
        snapshot.dump(path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["schema"] == METRICS_SCHEMA
        assert is_metrics_dict(data)
        clone = MetricsSnapshot.load(path)
        assert clone.counters == snapshot.counters
        assert clone.gauges == snapshot.gauges
        assert clone.spans["replay"] == snapshot.spans["replay"]
        assert clone.shards == snapshot.shards

    def test_bool_and_detection(self):
        assert not MetricsSnapshot()
        assert self.sample()
        assert not is_metrics_dict({"schema": "something-else"})
        assert not is_metrics_dict([1, 2, 3])


# -- the Recorder protocol ---------------------------------------------------


class TestNullRecorder:
    def test_everything_is_a_cheap_no_op(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.count("x")
        NULL_RECORDER.gauge("x", 1.0)
        NULL_RECORDER.observe("x", 1.0)
        NULL_RECORDER.add_shard(0, {})
        with NULL_RECORDER.span("phase"):
            pass
        assert NULL_RECORDER.counter_value("x") == 0
        assert not NULL_RECORDER.snapshot()

    def test_null_recorder_is_base_class_instance(self):
        assert type(NULL_RECORDER) is Recorder

    def test_flush_helpers_skip_disabled_recorder(self):
        class Exploding:
            def metrics(self):  # pragma: no cover - must never run
                raise AssertionError("flushed into a disabled recorder")

        flush_observer_metrics(NULL_RECORDER, Exploding())
        flush_engine_stats(NULL_RECORDER, None)


class TestMetricsRecorder:
    def test_counters_gauges_histograms(self):
        recorder = MetricsRecorder()
        recorder.count("c")
        recorder.count("c", 4)
        recorder.gauge("g", 2.0)
        recorder.gauge("g", 9.0)
        recorder.observe("h", 1.0)
        assert recorder.counter_value("c") == 5
        snapshot = recorder.snapshot()
        assert snapshot.counters == {"c": 5}
        assert snapshot.gauges == {"g": 9.0}  # gauge keeps last set value
        assert snapshot.histograms["h"].count == 1

    def test_span_paths_nest(self):
        recorder = MetricsRecorder()
        with recorder.span("check"):
            with recorder.span("replay"):
                pass
            with recorder.span("replay"):
                pass
        spans = recorder.snapshot().spans
        assert set(spans) == {"check", "check/replay"}
        assert spans["check/replay"].count == 2
        assert spans["check"].count == 1
        assert spans["check"].total_s >= spans["check/replay"].total_s

    def test_snapshot_is_a_copy(self):
        recorder = MetricsRecorder()
        recorder.count("c")
        snapshot = recorder.snapshot()
        recorder.count("c")
        assert snapshot.counters["c"] == 1
        assert recorder.counter_value("c") == 2

    def test_add_shard_merges_totals_keeps_spans_per_shard(self):
        worker = MetricsRecorder()
        worker.count("trace.events.routed", 10)
        with worker.span("replay"):
            pass
        parent = MetricsRecorder()
        parent.count("trace.events.routed", 5)
        parent.add_shard(1, worker.snapshot().to_dict())
        snapshot = parent.snapshot()
        # Counters merged into the parent totals...
        assert snapshot.counters["trace.events.routed"] == 15
        # ...but the worker's spans stay addressable under shards[].
        assert "replay" not in snapshot.spans
        assert len(snapshot.shards) == 1
        shard = snapshot.shards[0]
        assert shard["shard"] == 1
        assert [span["path"] for span in shard["spans"]] == ["replay"]

    def test_add_shard_orders_by_index(self):
        parent = MetricsRecorder()
        for index in (2, 0, 1):
            worker = MetricsRecorder()
            worker.count("trace.events.routed", index)
            parent.add_shard(index, worker.snapshot().to_dict())
        assert [s["shard"] for s in parent.snapshot().shards] == [0, 1, 2]


# -- registry and shard stability -------------------------------------------


class TestMetricNameRegistry:
    def test_shard_sensitive_names_are_registered(self):
        assert SHARD_SENSITIVE_METRICS <= set(METRIC_NAMES)

    def test_comparable_counters_drops_unstable_names(self):
        counters = {
            "trace.events.routed": 10,
            "engine.unique": 4,
            "engine.hops": 9,
            "sharded.workers": 4,
            "worker.elapsed_s": 0.1,
            "report.violations": 1,
        }
        assert comparable_counters(counters) == {
            "trace.events.routed": 10,
            "report.violations": 1,
        }

    def test_checker_metrics_use_registered_names(self):
        from repro.checker import make_checker

        program = counter_program()
        for name in ("optimized", "basic", "velodrome", "racedetector"):
            result = run_program(
                program, observers=[make_checker(name)], record_trace=False
            )
            checker = result.observers[0]
            emitted = set(checker.metrics())
            assert emitted <= set(METRIC_NAMES), (name, emitted - set(METRIC_NAMES))


class TestEngineStatsUnification:
    def test_lcastats_is_engine_stats(self):
        assert LCAStats is EngineStats

    def test_both_engines_expose_engine_stats(self):
        program = counter_program()
        result = run_program(program, observers=[OptAtomicityChecker()])
        trace = replay_trace_source(result)
        for engine_cls in (LCAEngine, LabelEngine):
            engine = engine_cls(trace.dpst)
            steps = [
                node_id
                for node_id in range(len(trace.dpst))
                if trace.dpst.is_step(node_id)
            ]
            if len(steps) >= 2:
                engine.parallel(steps[0], steps[1])
            assert isinstance(engine.stats, EngineStats)
            metrics = engine.stats.as_metrics()
            assert set(metrics) == {
                "engine.queries",
                "engine.unique",
                "engine.hops",
            }

    def test_flush_engine_stats_counts(self):
        program = counter_program()
        trace = replay_trace_source(run_program(program, observers=[]))
        engine = LCAEngine(trace.dpst)
        steps = [
            node_id
            for node_id in range(len(trace.dpst))
            if trace.dpst.is_step(node_id)
        ]
        engine.parallel(steps[0], steps[1])
        recorder = MetricsRecorder()
        flush_engine_stats(recorder, engine)
        assert recorder.counter_value("engine.queries") >= 1


def replay_trace_source(result):
    """The recorded trace of a run_program result (records lazily)."""
    if result.trace is not None:
        return result.trace
    rerun = run_program(result.program, record_trace=True)
    return rerun.trace


# -- pipeline integration ----------------------------------------------------


class TestReplayIntegration:
    def test_replay_with_recorder_counts_and_spans(self):
        program = counter_program()
        result = run_program(program, record_trace=True)
        recorder = MetricsRecorder()
        report = replay_trace(
            result.trace, OptAtomicityChecker(), recorder=recorder
        )
        assert len(report) >= 1
        snapshot = recorder.snapshot()
        routed = snapshot.counters["trace.events.routed"]
        assert routed == len(list(result.trace.memory_events()))
        assert snapshot.counters["checker.accesses_checked"] == routed
        assert "replay" in snapshot.spans
        assert snapshot.counters["engine.queries"] >= 1

    def test_replay_without_recorder_is_unchanged(self):
        program = counter_program()
        result = run_program(program, record_trace=True)
        plain = replay_trace(result.trace, OptAtomicityChecker())
        recorded = replay_trace(
            result.trace, OptAtomicityChecker(), recorder=MetricsRecorder()
        )
        assert {v.key for v in plain} == {v.key for v in recorded}


class TestSessionIntegration:
    def test_metrics_none_by_default(self):
        session = CheckSession(counter_program())
        session.check("optimized")
        assert session.metrics is None

    def test_session_records_spans_and_counters(self):
        recorder = MetricsRecorder()
        session = CheckSession(counter_program(), recorder=recorder)
        session.check("optimized")
        snapshot = session.metrics
        assert snapshot is not None
        assert snapshot.counters["report.violations"] >= 1
        assert snapshot.counters["runtime.tasks"] >= 3
        assert snapshot.gauges["dpst.nodes"] >= 1
        # The program records lazily inside the first check() call, so the
        # record phase nests under it.
        assert "check" in snapshot.spans
        assert "check/record" in snapshot.spans
        assert "check/replay" in snapshot.spans

    def test_run_result_metrics_match_recorder_counters(self):
        recorder = MetricsRecorder()
        session = CheckSession(counter_program(), recorder=recorder)
        session.check("optimized")
        run_metrics = session.run_result.metrics
        assert set(run_metrics) <= set(METRIC_NAMES)
        snapshot = session.metrics
        for name in ("runtime.tasks", "runtime.memory_events"):
            assert snapshot.counters[name] == run_metrics[name]

    def test_run_result_checker_metrics(self):
        program = counter_program()
        checker = OptAtomicityChecker()
        result = run_program(program, observers=[checker])
        per_checker = result.checker_metrics
        assert "optimized" in per_checker  # keyed like RunResult.reports
        assert per_checker["optimized"]["report.violations"] >= 1
        assert set(result.metrics) <= set(METRIC_NAMES)


class TestDeprecation:
    def test_check_program_warns(self):
        from repro.runtime.program import check_program

        with pytest.warns(DeprecationWarning, match="CheckSession"):
            report = check_program(counter_program())
        assert len(report) >= 1

    def test_session_path_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = CheckSession(counter_program())
            session.check("optimized")


# -- CLI surface -------------------------------------------------------------


class TestCLI:
    def write_trace(self, tmp_path):
        from repro.trace.serialize import dump_trace_jsonl

        result = run_program(counter_program(), record_trace=True)
        path = str(tmp_path / "trace.jsonl")
        dump_trace_jsonl(result.trace, path)
        return path

    def test_check_trace_metrics_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace = self.write_trace(tmp_path)
        out = str(tmp_path / "m.json")
        code = main(["check-trace", trace, "--metrics", out])
        assert code == 1  # violation found
        with open(out, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert is_metrics_dict(data)
        assert data["counters"]["report.violations"] >= 1
        assert any(span["path"] == "check" for span in data["spans"])
        capsys.readouterr()

    def test_check_trace_metrics_sharded_has_shards(self, tmp_path, capsys):
        from repro.cli import main

        trace = self.write_trace(tmp_path)
        out = str(tmp_path / "m4.json")
        code = main(["check-trace", trace, "--jobs", "4", "--metrics", out])
        assert code == 1
        with open(out, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data.get("shards"), "sharded --metrics must keep per-shard entries"
        for shard in data["shards"]:
            assert "shard" in shard and "spans" in shard
        capsys.readouterr()

    def test_stats_renders_metrics_file(self, tmp_path, capsys):
        from repro.cli import main

        trace = self.write_trace(tmp_path)
        out = str(tmp_path / "m.json")
        main(["check-trace", trace, "--metrics", out])
        capsys.readouterr()
        assert main(["stats", out]) == 0
        rendered = capsys.readouterr().out
        assert "report.violations" in rendered
        assert "check" in rendered

    def test_stats_falls_back_to_trace_files(self, tmp_path, capsys):
        from repro.cli import main

        trace = self.write_trace(tmp_path)
        assert main(["stats", trace]) == 0
        rendered = capsys.readouterr().out
        assert "events" in rendered
