"""Optimized checker: the Figure 10 walkthrough and unit behaviours.

The strongest fidelity test reproduces the paper's Figure 10 trace (the
Figure 1 program under the schedule 1, 4, 9, 10, 6, 7, 8) and asserts the
exact final contents of the global and local metadata spaces for X.
"""

import pytest

from repro.checker import OptAtomicityChecker
from repro.checker.annotations import AtomicAnnotations
from repro.dpst import ArrayDPST, NodeKind
from repro.errors import CheckerError
from repro.report import READ, WRITE
from repro.runtime import SerialExecutor, TaskProgram, run_program
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events

from tests.conftest import build_figure2


def mem(seq, task, step, loc, access, lockset=()):
    return MemoryEvent(seq, task, step, loc, access, lockset)


class TestFigure10Walkthrough:
    """Feed the exact Figure 5/10 trace and inspect the metadata."""

    def setup_method(self):
        self.tree = ArrayDPST()
        s11, f12, a2, s2, s12, a3, s3 = build_figure2(self.tree)
        self.s11, self.s2, self.s12, self.s3 = s11, s2, s12, s3
        # Trace of Figure 5: (1) S11 W X, (4) S12 touches Y only,
        # (9) S3 W X, (10) S3 W Y, (6) S2 R X, (7) local, (8) S2 W X.
        self.events = [
            mem(0, 1, s11, "X", WRITE),
            mem(1, 1, s12, "Y", WRITE),
            mem(2, 3, s3, "X", WRITE),
            mem(3, 3, s3, "Y", WRITE),
            mem(4, 2, s2, "X", READ),
            mem(5, 2, s2, "X", WRITE),
        ]

    def run_checker(self):
        checker = OptAtomicityChecker()
        replay_memory_events(self.events, checker, dpst=self.tree)
        return checker

    def test_violation_detected(self):
        checker = self.run_checker()
        assert len(checker.report) == 1
        violation = checker.report.violations[0]
        assert violation.location == "X"
        assert violation.pattern == "RWW"
        assert violation.first.step == self.s2
        assert violation.second.step == self.s3
        assert violation.third.step == self.s2

    def test_final_global_metadata_for_x(self):
        """Final global space for X, per the Figure 8/9 pseudocode.

        Note a discrepancy in the paper itself: Figure 10 draws W1 as
        (S11, W) throughout, but Figure 8's update rule replaces an
        occupant that is *in series* with the new access -- and S11
        precedes everything, so S3's write replaces it (and S2's write
        then lands in W2).  We follow the pseudocode: the replaced S11
        entry could never witness a violation anyway (nothing is parallel
        with it), so the figure's version merely wastes the slot.
        """
        checker = self.run_checker()
        space = checker._gs["X"]
        assert space.W1.step == self.s3 and space.W1.is_write
        assert space.W2.step == self.s2 and space.W2.is_write
        assert space.R1.step == self.s2 and space.R1.is_read
        assert space.R2 is None
        assert space.RW is not None and space.RW.step == self.s2
        assert space.RR is None and space.WR is None and space.WW is None

    def test_final_local_metadata(self):
        """Figure 10: T1 holds (S11, W); T2 holds (S2, R) and (S2, W); T3 (S3, W)."""
        checker = self.run_checker()
        t1_cell = checker._ls[1]._cells["X"]
        assert t1_cell.write.step == self.s11 and t1_cell.read is None
        t2_cell = checker._ls[2]._cells["X"]
        assert t2_cell.read.step == self.s2
        assert t2_cell.write.step == self.s2
        t3_cell = checker._ls[3]._cells["X"]
        assert t3_cell.write.step == self.s3 and t3_cell.read is None

    def test_metadata_bounded(self):
        checker = self.run_checker()
        assert checker.max_entries_per_location() <= 12
        assert checker.tracked_locations() == 2  # X and Y


class TestDispatch:
    def test_requires_dpst(self):
        from repro.runtime.executor import RunContext
        from repro.runtime.shadow import ShadowMemory
        from repro.runtime.locks import LockTable

        checker = OptAtomicityChecker()
        context = RunContext(None, None, ShadowMemory(), LockTable(), None)
        with pytest.raises(CheckerError):
            checker.on_run_begin(context)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            OptAtomicityChecker(mode="sloppy")

    def test_annotation_filtering(self):
        tree = ArrayDPST()
        _, _, a2, s2, _, a3, s3 = build_figure2(tree)
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s2, "X", WRITE),
            mem(2, 3, s3, "X", WRITE),
            mem(3, 2, s2, "Y", READ),
            mem(4, 2, s2, "Y", WRITE),
            mem(5, 3, s3, "Y", WRITE),
        ]
        annotations = AtomicAnnotations().annotate("Y")
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree, annotations=annotations)
        assert checker.report.locations() == ["Y"]


class TestInterleaverOrderings:
    """The violation must be found whichever side appears first."""

    def build_tree(self):
        tree = ArrayDPST()
        _, _, a2, s2, _, a3, s3 = build_figure2(tree)
        return tree, s2, s3

    def test_pair_then_interleaver(self):
        tree, s2, s3 = self.build_tree()
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s2, "X", WRITE),
            mem(2, 3, s3, "X", WRITE),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1

    def test_interleaver_then_pair(self):
        tree, s2, s3 = self.build_tree()
        events = [
            mem(0, 3, s3, "X", WRITE),
            mem(1, 2, s2, "X", READ),
            mem(2, 2, s2, "X", WRITE),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1

    def test_interleaver_physically_between(self):
        tree, s2, s3 = self.build_tree()
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 3, s3, "X", WRITE),
            mem(2, 2, s2, "X", WRITE),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1


class TestLockHandling:
    def build_tree(self):
        tree = ArrayDPST()
        _, _, a2, s2, _, a3, s3 = build_figure2(tree)
        return tree, s2, s3

    def test_same_critical_section_suppresses_pair(self):
        tree, s2, s3 = self.build_tree()
        events = [
            mem(0, 2, s2, "X", READ, ("L",)),
            mem(1, 2, s2, "X", WRITE, ("L",)),
            mem(2, 3, s3, "X", WRITE, ("L",)),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert not checker.report

    def test_versioned_reacquisition_forms_pair(self):
        tree, s2, s3 = self.build_tree()
        events = [
            mem(0, 2, s2, "X", READ, ("L",)),
            mem(1, 2, s2, "X", WRITE, ("L#1",)),
            mem(2, 3, s3, "X", WRITE, ("L",)),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1

    def test_interleaver_lockset_irrelevant(self):
        tree, s2, s3 = self.build_tree()
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s2, "X", WRITE),
            mem(2, 3, s3, "X", WRITE, ("L", "M")),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert len(checker.report) == 1

    def test_overlapping_locksets_suppress(self):
        tree, s2, s3 = self.build_tree()
        events = [
            mem(0, 2, s2, "X", READ, ("L", "M")),
            mem(1, 2, s2, "X", WRITE, ("M", "N")),  # M held throughout
            mem(2, 3, s3, "X", WRITE),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert not checker.report


class TestSeriesSafety:
    def test_series_steps_never_reported(self):
        tree = ArrayDPST()
        s11, _, _, s2, s12, _, s3 = build_figure2(tree)
        # s11 precedes s2: interleaving impossible.
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s2, "X", WRITE),
            mem(2, 1, s11, "X", WRITE),
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert not checker.report

    def test_same_task_two_steps_not_a_pair(self):
        """Accesses in different steps of one task never form A1/A3."""
        tree = ArrayDPST()
        s11, _, _, s2, s12, _, s3 = build_figure2(tree)
        events = [
            mem(0, 1, s11, "X", READ),
            mem(1, 1, s12, "X", WRITE),  # same task, different step
            mem(2, 2, s2, "X", WRITE),   # parallel writer
        ]
        checker = OptAtomicityChecker()
        replay_memory_events(events, checker, dpst=tree)
        assert not checker.report


class TestAccounting:
    def test_entry_counts_exposed(self):
        def child(ctx):
            ctx.add("X", 1)

        def main(ctx):
            ctx.spawn(child)
            ctx.spawn(child)
            ctx.sync()

        checker = OptAtomicityChecker()
        run_program(TaskProgram(main), observers=[checker])
        assert checker.tracked_locations() == 1
        assert 0 < checker.max_entries_per_location() <= 12
        assert checker.total_local_entries() > 0
        assert checker.total_global_entries() >= checker.max_entries_per_location()
