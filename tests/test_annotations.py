"""Atomicity annotations: check-everything default, groups, prefixes."""

import pytest

from repro.checker.annotations import AtomicAnnotations


class TestDefaults:
    def test_empty_checks_everything(self):
        annotations = AtomicAnnotations()
        assert annotations.check_all
        assert annotations.trivial
        assert annotations.is_checked("anything")
        assert annotations.is_checked(("arr", 7))

    def test_metadata_key_identity_by_default(self):
        annotations = AtomicAnnotations()
        assert annotations.metadata_key("X") == "X"
        assert annotations.metadata_key(("arr", 3)) == ("arr", 3)


class TestExplicit:
    def test_explicit_annotation_disables_check_all(self):
        annotations = AtomicAnnotations().annotate("X")
        assert not annotations.check_all
        assert annotations.is_checked("X")
        assert not annotations.is_checked("Y")

    def test_override_forces_check_all(self):
        annotations = AtomicAnnotations(check_all=True).annotate("X")
        assert annotations.check_all
        assert annotations.is_checked("Y")

    def test_override_forces_check_nothing_extra(self):
        annotations = AtomicAnnotations(check_all=False)
        assert not annotations.is_checked("X")
        annotations.annotate("X")
        assert annotations.is_checked("X")


class TestGroups:
    def test_group_shares_key(self):
        annotations = AtomicAnnotations().annotate_group("acct", ["a", "b"])
        assert annotations.metadata_key("a") == annotations.metadata_key("b")
        assert annotations.metadata_key("a") == ("group", "acct")

    def test_group_members_checked(self):
        annotations = AtomicAnnotations().annotate_group("acct", ["a", "b"])
        assert annotations.is_checked("a")
        assert annotations.is_checked("b")
        assert not annotations.is_checked("c")

    def test_group_members_listed(self):
        annotations = AtomicAnnotations().annotate_group("acct", ["a", "b"])
        assert annotations.group_members("acct") == ["a", "b"]

    def test_groups_iterable(self):
        annotations = AtomicAnnotations()
        annotations.annotate_group("g1", ["a"])
        annotations.annotate_group("g2", ["b", "c"])
        groups = dict(annotations.groups())
        assert groups[("group", "g1")] == ["a"]
        assert groups[("group", "g2")] == ["b", "c"]

    def test_conflicting_group_membership_rejected(self):
        annotations = AtomicAnnotations().annotate_group("g1", ["a"])
        with pytest.raises(ValueError):
            annotations.annotate_group("g2", ["a"])

    def test_repeated_member_idempotent(self):
        annotations = AtomicAnnotations()
        annotations.annotate_group("g", ["a"])
        annotations.annotate_group("g", ["a", "b"])
        assert annotations.group_members("g") == ["a", "b"]

    def test_grouping_breaks_triviality(self):
        annotations = AtomicAnnotations(check_all=True).annotate_group("g", ["a"])
        assert annotations.check_all
        assert not annotations.trivial


class TestPrefix:
    def test_prefix_matches_tuple_locations(self):
        annotations = AtomicAnnotations().annotate_prefix("arr")
        assert annotations.is_checked(("arr", 0))
        assert annotations.is_checked(("arr", 99))
        assert not annotations.is_checked(("other", 0))
        assert not annotations.is_checked("arr")

    def test_prefix_and_explicit_combine(self):
        annotations = AtomicAnnotations().annotate_prefix("arr").annotate("X")
        assert annotations.is_checked("X")
        assert annotations.is_checked(("arr", 1))
        assert not annotations.is_checked("Y")
