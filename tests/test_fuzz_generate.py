"""Tests of the fuzzing program generator (repro.fuzz.generate)."""

import pytest

from repro.fuzz import (
    FuzzConfig,
    ProgramGenerator,
    program_from_spec,
    spec_access_count,
    spec_locations,
)
from repro.fuzz.generate import spec_task_count
from repro.runtime.executor import SerialExecutor
from repro.runtime.program import run_program
from repro.static.lint import lint_spec

SEEDS = list(range(20))


def test_same_seed_same_spec():
    gen = ProgramGenerator(FuzzConfig())
    for seed in SEEDS:
        assert gen.generate_spec(seed) == gen.generate_spec(seed)


def test_two_generators_agree():
    a = ProgramGenerator(FuzzConfig())
    b = ProgramGenerator(FuzzConfig())
    for seed in SEEDS:
        assert a.generate_spec(seed) == b.generate_spec(seed)


def test_different_seeds_differ():
    gen = ProgramGenerator(FuzzConfig())
    specs = {gen.generate_spec(seed) for seed in range(50)}
    # Collisions are possible in principle; mass collision is a bug.
    assert len(specs) > 40


def test_specs_respect_config_bounds():
    config = FuzzConfig(tasks=5, depth=2, locations=2, locks=1)
    gen = ProgramGenerator(config)
    for seed in SEEDS:
        spec = gen.generate_spec(seed)
        assert spec[0] == "task"
        assert spec_access_count(spec) >= 1
        assert spec_task_count(spec) <= config.tasks
        for location in spec_locations(spec):
            assert location[0] == "g"
            assert 0 <= location[1] < config.locations


def test_locked_blocks_never_contain_spawns():
    gen = ProgramGenerator(FuzzConfig(lock_density=1.0, locks=2))

    def assert_no_spawn_under_lock(items, under_lock=False):
        for item in items:
            tag = item[0]
            if tag == "spawn":
                assert not under_lock
                assert_no_spawn_under_lock(item[1], under_lock)
            elif tag == "finish":
                assert_no_spawn_under_lock(item[1], under_lock)
            elif tag == "locked":
                assert_no_spawn_under_lock(item[2], under_lock=True)

    for seed in SEEDS:
        assert_no_spawn_under_lock(gen.generate_spec(seed)[1])


@pytest.mark.parametrize("seed", [0, 3, 7, 13])
def test_generated_programs_run_and_record(seed):
    program = ProgramGenerator(FuzzConfig()).generate_program(seed)
    result = run_program(
        program, executor=SerialExecutor(), record_trace=True
    )
    assert result.trace is not None
    assert len(result.trace.memory_events()) >= 1
    result.dpst.validate()


def test_generated_specs_are_exactly_lintable():
    gen = ProgramGenerator(FuzzConfig())
    for seed in SEEDS:
        report = lint_spec(gen.generate_spec(seed))
        # The spec language is the lint pass's native input: the static
        # skeleton must be exact, or the prefilter oracle leg is vacuous.
        assert report.prefilter_safe, (seed, report.describe())


def test_templates_emit_fork_join_structure():
    config = FuzzConfig(template_probability=1.0, tasks=12, seed=0)
    gen = ProgramGenerator(config)
    tags = set()

    def visit(items):
        for item in items:
            tags.add(item[0])
            if item[0] in ("spawn", "finish"):
                visit(item[1])
            elif item[0] == "locked":
                visit(item[2])

    for seed in range(30):
        visit(gen.generate_spec(seed)[1])
    assert {"spawn", "finish", "sync", "access"} <= tags


def test_program_from_spec_is_self_contained():
    spec = ("task", (("access", ("g", 7), "write"), ("access", ("g", 7), "read")))
    program = program_from_spec(spec)
    assert program.initial_memory == {("g", 7): 0}
    result = run_program(program, executor=SerialExecutor(), record_trace=True)
    assert len(result.trace.memory_events()) == 2


def test_program_from_spec_rejects_non_task_root():
    with pytest.raises(ValueError):
        program_from_spec(("spawn", ()))
