"""The 13 benchmark kernels: registry, correctness, cleanliness, Table 1
qualitative profile."""

import math

import pytest

from repro.checker import OptAtomicityChecker
from repro.errors import WorkloadError
from repro.runtime import WorkStealingExecutor, run_program
from repro.workloads import WORKLOAD_ORDER, all_workloads, get

SPECS = all_workloads()


class TestRegistry:
    def test_thirteen_workloads_in_table1_order(self):
        assert [spec.name for spec in SPECS] == WORKLOAD_ORDER
        assert len(SPECS) == 13

    def test_get_known_and_unknown(self):
        assert get("kmeans").name == "kmeans"
        with pytest.raises(WorkloadError):
            get("doom")

    def test_paper_rows_populated(self):
        for spec in SPECS:
            assert spec.paper.locations > 0
            assert spec.paper.nodes > 0
            if spec.name == "blackscholes":
                assert spec.paper.lcas == 0
                assert spec.paper.unique_pct is None
            else:
                assert spec.paper.lcas > 0
                assert spec.paper.unique_pct is not None


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestEveryWorkload:
    def test_runs_clean_under_checker(self, spec):
        checker = OptAtomicityChecker()
        result = run_program(spec.build(spec.test_scale), observers=[checker])
        assert not result.report(), result.report().describe()

    def test_scales(self, spec):
        small = run_program(spec.build(1), collect_stats=True, build_dpst=True)
        large = run_program(spec.build(3), collect_stats=True, build_dpst=True)
        assert large.stats.memory_events > small.stats.memory_events


class TestBlackscholes:
    def test_zero_lca_queries(self):
        """Table 1's signature property of blackscholes."""
        result = run_program(
            get("blackscholes").build(1),
            observers=[OptAtomicityChecker()],
            collect_stats=True,
        )
        assert result.stats.lca_queries == 0

    def test_prices_are_positive(self):
        result = run_program(get("blackscholes").build(1))
        prices = [v for k, v in result.shadow.snapshot().items() if k[0] == "price"]
        assert len(prices) == 40
        assert all(p >= 0.0 for p in prices)


class TestSort:
    def test_sorts_correctly(self):
        result = run_program(get("sort").build(1))
        snapshot = result.shadow.snapshot()
        values = [snapshot[("a", i)] for i in range(32)]
        assert values == sorted(values)

    def test_sorts_at_scale(self):
        result = run_program(get("sort").build(3))
        snapshot = result.shadow.snapshot()
        values = [snapshot[("a", i)] for i in range(96)]
        assert values == sorted(values)


class TestKaratsuba:
    def test_product_is_exact(self):
        from repro.workloads.karatsuba import BASE

        result = run_program(get("karatsuba").build(1))
        snapshot = result.shadow.snapshot()

        def as_int(name, size):
            return sum(snapshot.get((name, i), 0) * BASE**i for i in range(size))

        x = as_int("x", 16)
        y = as_int("y", 16)
        z = as_int("z", 32)
        assert z == x * y


class TestKmeans:
    def test_centroids_move_and_counts_total(self):
        result = run_program(get("kmeans").build(1))
        snapshot = result.shadow.snapshot()
        total = sum(snapshot[("count", j)] for j in range(4))
        assert total == 24
        for j in range(4):
            assert ("cx", j) in snapshot and ("cy", j) in snapshot

    def test_assignments_valid(self):
        result = run_program(get("kmeans").build(1))
        snapshot = result.shadow.snapshot()
        assigns = [v for k, v in snapshot.items() if k[0] == "assign"]
        assert len(assigns) == 24
        assert all(0 <= a < 4 for a in assigns)


class TestSwaptions:
    def test_prices_written(self):
        result = run_program(get("swaptions").build(1))
        snapshot = result.shadow.snapshot()
        for s in range(3):
            assert snapshot[("price", s)] >= 0.0
            assert snapshot[("sum2", s)] >= 0.0

    def test_many_tasks_spawned(self):
        result = run_program(get("swaptions").build(1), collect_stats=True,
                             build_dpst=True)
        # 3 swaptions x 16 trials via binary splitting: > 48 tasks.
        assert result.stats.tasks > 48


class TestRaycast:
    def test_every_ray_resolved(self):
        result = run_program(get("raycast").build(1))
        snapshot = result.shadow.snapshot()
        hits = [v for k, v in snapshot.items() if k[0] == "hit"]
        assert len(hits) == 30
        assert all(isinstance(h, int) for h in hits)

    def test_density_accumulated(self):
        result = run_program(get("raycast").build(1))
        snapshot = result.shadow.snapshot()
        densities = [v for k, v in snapshot.items() if k[0] == "dens"]
        assert any(d > 0 for d in densities)


class TestConvexhull:
    def test_hull_contains_extremes(self):
        result = run_program(get("convexhull").build(1))
        snapshot = result.shadow.snapshot()
        count = snapshot[("hull_n",)]
        assert count >= 3
        hull = {snapshot[("hull", i)] for i in range(count)}
        xs = [(snapshot[("px", i)], i) for i in range(28)]
        assert min(xs)[1] in hull
        assert max(xs)[1] in hull

    def test_hull_points_unique(self):
        result = run_program(get("convexhull").build(1))
        snapshot = result.shadow.snapshot()
        count = snapshot[("hull_n",)]
        points = [snapshot[("hull", i)] for i in range(count)]
        assert len(points) == len(set(points))


class TestFluidanimate:
    def test_mass_conserved_smoothing(self):
        """Smoothing is an average: densities stay within initial bounds."""
        result = run_program(get("fluidanimate").build(1))
        snapshot = result.shadow.snapshot()
        densities = [v for k, v in snapshot.items() if k[0] == "rho"]
        assert all(0.4 <= d <= 2.1 for d in densities)


class TestStreamcluster:
    def test_assignments_reference_open_centers(self):
        result = run_program(get("streamcluster").build(1))
        snapshot = result.shadow.snapshot()
        centers = snapshot[("centers_n",)]
        assert centers >= 1
        assigns = [v for k, v in snapshot.items() if k[0] == "assign"]
        assert len(assigns) == 36
        assert all(0 <= a < centers for a in assigns)


class TestDelaunayPair:
    def test_delrefine_improves_quality(self):
        result = run_program(get("delrefine").build(1))
        snapshot = result.shadow.snapshot()
        assert snapshot[("tri_n",)] > 14  # splits happened

    def test_deltriang_allocates_triangles(self):
        result = run_program(get("deltriang").build(1))
        snapshot = result.shadow.snapshot()
        assert snapshot[("tri_n",)] == 6 + 3 * 18  # 3 children per insert


class TestNearestneigh:
    def test_answers_are_real_points(self):
        result = run_program(get("nearestneigh").build(1))
        snapshot = result.shadow.snapshot()
        answers = [v for k, v in snapshot.items() if k[0] == "nn"]
        assert len(answers) == 16
        # -1 is allowed only if grid is empty near the query, which the
        # expanding-ring probe makes vanishingly unlikely with 20 points.
        assert sum(1 for a in answers if a >= 0) >= 14


class TestBodytrack:
    def test_pose_tracks_observations(self):
        result = run_program(get("bodytrack").build(1))
        snapshot = result.shadow.snapshot()
        for d in range(4):
            assert ("pose", d) in snapshot
        weights = [v for k, v in snapshot.items() if k[0] == "w"]
        assert len(weights) == 36  # 12 particles x 3 frames
        assert all(0.0 <= w <= 1.0 for w in weights)


class TestUnderWorkStealing:
    @pytest.mark.parametrize("name", ["sort", "kmeans", "convexhull"])
    def test_checker_clean_with_threads(self, name):
        checker = OptAtomicityChecker()
        result = run_program(
            get(name).build(1),
            executor=WorkStealingExecutor(workers=3),
            observers=[checker],
        )
        assert not result.report()
