"""Fault tolerance of the sharded driver: supervision, checkpoints, resume.

The failure matrix of ISSUE 4: a worker SIGKILLed mid-shard under each
``on_shard_failure`` policy, timeout expiry, resume-after-interrupt
reproducing the fresh-run report exactly (including across the whole
36-program suite), spawn-mode equivalence, and the driver bugfixes
(affinity-aware ``default_jobs``, reader cleanup, picklable payloads).

Faults are injected through the ``REPRO_FAULT_KILL`` /
``REPRO_FAULT_SLEEP`` environment hooks so they reach worker processes
under every start method.
"""

import json
import os

import pytest

from repro.checker import OptAtomicityChecker
from repro.checker.sharded import check_sharded, default_jobs
from repro.checker.supervisor import (
    FAULT_KILL_ENV,
    FAULT_SLEEP_ENV,
    CheckpointStore,
    WorkerPolicy,
    maybe_inject_fault,
)
from repro.errors import CheckerError
from repro.obs import MetricsRecorder, comparable_counters
from repro.report import ViolationReport
from repro.runtime import TaskProgram, run_program
from repro.suite import all_cases
from repro.trace.serialize import dump_trace_jsonl


def recorded_trace():
    """A small multi-location program whose events reach every shard."""

    def body(ctx):
        def rmw(inner, loc):
            value = inner.read(loc)
            inner.write(loc, value + 1)

        for loc in ("X", "Y", "Z", ("grid", 7)):
            ctx.spawn(rmw, loc)
            ctx.spawn(rmw, loc)
        ctx.sync()

    memory = {loc: 0 for loc in ("X", "Y", "Z", ("grid", 7))}
    return run_program(
        TaskProgram(body, initial_memory=memory), record_trace=True
    ).trace


@pytest.fixture
def trace_file(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    dump_trace_jsonl(recorded_trace(), path)
    return path


@pytest.fixture
def baseline(trace_file):
    report = check_sharded(trace_file, jobs=1)
    assert report, "fixture program must produce violations"
    return report


def keys(report):
    return {v.key for v in report}


class TestFaultHooks:
    def test_noop_without_env(self):
        maybe_inject_fault(0, 0)  # must not raise or kill

    def test_sleep_hook_targets_one_attempt(self, monkeypatch):
        import time

        monkeypatch.setenv(FAULT_SLEEP_ENV, "3@1:0.05")
        started = time.monotonic()
        maybe_inject_fault(3, 0)  # wrong attempt: no sleep
        maybe_inject_fault(2, 1)  # wrong shard: no sleep
        assert time.monotonic() - started < 0.04
        maybe_inject_fault(3, 1)
        assert time.monotonic() - started >= 0.05


class TestWorkerPolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(CheckerError):
            WorkerPolicy(on_failure="panic")

    def test_rejects_negative_retries(self):
        with pytest.raises(CheckerError):
            WorkerPolicy(max_retries=-1)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(CheckerError):
            WorkerPolicy(timeout_s=0)


class TestFailureMatrix:
    """Worker SIGKILLed mid-shard under each policy, plus timeouts."""

    def test_kill_then_retry_matches_unfaulted_run(
        self, trace_file, baseline, monkeypatch
    ):
        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        report = check_sharded(trace_file, jobs=2, on_shard_failure="retry")
        assert keys(report) == keys(baseline)
        assert report.raw_count == baseline.raw_count

    def test_kill_then_inline_fallback_completes(
        self, trace_file, baseline, monkeypatch
    ):
        monkeypatch.setenv(FAULT_KILL_ENV, "1@0")
        report = check_sharded(
            trace_file, jobs=2, on_shard_failure="inline", max_retries=0
        )
        assert keys(report) == keys(baseline)

    def test_kill_with_raise_policy_aborts(self, trace_file, monkeypatch):
        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        with pytest.raises(CheckerError, match="shard 0 failed"):
            check_sharded(trace_file, jobs=2, on_shard_failure="raise")

    def test_persistent_crash_exhausts_retries(self, trace_file, monkeypatch):
        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        with pytest.raises(CheckerError, match="failed after 1 attempt"):
            check_sharded(
                trace_file, jobs=2, on_shard_failure="retry", max_retries=0
            )

    def test_crash_on_every_attempt_exhausts_retries(
        self, trace_file, monkeypatch
    ):
        # "0@*" kills every attempt of shard 0, so all retries fail too.
        monkeypatch.setenv(FAULT_KILL_ENV, "0@*")
        with pytest.raises(CheckerError, match="failed after 3 attempt"):
            check_sharded(
                trace_file,
                jobs=2,
                on_shard_failure="retry",
                max_retries=2,
                retry_backoff=0.01,
            )

    def test_inline_fallback_survives_persistent_crash(
        self, trace_file, baseline, monkeypatch
    ):
        # Even a shard whose worker *always* dies completes inline (the
        # hooks are suspended for the in-driver call).
        monkeypatch.setenv(FAULT_KILL_ENV, "0@*")
        report = check_sharded(
            trace_file,
            jobs=2,
            on_shard_failure="inline",
            max_retries=1,
            retry_backoff=0.01,
        )
        assert keys(report) == keys(baseline)
        assert os.environ[FAULT_KILL_ENV] == "0@*"  # restored after inline

    def test_timeout_expiry_retries_and_completes(
        self, trace_file, baseline, monkeypatch
    ):
        monkeypatch.setenv(FAULT_SLEEP_ENV, "0@0:30")
        report = check_sharded(
            trace_file,
            jobs=2,
            on_shard_failure="retry",
            shard_timeout=0.5,
            retry_backoff=0.01,
        )
        assert keys(report) == keys(baseline)

    def test_in_memory_source_retries_too(self, baseline, monkeypatch):
        trace = recorded_trace()
        fresh = check_sharded(trace, jobs=2)
        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        report = check_sharded(trace, jobs=2, on_shard_failure="retry")
        assert keys(report) == keys(fresh) == keys(baseline)

    def test_failure_metrics_are_counted(
        self, trace_file, baseline, monkeypatch
    ):
        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        recorder = MetricsRecorder()
        report = check_sharded(
            trace_file, jobs=2, on_shard_failure="retry", recorder=recorder
        )
        counters = recorder.snapshot().counters
        assert keys(report) == keys(baseline)
        assert counters["sharded.shard_failures"] == 1
        assert counters["sharded.retries"] == 1
        assert "sharded.inline_fallbacks" not in counters

    def test_inline_fallback_metric(self, trace_file, monkeypatch):
        monkeypatch.setenv(FAULT_KILL_ENV, "1@0")
        recorder = MetricsRecorder()
        check_sharded(
            trace_file,
            jobs=2,
            on_shard_failure="inline",
            max_retries=0,
            recorder=recorder,
        )
        assert recorder.snapshot().counters["sharded.inline_fallbacks"] == 1


class TestCheckpointResume:
    def test_fresh_run_writes_manifest_and_shards(self, trace_file, tmp_path):
        ck = str(tmp_path / "ck")
        check_sharded(trace_file, jobs=2, checkpoint_dir=ck)
        names = sorted(os.listdir(ck))
        assert "run.json" in names
        assert [n for n in names if n.startswith("shard-")] == [
            "shard-00000.json",
            "shard-00001.json",
        ]

    def test_resume_after_partial_run_matches_fresh(
        self, trace_file, baseline, tmp_path
    ):
        ck = str(tmp_path / "ck")
        fresh = check_sharded(trace_file, jobs=2, checkpoint_dir=ck)
        # Simulate an interrupt: one shard's checkpoint never landed.
        os.unlink(os.path.join(ck, "shard-00001.json"))
        resumed = check_sharded(
            trace_file, jobs=2, checkpoint_dir=ck, resume=True
        )
        assert resumed.describe() == fresh.describe()  # byte-identical
        assert keys(resumed) == keys(baseline)
        assert resumed.raw_count == fresh.raw_count

    def test_resume_from_complete_run_skips_all_workers(
        self, trace_file, baseline, tmp_path
    ):
        ck = str(tmp_path / "ck")
        check_sharded(trace_file, jobs=2, checkpoint_dir=ck)
        recorder = MetricsRecorder()
        resumed = check_sharded(
            trace_file, jobs=2, checkpoint_dir=ck, resume=True,
            recorder=recorder,
        )
        counters = recorder.snapshot().counters
        assert keys(resumed) == keys(baseline)
        assert counters["sharded.resumed_shards"] == 2
        assert counters["sharded.workers"] == 0

    def test_resume_with_mismatched_jobs_is_refused(
        self, trace_file, tmp_path
    ):
        ck = str(tmp_path / "ck")
        check_sharded(trace_file, jobs=2, checkpoint_dir=ck)
        with pytest.raises(CheckerError, match="incompatible"):
            check_sharded(trace_file, jobs=4, checkpoint_dir=ck, resume=True)

    def test_fresh_run_clears_stale_shards(self, trace_file, tmp_path):
        ck = str(tmp_path / "ck")
        check_sharded(trace_file, jobs=4, checkpoint_dir=ck)
        # Same directory, new configuration, no resume: stale shard
        # files from the jobs=4 run must not leak into a jobs=2 merge.
        check_sharded(trace_file, jobs=2, checkpoint_dir=ck)
        shards = [n for n in os.listdir(ck) if n.startswith("shard-")]
        assert sorted(shards) == ["shard-00000.json", "shard-00001.json"]

    def test_damaged_checkpoint_is_recomputed(
        self, trace_file, baseline, tmp_path
    ):
        ck = str(tmp_path / "ck")
        check_sharded(trace_file, jobs=2, checkpoint_dir=ck)
        torn = os.path.join(ck, "shard-00000.json")
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-checkpoint/1", "shard"')
        resumed = check_sharded(
            trace_file, jobs=2, checkpoint_dir=ck, resume=True
        )
        assert keys(resumed) == keys(baseline)

    def test_jobs1_checkpoints_as_single_shard(
        self, trace_file, baseline, tmp_path
    ):
        ck = str(tmp_path / "ck")
        first = check_sharded(trace_file, jobs=1, checkpoint_dir=ck)
        assert os.path.exists(os.path.join(ck, "shard-00000.json"))
        resumed = check_sharded(
            trace_file, jobs=1, checkpoint_dir=ck, resume=True
        )
        assert first.describe() == resumed.describe() == baseline.describe()

    def test_kill_plus_checkpoint_then_resume(
        self, trace_file, baseline, tmp_path, monkeypatch
    ):
        # Interrupted run: shard 0's worker dies on *every* attempt,
        # aborting the run -- but shard 1 finishes during the retries
        # and its checkpoint survives.
        ck = str(tmp_path / "ck")
        monkeypatch.setenv(FAULT_KILL_ENV, "0@*")
        with pytest.raises(CheckerError):
            check_sharded(
                trace_file, jobs=2, checkpoint_dir=ck, max_retries=2,
                retry_backoff=0.2,
            )
        assert os.path.exists(os.path.join(ck, "shard-00001.json"))
        monkeypatch.delenv(FAULT_KILL_ENV)
        resumed = check_sharded(
            trace_file, jobs=2, checkpoint_dir=ck, resume=True
        )
        assert keys(resumed) == keys(baseline)

    def test_store_validates_schema(self, tmp_path):
        ck = str(tmp_path / "ck")
        CheckpointStore(ck, jobs=2, checker="optimized")
        manifest = os.path.join(ck, "run.json")
        with open(manifest, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["schema"] = "other/1"
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(CheckerError, match="incompatible"):
            CheckpointStore(ck, jobs=2, checker="optimized", resume=True)


class TestSuiteEquivalence:
    """Acceptance criteria over the whole 36-program suite."""

    def test_kill_retry_and_resume_match_fresh_runs(self, tmp_path):
        for index, case in enumerate(all_cases()):
            result = run_program(case.build(), record_trace=True)
            path = str(tmp_path / f"{case.name}.jsonl")
            dump_trace_jsonl(result.trace, path)
            base = check_sharded(path, jobs=1)

            os.environ[FAULT_KILL_ENV] = f"{index % 2}@0"
            try:
                faulted = check_sharded(
                    path, jobs=2, on_shard_failure="retry", retry_backoff=0.01
                )
            finally:
                del os.environ[FAULT_KILL_ENV]
            assert keys(faulted) == keys(base), case.name
            assert faulted.raw_count == base.raw_count, case.name

            ck = str(tmp_path / f"ck-{case.name}")
            fresh = check_sharded(path, jobs=2, checkpoint_dir=ck)
            os.unlink(os.path.join(ck, f"shard-{index % 2:05d}.json"))
            resumed = check_sharded(
                path, jobs=2, checkpoint_dir=ck, resume=True
            )
            assert resumed.describe() == fresh.describe(), case.name
            assert keys(resumed) == keys(base), case.name
            assert resumed.raw_count == base.raw_count, case.name


class TestLenientChecking:
    def corrupt(self, path):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{garbage line\n")
            handle.write('{"type": "Martian"}\n')

    def test_strict_check_raises_on_garbage(self, trace_file):
        self.corrupt(trace_file)
        with pytest.raises(Exception):
            check_sharded(trace_file, jobs=1)

    def test_lenient_matches_clean_verdict(self, trace_file, baseline):
        self.corrupt(trace_file)
        for jobs in (1, 2):
            report = check_sharded(trace_file, jobs=jobs, strict=False)
            assert keys(report) == keys(baseline), jobs

    def test_lenient_skip_count_agrees_across_job_counts(
        self, trace_file, baseline
    ):
        self.corrupt(trace_file)
        totals = {}
        for jobs in (1, 4):
            recorder = MetricsRecorder()
            report = check_sharded(
                trace_file, jobs=jobs, strict=False, recorder=recorder
            )
            assert keys(report) == keys(baseline)
            totals[jobs] = comparable_counters(
                recorder.snapshot().counters
            )
        assert totals[1]["trace.lines_skipped"] == 2
        assert totals[1] == totals[4]

    def test_metric_totals_agree_even_with_faults(
        self, trace_file, baseline, monkeypatch
    ):
        self.corrupt(trace_file)
        solo = MetricsRecorder()
        check_sharded(trace_file, jobs=1, strict=False, recorder=solo)
        monkeypatch.setenv(FAULT_KILL_ENV, "2@0")
        sharded = MetricsRecorder()
        report = check_sharded(
            trace_file,
            jobs=4,
            strict=False,
            recorder=sharded,
            retry_backoff=0.01,
        )
        assert keys(report) == keys(baseline)
        assert comparable_counters(
            solo.snapshot().counters
        ) == comparable_counters(sharded.snapshot().counters)


class TestStartMethods:
    def test_spawn_produces_identical_report(self, trace_file, baseline):
        forked = check_sharded(trace_file, jobs=2)
        spawned = check_sharded(trace_file, jobs=2, start_method="spawn")
        assert spawned.describe() == forked.describe()  # byte-identical
        assert keys(spawned) == keys(baseline)

    def test_unknown_start_method_rejected(self, trace_file):
        with pytest.raises(CheckerError, match="not available"):
            check_sharded(trace_file, jobs=2, start_method="teleport")

    def test_env_override_is_honored(self, trace_file, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.raises(CheckerError, match="not available"):
            check_sharded(trace_file, jobs=2)

    def test_unpicklable_payload_is_a_clear_error(self, trace_file):
        checker = OptAtomicityChecker()
        checker.unpicklable = lambda: None  # closures cannot be pickled
        with pytest.raises(CheckerError, match="picklable"):
            check_sharded(
                trace_file, jobs=2, checker=checker, start_method="spawn"
            )


class TestDriverBugfixes:
    def test_default_jobs_prefers_affinity(self, monkeypatch):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 3})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_jobs() == 3

    def test_default_jobs_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_jobs() == 5

    def test_owned_reader_closed_after_success(self, trace_file):
        # check_sharded opens (and must close) readers it creates itself.
        report = check_sharded(trace_file, jobs=1)
        assert isinstance(report, ViolationReport)
        # A second full check re-opens cleanly; nothing holds the file.
        assert keys(check_sharded(trace_file, jobs=2)) == keys(report)

    def test_owned_reader_closed_on_worker_failure(
        self, trace_file, monkeypatch
    ):
        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        with pytest.raises(CheckerError):
            check_sharded(
                trace_file, jobs=2, on_shard_failure="raise"
            )
        # The path is still checkable: no leaked handle, no stale state.
        monkeypatch.delenv(FAULT_KILL_ENV)
        assert check_sharded(trace_file, jobs=2)

    def test_caller_reader_left_open(self, trace_file):
        from repro.trace.serialize import open_trace

        reader = open_trace(trace_file)
        check_sharded(reader, jobs=2)
        assert not reader.closed  # caller-owned: caller closes
        reader.close()


class TestSessionWiring:
    def test_session_checkpoint_resume(self, trace_file, baseline, tmp_path):
        from repro.session import CheckSession

        ck = str(tmp_path / "ck")
        fresh = CheckSession(trace_file, jobs=2).check(checkpoint_dir=ck)
        os.unlink(os.path.join(ck, "shard-00000.json"))
        resumed = CheckSession(trace_file, jobs=2).check(
            checkpoint_dir=ck, resume=True
        )
        assert fresh.describe() == resumed.describe()  # byte-identical
        assert keys(resumed) == keys(baseline)

    def test_session_jobs1_checkpoint_routes_through_driver(
        self, trace_file, baseline, tmp_path
    ):
        from repro.session import CheckSession

        ck = str(tmp_path / "ck")
        report = CheckSession(trace_file, jobs=1).check(checkpoint_dir=ck)
        assert report.describe() == baseline.describe()
        assert os.path.exists(os.path.join(ck, "shard-00000.json"))

    def test_session_lenient_counts_lines(self, trace_file, baseline):
        from repro.session import CheckSession

        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write("{junk\n")
        session = CheckSession(trace_file, strict=False)
        report = session.check()
        assert keys(report) == keys(baseline)
        assert session.lines_skipped == 1

    def test_session_fault_policy_forwarded(
        self, trace_file, baseline, monkeypatch
    ):
        from repro.session import CheckSession

        monkeypatch.setenv(FAULT_KILL_ENV, "0@0")
        report = CheckSession(trace_file, jobs=2).check(
            on_shard_failure="retry"
        )
        assert keys(report) == keys(baseline)
