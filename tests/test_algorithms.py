"""TBB-style algorithm templates: results, structure, checker visibility."""

import pytest

from repro.checker import OptAtomicityChecker
from repro.errors import RuntimeUsageError
from repro.runtime import TaskProgram, WorkStealingExecutor, run_program
from repro.runtime.algorithms import (
    parallel_for,
    parallel_invoke,
    parallel_pipeline,
    parallel_reduce,
)


class TestParallelFor:
    def test_covers_range(self):
        def main(ctx):
            parallel_for(ctx, 0, 10, lambda c, i: c.write(("out", i), i * 2))
            return sum(ctx.read(("out", i)) for i in range(10))

        assert run_program(TaskProgram(main)).value == 90

    def test_empty_range(self):
        def main(ctx):
            parallel_for(ctx, 5, 5, lambda c, i: c.write("X", 1))
            return ctx.read("X")

        assert run_program(TaskProgram(main)).value == 0

    def test_grain_bounds_leaf_size(self):
        sizes = []

        def body(c, i):
            c.write(("touched", i), 1)

        def main(ctx):
            parallel_for(ctx, 0, 17, body, grain=4)

        result = run_program(TaskProgram(main), record_trace=True)
        per_task = {}
        for event in result.recorder.memory_events():
            per_task.setdefault(event.task, 0)
            per_task[event.task] += 1
        # every leaf task touched at most `grain` locations
        assert max(per_task.values()) <= 4

    def test_leaves_are_parallel(self):
        """Two iterations in different leaves can race; the checker sees it."""

        def body(c, i):
            value = c.read("shared")
            c.write("shared", value + 1)

        def main(ctx):
            parallel_for(ctx, 0, 4, body, grain=1)

        checker = OptAtomicityChecker()
        run_program(TaskProgram(main), observers=[checker])
        assert checker.report.locations() == ["shared"]

    def test_same_leaf_iterations_are_one_step(self):
        """With grain >= range size, the whole loop is one atomic region."""

        def body(c, i):
            value = c.read("shared")
            c.write("shared", value + 1)

        def main(ctx):
            parallel_for(ctx, 0, 4, body, grain=4)

        checker = OptAtomicityChecker()
        run_program(TaskProgram(main), observers=[checker])
        assert not checker.report

    def test_invalid_grain(self):
        def main(ctx):
            parallel_for(ctx, 0, 4, lambda c, i: None, grain=0)

        with pytest.raises(RuntimeUsageError):
            run_program(TaskProgram(main))

    def test_under_work_stealing(self):
        def main(ctx):
            parallel_for(ctx, 0, 20, lambda c, i: c.write(("out", i), i))
            return sum(ctx.read(("out", i)) for i in range(20))

        result = run_program(
            TaskProgram(main), executor=WorkStealingExecutor(workers=3)
        )
        assert result.value == sum(range(20))


class TestParallelReduce:
    def test_sum(self):
        def main(ctx):
            return parallel_reduce(
                ctx, 0, 100, lambda c, i: i, lambda a, b: a + b, 0, grain=8
            )

        assert run_program(TaskProgram(main)).value == sum(range(100))

    def test_max(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]

        def main(ctx):
            return parallel_reduce(
                ctx,
                0,
                len(values),
                lambda c, i: c.read(("v", i)),
                max,
                float("-inf"),
                grain=2,
            )

        program = TaskProgram(
            main, initial_memory={("v", i): v for i, v in enumerate(values)}
        )
        assert run_program(program).value == 9

    def test_empty_range_returns_identity(self):
        def main(ctx):
            return parallel_reduce(ctx, 3, 3, lambda c, i: i, max, -1)

        assert run_program(TaskProgram(main)).value == -1

    def test_reduction_is_race_free(self):
        """The template's partial-result tree must not itself violate."""

        def main(ctx):
            return parallel_reduce(
                ctx, 0, 16, lambda c, i: i * i, lambda a, b: a + b, 0, grain=2
            )

        checker = OptAtomicityChecker()
        result = run_program(TaskProgram(main), observers=[checker])
        assert result.value == sum(i * i for i in range(16))
        assert not checker.report

    def test_nested_reductions(self):
        def main(ctx):
            def row_sum(c, row):
                return parallel_reduce(
                    c, 0, 4, lambda cc, col: row * 10 + col, lambda a, b: a + b, 0
                )

            return parallel_reduce(ctx, 0, 3, row_sum, lambda a, b: a + b, 0)

        expected = sum(row * 10 + col for row in range(3) for col in range(4))
        assert run_program(TaskProgram(main)).value == expected


class TestParallelInvoke:
    def test_all_bodies_run(self):
        def main(ctx):
            parallel_invoke(
                ctx,
                lambda c: c.write("a", 1),
                lambda c: c.write("b", 2),
                lambda c: c.write("c", 3),
            )
            return ctx.read("a") + ctx.read("b") + ctx.read("c")

        assert run_program(TaskProgram(main)).value == 6

    def test_bodies_are_parallel(self):
        def rmw(c):
            value = c.read("X")
            c.write("X", value + 1)

        def main(ctx):
            parallel_invoke(ctx, rmw, rmw)

        checker = OptAtomicityChecker()
        run_program(TaskProgram(main), observers=[checker])
        assert checker.report.locations() == ["X"]

    def test_no_bodies(self):
        def main(ctx):
            parallel_invoke(ctx)
            return 1

        assert run_program(TaskProgram(main)).value == 1


class TestParallelPipeline:
    def test_values_flow_through_stages(self):
        def main(ctx):
            return parallel_pipeline(
                ctx,
                [1, 2, 3, 4],
                [
                    lambda c, x: x * 10,
                    lambda c, x: x + 1,
                ],
            )

        assert run_program(TaskProgram(main)).value == [11, 21, 31, 41]

    def test_no_stages_is_identity(self):
        def main(ctx):
            return parallel_pipeline(ctx, [1, 2], [])

        assert run_program(TaskProgram(main)).value == [1, 2]

    def test_window_bounds_concurrency(self):
        def main(ctx):
            return parallel_pipeline(
                ctx,
                list(range(6)),
                [lambda c, x: x + 100],
                max_in_flight=2,
            )

        assert run_program(TaskProgram(main)).value == [100 + i for i in range(6)]

    def test_shared_stage_state_is_checked(self):
        """A stage that read-modify-writes a shared counter violates."""

        def count_stage(c, x):
            seen = c.read("count")
            c.write("count", seen + 1)
            return x

        def main(ctx):
            parallel_pipeline(ctx, [1, 2, 3], [count_stage])

        checker = OptAtomicityChecker()
        run_program(TaskProgram(main), observers=[checker])
        assert checker.report.locations() == ["count"]

    def test_invalid_window(self):
        def main(ctx):
            parallel_pipeline(ctx, [1], [lambda c, x: x], max_in_flight=0)

        with pytest.raises(RuntimeUsageError):
            run_program(TaskProgram(main))
