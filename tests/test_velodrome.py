"""Velodrome baseline: trace-sensitive cycle detection."""

import pytest

from repro.checker import VelodromeChecker
from repro.dpst import ArrayDPST
from repro.report import READ, WRITE
from repro.runtime import SerialExecutor, TaskProgram, run_program
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events

from tests.conftest import build_figure2


def mem(seq, task, step, loc, access, lockset=()):
    return MemoryEvent(seq, task, step, loc, access, lockset)


@pytest.fixture
def fig2():
    tree = ArrayDPST()
    s11, f12, a2, s2, s12, a3, s3 = build_figure2(tree)
    return tree, s2, s3


class TestCycleDetection:
    def test_interleaved_rmw_is_a_cycle(self, fig2):
        """W(s3) between R(s2) and W(s2): edges s2->s3 (R->W) and s3->s2."""
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 3, s3, "X", WRITE),
            mem(2, 2, s2, "X", WRITE),
        ]
        checker = VelodromeChecker()
        replay_memory_events(events, checker)
        assert len(checker.report.cycles) == 1
        cycle = checker.report.cycles[0]
        assert set(cycle.cycle) >= {s2, s3}

    def test_serial_trace_is_clean(self, fig2):
        """Steps executing atomically produce an acyclic conflict graph."""
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s2, "X", WRITE),
            mem(2, 3, s3, "X", WRITE),
        ]
        checker = VelodromeChecker()
        replay_memory_events(events, checker)
        assert not checker.report

    def test_write_read_write_cycle(self, fig2):
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "X", WRITE),
            mem(1, 3, s3, "X", READ),
            mem(2, 2, s2, "X", WRITE),
        ]
        checker = VelodromeChecker()
        replay_memory_events(events, checker)
        assert len(checker.report.cycles) == 1

    def test_two_location_cycle(self, fig2):
        """Velodrome sees multi-variable cycles without any group annotation."""
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "X", WRITE),
            mem(1, 3, s3, "X", WRITE),   # s2 -> s3 on X
            mem(2, 3, s3, "Y", WRITE),
            mem(3, 2, s2, "Y", WRITE),   # s3 -> s2 on Y: cycle
        ]
        checker = VelodromeChecker()
        replay_memory_events(events, checker)
        assert len(checker.report.cycles) == 1

    def test_read_read_no_conflict(self, fig2):
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 3, s3, "X", READ),
            mem(2, 2, s2, "X", READ),
        ]
        checker = VelodromeChecker()
        replay_memory_events(events, checker)
        assert not checker.report
        assert checker.edge_count >= 0


class TestTraceSensitivity:
    """The paper's Figure 13 contrast: Velodrome misses what the optimized
    checker finds, unless the bad schedule actually runs."""

    def make_program(self):
        def rmw(ctx):
            value = ctx.read("X")
            ctx.write("X", value + 1)

        def main(ctx):
            ctx.spawn(rmw)
            ctx.spawn(rmw)
            ctx.sync()

        return TaskProgram(main)

    def test_quiet_on_serial_execution(self):
        result = run_program(
            self.make_program(),
            executor=SerialExecutor(),
            observers=[VelodromeChecker()],
        )
        assert not result.report()

    def test_quiet_on_any_serial_policy(self):
        for executor in (
            SerialExecutor(policy="help_first", order="fifo"),
            SerialExecutor(policy="help_first", order="lifo"),
        ):
            result = run_program(
                self.make_program(), executor=executor, observers=[VelodromeChecker()]
            )
            assert not result.report()


class TestGraphBookkeeping:
    def test_program_order_edges_counted(self, fig2):
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "X", READ),
            mem(1, 2, s3, "Y", READ),  # same task id 2, new step: PO edge
        ]
        checker = VelodromeChecker()
        replay_memory_events(events, checker)
        assert checker.edge_count == 1

    def test_transaction_count(self, fig2):
        tree, s2, s3 = fig2
        events = [
            mem(0, 2, s2, "X", WRITE),
            mem(1, 3, s3, "X", WRITE),
        ]
        checker = VelodromeChecker()
        replay_memory_events(events, checker)
        assert checker.transaction_count() == 2
