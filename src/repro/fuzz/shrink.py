"""Delta-debugging shrinker: reduce a disagreeing program to a minimal case.

Given a spec tree and a predicate ("does this spec still trigger the
failure?"), :func:`shrink_spec` greedily applies structure-preserving
reductions until none applies:

* **drop-spawn** -- delete a whole child task subtree;
* **inline-spawn** -- replace a spawn with its body run sequentially
  (removes parallelism while keeping the accesses);
* **collapse-finish** -- splice a finish scope's items into its parent;
* **unwrap-locked** -- splice a critical section's accesses out of the
  lock;
* **drop-sync** -- delete a sync;
* **drop-access** -- delete a single access.

Every candidate that still satisfies the predicate is accepted and the
scan restarts, so the result is a 1-minimal reproducer: removing any
single structural element makes the failure disappear.  The reductions
only rearrange/remove well-formed nodes, so every intermediate spec is a
valid, runnable, lintable program.

:func:`reproducer_source` renders the shrunk spec as a self-contained,
ready-to-paste pytest case that re-runs the differential oracle -- the
artifact the ``fuzz-smoke`` CI job uploads when a run disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.fuzz.generate import spec_access_count, spec_task_count
from repro.trace.generator import Spec

Predicate = Callable[[Spec], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    spec: Spec
    #: Accepted reductions (each made the spec strictly smaller).
    steps: int
    #: Candidate specs tried (predicate evaluations beyond the initial one).
    attempts: int
    #: ``access`` nodes remaining -- the memory events of one run.
    events: int
    #: Spawn nodes remaining.
    tasks: int
    #: Reduction kinds applied, in order (for diagnostics).
    trail: List[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"shrunk to {self.events} event(s) / {self.tasks} task(s) in "
            f"{self.steps} step(s) ({self.attempts} candidate(s) tried)"
        )


def shrink_spec(
    spec: Spec,
    predicate: Predicate,
    max_attempts: int = 5000,
    recorder: Any = None,
) -> ShrinkResult:
    """Greedily minimize *spec* while *predicate* keeps holding.

    The caller must ensure ``predicate(spec)`` is true on entry (the
    function asserts it -- shrinking a non-failure is a harness bug).
    *max_attempts* bounds total predicate evaluations; the best spec so
    far is returned when the budget runs out.  An enabled *recorder*
    accumulates the ``fuzz.shrink_steps`` metric.
    """
    if not predicate(spec):
        raise ValueError("shrink_spec needs a spec that satisfies the predicate")
    steps = 0
    attempts = 0
    trail: List[str] = []
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for kind, candidate in _reductions(spec):
            attempts += 1
            if attempts > max_attempts:
                break
            if predicate(candidate):
                spec = candidate
                steps += 1
                trail.append(kind)
                progress = True
                break  # restart the scan from the smaller spec
    if recorder is not None and recorder.enabled:
        recorder.count("fuzz.shrink_steps", steps)
    return ShrinkResult(
        spec=spec,
        steps=steps,
        attempts=attempts,
        events=spec_access_count(spec),
        tasks=spec_task_count(spec),
        trail=trail,
    )


# ---------------------------------------------------------------------------
# Reduction enumeration
# ---------------------------------------------------------------------------


def _reductions(spec: Spec) -> Iterator[Tuple[str, Spec]]:
    """Yield ``(kind, smaller_spec)`` candidates, coarsest-first.

    Coarse reductions (dropping whole tasks) come before fine ones
    (single accesses) so big irrelevant chunks disappear in few steps.
    """
    root_items = spec[1]
    for kind in (
        "drop-spawn",
        "collapse-finish",
        "unwrap-locked",
        "drop-sync",
        "inline-spawn",
        "drop-access",
    ):
        for new_items in _reduce_items(root_items, kind):
            yield kind, ("task", new_items)


def _reduce_items(
    items: Sequence[Spec], kind: str
) -> Iterator[Tuple[Spec, ...]]:
    """All single applications of *kind* anywhere under *items*."""
    for index, item in enumerate(items):
        tag = item[0]
        # Apply at this node.
        if kind == "drop-spawn" and tag == "spawn":
            yield _splice(items, index, ())
        elif kind == "inline-spawn" and tag == "spawn":
            yield _splice(items, index, item[1])
        elif kind == "collapse-finish" and tag == "finish":
            yield _splice(items, index, item[1])
        elif kind == "unwrap-locked" and tag == "locked":
            yield _splice(items, index, item[2])
        elif kind == "drop-sync" and tag == "sync":
            yield _splice(items, index, ())
        elif kind == "drop-access" and tag == "access":
            yield _splice(items, index, ())
        # Recurse into composite children.
        if tag in ("spawn", "finish"):
            for inner in _reduce_items(item[1], kind):
                yield _splice(items, index, ((tag, inner),))
        elif tag == "locked":
            for inner in _reduce_items(item[2], kind):
                yield _splice(items, index, (("locked", item[1], inner),))


def _splice(
    items: Sequence[Spec], index: int, replacement: Sequence[Spec]
) -> Tuple[Spec, ...]:
    return tuple(items[:index]) + tuple(replacement) + tuple(items[index + 1 :])


# ---------------------------------------------------------------------------
# Reproducer rendering
# ---------------------------------------------------------------------------

_TEMPLATE = '''\
"""Shrunk differential-fuzzing reproducer (seed {seed}).

Generated by ``repro fuzz --shrink``; paste into the test suite as-is.
The spec below is 1-minimal: removing any structural element makes the
oracle disagreement disappear.
"""

from repro.fuzz.oracle import check_spec

SPEC = {spec}


def {name}():
    outcome = check_spec(SPEC, seed={seed}, jobs={jobs})
    assert outcome.ok, outcome.describe()
'''


def reproducer_source(
    spec: Spec,
    seed: Optional[int] = None,
    jobs: int = 4,
    name: Optional[str] = None,
) -> str:
    """A self-contained pytest case re-running the oracle on *spec*.

    The spec's ``repr`` is valid Python (plain nested tuples), so the
    emitted module imports nothing but the oracle.
    """
    test_name = name or (
        f"test_fuzz_reproducer_seed_{seed}" if seed is not None else "test_fuzz_reproducer"
    )
    return _TEMPLATE.format(
        seed=seed, spec=_format_spec(spec), jobs=jobs, name=test_name
    )


def _format_spec(spec: Spec, indent: int = 0) -> str:
    """Pretty multi-line repr: one structural node per line."""
    pad = "    " * indent
    tag = spec[0]
    if tag in ("access", "sync"):
        return repr(spec)
    if tag == "task" or tag == "spawn" or tag == "finish":
        inner = ",\n".join(
            pad + "    " + _format_spec(item, indent + 1) for item in spec[1]
        )
        trailing = "," if len(spec[1]) == 1 else ""
        if not inner:
            return f"({tag!r}, ())"
        return f"({tag!r}, (\n{inner}{trailing}\n{pad}))"
    if tag == "locked":
        inner = ",\n".join(
            pad + "    " + _format_spec(item, indent + 1) for item in spec[2]
        )
        trailing = "," if len(spec[2]) == 1 else ""
        if not inner:
            return f"('locked', {spec[1]!r}, ())"
        return f"('locked', {spec[1]!r}, (\n{inner}{trailing}\n{pad}))"
    return repr(spec)
