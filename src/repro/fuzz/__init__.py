"""repro.fuzz -- the differential fuzzing subsystem.

The paper's central claim is *schedule insensitivity*: the checker
reports the same unserializable patterns (Fig. 4) for every schedule of
a given input.  The reproduction, meanwhile, has grown five independent
ways to compute a verdict -- basic vs optimized checkers, LCA vs label
parallelism engines, in-process vs location-sharded (``jobs>1``)
checking, static-prefilter on vs off, and record -> replay round-trips
-- all of which must agree.  This package is the standing correctness
harness that cross-checks them on randomized inputs, in the tradition of
RegionTrack's and the vector-clock atomicity line's randomized-trace
validation:

* :mod:`repro.fuzz.generate` -- a seeded random task-parallel program
  generator emitting valid spawn/sync/finish structures with nested
  finishes, ``parallel_for``/``reduce`` templates, shared-location
  reads/writes and balanced lock acquire/release pairs.  Deterministic
  from a seed; parameterized by depth, task count, location count, and
  lock density (:class:`~repro.fuzz.generate.FuzzConfig`).
* :mod:`repro.fuzz.oracle` -- the differential oracle: one generated
  program, every configuration of the matrix, any disagreement in
  normalized violation sets reported with full provenance
  (:func:`~repro.fuzz.oracle.check_spec`).
* :mod:`repro.fuzz.shrink` -- a delta-debugging shrinker that reduces a
  disagreeing program to a minimal reproducer (drop tasks, drop
  accesses, collapse finish scopes, unwrap critical sections) and
  renders it as a ready-to-paste pytest case
  (:func:`~repro.fuzz.shrink.shrink_spec`,
  :func:`~repro.fuzz.shrink.reproducer_source`).
* :mod:`repro.fuzz.harness` -- the campaign driver behind the
  ``repro fuzz`` CLI subcommand and the ``fuzz-smoke`` CI job
  (:func:`~repro.fuzz.harness.run_campaign`).

Quick use::

    from repro.fuzz import FuzzConfig, run_campaign

    summary = run_campaign(FuzzConfig(), runs=200, base_seed=1)
    assert summary.ok, summary.describe()
"""

from repro.fuzz.generate import (
    FuzzConfig,
    ProgramGenerator,
    program_from_spec,
    spec_access_count,
    spec_locations,
)
from repro.fuzz.harness import FuzzSummary, run_campaign
from repro.fuzz.oracle import Disagreement, OracleOutcome, check_seed, check_spec
from repro.fuzz.shrink import ShrinkResult, reproducer_source, shrink_spec

__all__ = [
    "Disagreement",
    "FuzzConfig",
    "FuzzSummary",
    "OracleOutcome",
    "ProgramGenerator",
    "ShrinkResult",
    "check_seed",
    "check_spec",
    "program_from_spec",
    "reproducer_source",
    "run_campaign",
    "shrink_spec",
    "spec_access_count",
    "spec_locations",
]
