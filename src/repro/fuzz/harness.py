"""The fuzzing campaign driver behind ``repro fuzz`` and CI's fuzz-smoke.

:func:`run_campaign` derives one sub-seed per run from the base seed
(deterministically -- the whole campaign is reproducible from
``--seed``), generates a program, pushes it through the differential
oracle, and optionally shrinks every disagreement into a ready-to-paste
pytest reproducer.  Observability rides along through the standard
:class:`repro.obs.Recorder` protocol under the ``fuzz.*`` metric names.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fuzz.generate import FuzzConfig, ProgramGenerator
from repro.fuzz.oracle import OracleOutcome, check_spec
from repro.fuzz.shrink import ShrinkResult, reproducer_source, shrink_spec


@dataclass
class FuzzSummary:
    """Aggregate outcome of one fuzzing campaign."""

    base_seed: int
    runs: int
    config: FuzzConfig
    jobs: int
    #: Total memory events checked across all runs.
    events: int = 0
    elapsed_s: float = 0.0
    #: Failing outcomes, in discovery order.
    failures: List[OracleOutcome] = field(default_factory=list)
    #: seed -> (shrink result, reproducer module source).
    reproducers: Dict[int, Tuple[ShrinkResult, str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def disagreements(self) -> int:
        return sum(len(outcome.disagreements) for outcome in self.failures)

    def describe(self) -> str:
        head = (
            f"fuzz campaign: {self.runs} run(s) from seed {self.base_seed}, "
            f"{self.events} event(s) checked in {self.elapsed_s:.1f}s"
        )
        if self.ok:
            return f"{head}\nall configurations agree"
        lines = [head, f"{self.disagreements} disagreement(s):"]
        for outcome in self.failures:
            lines.append(outcome.describe())
            shrunk = self.reproducers.get(outcome.seed or -1)
            if shrunk is not None:
                lines.append(f"  {shrunk[0].describe()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "runs": self.runs,
            "jobs": self.jobs,
            "config": self.config.to_dict(),
            "events": self.events,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "disagreements": self.disagreements,
            "failures": [outcome.to_dict() for outcome in self.failures],
            "reproducers": {
                str(seed): {
                    "steps": result.steps,
                    "events": result.events,
                    "tasks": result.tasks,
                    "source": source,
                }
                for seed, (result, source) in self.reproducers.items()
            },
        }


def campaign_seeds(base_seed: int, runs: int) -> List[int]:
    """The per-run seeds of a campaign: deterministic in *base_seed*."""
    rng = random.Random(base_seed)
    return [rng.randrange(2**32) for _ in range(runs)]


def run_campaign(
    config: Optional[FuzzConfig] = None,
    runs: int = 100,
    base_seed: int = 1,
    jobs: int = 4,
    shrink: bool = False,
    recorder: Any = None,
    max_failures: int = 5,
    progress: Optional[Callable[[int, OracleOutcome], None]] = None,
    engine: str = "lca",
) -> FuzzSummary:
    """Fuzz *runs* programs; return the campaign summary.

    Stops collecting (but keeps counting) after *max_failures* failing
    programs so a systematically broken configuration cannot turn one
    campaign into thousands of shrink jobs.  *progress*, when given, is
    called after every run with ``(index, outcome)``.  *engine* selects
    the oracle's reference parallelism engine (every other registered
    engine is compared against it regardless).
    """
    config = config or FuzzConfig()
    generator = ProgramGenerator(config)
    summary = FuzzSummary(
        base_seed=base_seed, runs=runs, config=config, jobs=jobs
    )
    started = time.perf_counter()
    for index, seed in enumerate(campaign_seeds(base_seed, runs)):
        spec = generator.generate_spec(seed)
        outcome = check_spec(
            spec, seed=seed, jobs=jobs, recorder=recorder, engine=engine
        )
        summary.events += outcome.events
        if not outcome.ok and len(summary.failures) < max_failures:
            summary.failures.append(outcome)
            if shrink:
                result = shrink_disagreement(
                    outcome, jobs=jobs, recorder=recorder, engine=engine
                )
                summary.reproducers[seed] = (
                    result,
                    reproducer_source(result.spec, seed=seed, jobs=jobs),
                )
        if progress is not None:
            progress(index, outcome)
    summary.elapsed_s = time.perf_counter() - started
    return summary


def shrink_disagreement(
    outcome: OracleOutcome,
    jobs: int = 4,
    recorder: Any = None,
    max_attempts: int = 5000,
    engine: str = "lca",
) -> ShrinkResult:
    """Reduce a failing outcome's spec to a 1-minimal disagreement."""

    def still_fails(spec: Any) -> bool:
        return not check_spec(
            spec, seed=outcome.seed, jobs=jobs, recorder=None, engine=engine
        ).ok

    return shrink_spec(
        outcome.spec, still_fails, max_attempts=max_attempts, recorder=recorder
    )
