"""The differential oracle: every checking configuration must agree.

One generated program is recorded once (deterministic serial schedule)
and the resulting trace is pushed through the full configuration matrix:

===================  ====================================================
leg                  configuration
===================  ====================================================
``reference``        optimized checker (thorough), reference engine
                     (default LCA), ``jobs=1``
``<engine>-engine``  same checker under every *other* registered
                     parallelism engine (``labels-engine``,
                     ``vc-engine``, ``depa-engine``, ... -- derived from
                     :func:`repro.dpst.engines.available_engines`, so
                     registering an engine automatically extends the
                     matrix)
``sharded-jobs4``    same checker through the location-sharded pipeline
``prefilter``        same checker with the static prefilter applied
                     (the spec is exactly lintable, so refusals are rare
                     and recorded, never silent)
``prefilter-``       same checker with a *deliberately degraded* lint
``poisoned``         report: one location carries an injected localized
                     poison note, so the per-location prefilter drops
                     events for the remaining proven-serial locations
                     only -- partial filtering soundness, machine-checked
                     on every program
``replay``           JSONL record -> replay round-trip of the trace
``columnar``         binary columnar (v3) record -> replay round-trip --
                     the machine check that v2 and v3 serialization
                     produce identical reports
``cached``           the content-addressed result cache: the trace is
                     checked twice through one cache directory; the
                     second check must be a *hit* and the served report
                     must equal both the fresh result and the reference
``streaming-w1``     the streaming checker over the same trace at
``streaming-w8``     compaction windows 1, 8, 64 and unbounded
``streaming-w64``    (``window=0``) -- the machine check that windowed
``streaming-winf``   eviction is observationally invisible at *every*
                     window, not just the default
``basic``            the paper's Figure 3 reference checker
``regiontrack-``     the sound-and-complete RegionTrack-style baseline
``precision``        (arXiv:2008.04479): the optimized checker must
                     implicate exactly the locations the complete
                     reference does -- the precision half of the oracle
                     sandwich (velodrome <= optimized <= regiontrack)
``paper-mode``       optimized checker in published-pseudocode mode
``schedule:*``       fresh executions under other schedules
===================  ====================================================

The legs above ``basic`` replay the *same* trace, so their reports must
match **triple-for-triple** (:func:`repro.report.normalize_report`).
The ``basic`` and ``regiontrack-precision`` legs must agree on the
*locations* implicated (:func:`repro.report.normalized_locations`):
they surface the same errors but may pick different witness triples.  ``paper-mode``
may under-report only in the documented corner topologies, so its
locations must be a *subset* of the reference.  The ``schedule:*`` legs
re-execute the program -- step node ids are schedule-dependent, but the
paper's central claim is that the implicated locations are not.

Any broken expectation becomes a :class:`Disagreement` carrying full
provenance: the seed, the spec, both configurations, and both normalized
verdicts -- everything the shrinker needs to reduce it and everything a
human needs to reproduce it.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.dpst.engines import available_engines
from repro.fuzz.generate import (
    FuzzConfig,
    ProgramGenerator,
    program_from_spec,
    spec_access_count,
)
from repro.report import (
    ViolationReport,
    normalize_report,
    normalized_locations,
)
from repro.runtime.executor import RandomOrderExecutor, SerialExecutor
from repro.runtime.program import run_program
from repro.session import CheckSession
from repro.trace.generator import Spec
from repro.trace.replay import replay_trace
from repro.trace.serialize import dump_trace

def exact_legs(reference: str = "lca") -> Tuple[str, ...]:
    """Leg names compared triple-for-triple against the reference.

    Derived from the engine registry: every registered engine other than
    *reference* contributes an ``<name>-engine`` leg.
    """
    engines = tuple(
        f"{name}-engine" for name in available_engines() if name != reference
    )
    return engines + (
        "sharded-jobs4",
        "prefilter",
        "prefilter-poisoned",
        "replay",
        "columnar",
        "cached",
        "streaming-w1",
        "streaming-w8",
        "streaming-w64",
        "streaming-winf",
    )


#: Leg names compared triple-for-triple against the default reference
#: (kept for existing callers; prefer :func:`exact_legs`).
EXACT_LEGS = exact_legs()


@dataclass(frozen=True)
class Disagreement:
    """One broken equivalence, with everything needed to reproduce it."""

    seed: Optional[int]
    left: str
    right: str
    #: ``"triples"`` (exact normal forms), ``"locations"`` (implicated
    #: location sets) or ``"subset"`` (right must be contained in left).
    level: str
    left_value: Any
    right_value: Any
    spec: Spec

    def describe(self) -> str:
        lines = [
            f"oracle disagreement (seed={self.seed}): "
            f"{self.left!r} vs {self.right!r} at {self.level} level",
            f"  {self.left}: {self.left_value!r}",
            f"  {self.right}: {self.right_value!r}",
            f"  spec: {self.spec!r}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "left": self.left,
            "right": self.right,
            "level": self.level,
            "left_value": _jsonable(self.left_value),
            "right_value": _jsonable(self.right_value),
            "spec": _jsonable(self.spec),
        }


@dataclass
class OracleOutcome:
    """Everything one oracle pass computed about one program."""

    seed: Optional[int]
    spec: Spec
    #: Memory events in the reference trace.
    events: int
    #: Leg name -> normalized verdict (normal form or location tuple).
    verdicts: Dict[str, Any] = field(default_factory=dict)
    #: Notes per leg (e.g. the prefilter decision); never silent.
    notes: Dict[str, str] = field(default_factory=dict)
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def describe(self) -> str:
        if self.ok:
            return (
                f"oracle ok (seed={self.seed}): {len(self.verdicts)} legs "
                f"agree over {self.events} events"
            )
        return "\n".join(d.describe() for d in self.disagreements)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "events": self.events,
            "ok": self.ok,
            "spec": _jsonable(self.spec),
            "notes": dict(self.notes),
            "disagreements": [d.to_dict() for d in self.disagreements],
        }


def check_seed(
    seed: int,
    config: Optional[FuzzConfig] = None,
    jobs: int = 4,
    recorder: Any = None,
    engine: str = "lca",
) -> OracleOutcome:
    """Generate the program for *seed* and run the full matrix over it."""
    spec = ProgramGenerator(config).generate_spec(seed)
    return check_spec(spec, seed=seed, jobs=jobs, recorder=recorder, engine=engine)


def check_spec(
    spec: Spec,
    seed: Optional[int] = None,
    jobs: int = 4,
    recorder: Any = None,
    extra_checkers: Optional[Mapping[str, Callable[[], Any]]] = None,
    schedules: bool = True,
    engine: str = "lca",
) -> OracleOutcome:
    """Run the differential matrix over one spec tree.

    *jobs* sizes the sharded leg (``<= 1`` skips it).  *extra_checkers*
    maps names to zero-argument checker factories compared at the
    *location* level against the reference -- the hook the harness's own
    guard tests use to prove a deliberately broken checker is caught.
    *schedules* toggles the re-execution legs (the shrinker turns them
    off while bisecting trace-level disagreements, for speed).  *engine*
    picks the reference parallelism engine; every *other* registered
    engine gets its own exact-comparison leg regardless.
    """
    program = program_from_spec(
        spec, name=f"fuzz(seed={seed})" if seed is not None else "fuzz(spec)"
    )
    result = run_program(program, executor=SerialExecutor(), record_trace=True)
    trace = result.trace
    outcome = OracleOutcome(seed=seed, spec=spec, events=len(trace.memory_events()))

    session = CheckSession(trace, checker="optimized", jobs=1, engine=engine)
    reference = session.check(mode="thorough")
    ref_normal = normalize_report(reference)
    ref_locations = normalized_locations(reference)
    outcome.verdicts["reference"] = ref_normal

    def exact(name: str, report: ViolationReport) -> None:
        normal = normalize_report(report)
        outcome.verdicts[name] = normal
        if normal != ref_normal:
            outcome.disagreements.append(
                Disagreement(
                    seed, "reference", name, "triples", ref_normal, normal, spec
                )
            )

    def by_locations(name: str, report: ViolationReport) -> None:
        locations = normalized_locations(report)
        outcome.verdicts[name] = locations
        if locations != ref_locations:
            outcome.disagreements.append(
                Disagreement(
                    seed,
                    "reference",
                    name,
                    "locations",
                    ref_locations,
                    locations,
                    spec,
                )
            )

    # -- same-trace legs: must match triple-for-triple -------------------
    # One leg per registered engine other than the reference: the machine
    # check that LCA = labels = vc = depa (and any third-party engine).
    for other in available_engines():
        if other == engine:
            continue
        exact(f"{other}-engine", session.check(engine=other, mode="thorough"))
    if jobs and jobs > 1:
        exact(
            f"sharded-jobs{jobs}",
            session.check(jobs=jobs, mode="thorough"),
        )
    exact("prefilter", _prefilter_leg(session, spec, outcome))
    exact("prefilter-poisoned", _poisoned_prefilter_leg(session, spec, outcome))
    exact("replay", _replay_roundtrip_leg(trace))
    exact("columnar", _columnar_roundtrip_leg(trace))
    exact("cached", _cached_check_leg(trace, spec, seed, outcome))
    # Streaming at several windows, unbounded included: compaction must
    # be observationally invisible regardless of sweep cadence.
    for window, label in (
        (1, "streaming-w1"),
        (8, "streaming-w8"),
        (64, "streaming-w64"),
        (0, "streaming-winf"),
    ):
        exact(label, session.check(streaming=True, window=window, mode="thorough"))

    # -- cross-checker legs ----------------------------------------------
    by_locations("basic", session.check("basic"))
    # Precision against the sound-and-complete baseline: regiontrack
    # finds every real violation, so any location it implicates that the
    # optimized checker missed is a completeness bug -- and vice versa, a
    # location only the optimized checker reports is a false positive.
    by_locations("regiontrack-precision", session.check("regiontrack"))
    paper = session.check(mode="paper")
    paper_locations = normalized_locations(paper)
    outcome.verdicts["paper-mode"] = paper_locations
    if not set(paper_locations) <= set(ref_locations):
        outcome.disagreements.append(
            Disagreement(
                seed,
                "reference",
                "paper-mode",
                "subset",
                ref_locations,
                paper_locations,
                spec,
            )
        )

    for name, factory in (extra_checkers or {}).items():
        by_locations(name, replay_trace(trace, factory()))

    # -- fresh-execution legs: locations are schedule-insensitive --------
    if schedules:
        for label, executor in (
            ("schedule:help-first-lifo", SerialExecutor(policy="help_first", order="lifo")),
            ("schedule:random", RandomOrderExecutor(seed=(seed or 0) ^ 0xBEEF)),
        ):
            checker = OptAtomicityChecker(mode="thorough")
            run_program(program, executor=executor, observers=[checker])
            locations = normalized_locations(checker.report)
            outcome.verdicts[label] = locations
            if locations != ref_locations:
                outcome.disagreements.append(
                    Disagreement(
                        seed,
                        "reference",
                        label,
                        "locations",
                        ref_locations,
                        locations,
                        spec,
                    )
                )

    if recorder is not None and recorder.enabled:
        recorder.count("fuzz.runs")
        recorder.count("fuzz.comparisons", max(0, len(outcome.verdicts) - 1))
        recorder.count("fuzz.events_checked", outcome.events)
        if not outcome.ok:
            recorder.count("fuzz.disagreements", len(outcome.disagreements))
    return outcome


def _prefilter_leg(
    session: CheckSession, spec: Spec, outcome: OracleOutcome
) -> ViolationReport:
    """The static-prefilter-on leg; the decision lands in ``notes``."""
    from repro.static.lint import lint_spec

    lint = lint_spec(spec)
    report = session.check(static_prefilter=lint, mode="thorough")
    info = session.prefilter_info or {}
    outcome.notes["prefilter"] = (
        f"applied={info.get('applied')} "
        f"proven={len(lint.prefilter_locations())} "
        f"poisoned={len(lint.poisoned_locations)} "
        f"reason={info.get('reason', '')!r}"
    )
    return report


def _poisoned_prefilter_leg(
    session: CheckSession, spec: Spec, outcome: OracleOutcome
) -> ViolationReport:
    """Per-location prefilter under a deliberately imprecise lint report.

    One location of the spec is poisoned by injecting a localized
    approximation note (the mechanism a summarized recursive helper
    uses) into an otherwise-exact skeleton.  Poisoning only *shrinks*
    the filtered set, so the leg is sound by construction -- and because
    the remaining proven-serial locations still filter, every generated
    program exercises *partial* dropping, the behavior the global
    ``prefilter_safe`` gate could never reach.
    """
    from repro.fuzz.generate import spec_locations
    from repro.report import WRITE
    from repro.static.accesses import EXACT, AccessPattern
    from repro.static.lint import lint_skeleton
    from repro.static.structure import skeleton_from_spec

    skeleton = skeleton_from_spec(spec, source="<fuzz-poisoned>")
    locations = spec_locations(spec)
    if locations:
        skeleton.note(
            "recursive-inline",
            "<fuzz:poison>",
            "deliberately poisoned location (prefilter soundness leg)",
            patterns=(AccessPattern(EXACT, locations[0], WRITE),),
        )
    lint = lint_skeleton(skeleton, target="<fuzz-poisoned>")
    report = session.check(static_prefilter=lint, mode="thorough")
    info = session.prefilter_info or {}
    outcome.notes["prefilter-poisoned"] = (
        f"applied={info.get('applied')} "
        f"proven={len(lint.prefilter_locations())} "
        f"poisoned={len(lint.poisoned_locations)} "
        f"reason={info.get('reason', '')!r}"
    )
    return report


def _replay_roundtrip_leg(trace: Any) -> ViolationReport:
    """Record the trace to streaming JSONL, read it back, re-check."""
    handle, path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-fuzz-")
    os.close(handle)
    try:
        dump_trace(trace, path, format="jsonl")
        return CheckSession(path, checker="optimized", jobs=1).check(mode="thorough")
    finally:
        os.unlink(path)


def _columnar_roundtrip_leg(trace: Any) -> ViolationReport:
    """Record the trace to binary columnar v3, read it back, re-check."""
    handle, path = tempfile.mkstemp(suffix=".trc", prefix="repro-fuzz-")
    os.close(handle)
    try:
        dump_trace(trace, path, format="columnar")
        return CheckSession(path, checker="optimized", jobs=1).check(mode="thorough")
    finally:
        os.unlink(path)


def _cached_check_leg(
    trace: Any, spec: Spec, seed: Optional[int], outcome: OracleOutcome
) -> ViolationReport:
    """Check the serialized trace twice through one result cache.

    The second check must be served from the cache, and the served report
    must equal the freshly computed one; the returned (served) report is
    then exact-compared against the reference like any other leg.  A miss
    where a hit was due is itself a disagreement -- a silently dead cache
    would otherwise pass every equivalence check.
    """
    import shutil

    handle, path = tempfile.mkstemp(suffix=".trc", prefix="repro-fuzz-")
    os.close(handle)
    cache_dir = tempfile.mkdtemp(prefix="repro-fuzz-cache-")
    try:
        dump_trace(trace, path, format="columnar")
        fresh = CheckSession(path, checker="optimized", jobs=1).check(
            mode="thorough", cache_dir=cache_dir
        )
        second_session = CheckSession(path, checker="optimized", jobs=1)
        served = second_session.check(mode="thorough", cache_dir=cache_dir)
        info = second_session.cache_info or {}
        outcome.notes["cached"] = (
            f"applied={info.get('applied')} hit={info.get('hit')} "
            f"reason={info.get('reason', '')!r}"
        )
        if not info.get("hit"):
            outcome.disagreements.append(
                Disagreement(
                    seed,
                    "cached-fresh",
                    "cached",
                    "cache-hit",
                    True,
                    bool(info.get("hit")),
                    spec,
                )
            )
        if normalize_report(served) != normalize_report(fresh):
            outcome.disagreements.append(
                Disagreement(
                    seed,
                    "cached-fresh",
                    "cached",
                    "triples",
                    normalize_report(fresh),
                    normalize_report(served),
                    spec,
                )
            )
        return served
    finally:
        os.unlink(path)
        shutil.rmtree(cache_dir, ignore_errors=True)


def _jsonable(value: Any) -> Any:
    """Tuples -> lists, recursively, so provenance dumps as plain JSON."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return value
