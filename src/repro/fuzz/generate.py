"""Seeded random task-parallel program generator for differential fuzzing.

Programs are emitted as *spec trees* -- the same plain-tuple language the
trace generator (:mod:`repro.trace.generator`) and the static lint pass
(:func:`repro.static.lint.lint_spec`) already speak::

    ("task", (items...))                    the root task
    ("access", location, "read"|"write")    an instrumented access
    ("locked", lock_name, (items...))       a balanced critical section
    ("spawn", (items...))                   a child task
    ("sync",)                               wait for children
    ("finish", (items...))                  an explicit finish scope

Spec trees are printable, hashable, exactly lintable, runnable
(:func:`program_from_spec`) and structurally shrinkable
(:mod:`repro.fuzz.shrink`) -- which is what makes them the lingua franca
of the fuzzing subsystem.  On top of the primitive moves, the generator
expands two fork-join *templates* into plain spec nodes:

``parallel_for``
    a finish scope joining ``width`` iteration tasks, each touching its
    own indexed element plus (sometimes) one shared location;
``reduce``
    ``width`` tasks performing a read-modify-write on one accumulator
    (optionally under a lock), joined by a sync, followed by a read of
    the result in the parent.

Every random decision flows through one injected ``random.Random(seed)``
instance, so ``generate_spec(seed)`` is a pure function of the seed and
the :class:`FuzzConfig` -- the property the oracle's provenance and the
shrinker's reproducers rely on.  Locks only ever appear as balanced
``locked`` blocks that contain no ``spawn``, so generated programs can
never self-deadlock under the child-first serial executor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.checker.annotations import AtomicAnnotations
from repro.runtime.program import TaskProgram
from repro.trace.generator import Spec, _run_items

Location = Hashable


@dataclass
class FuzzConfig:
    """Knobs of the fuzzing program generator.

    ``tasks`` bounds the number of *spawned* tasks (the root is free);
    ``depth`` bounds spawn nesting; ``locations`` shared scalars named
    ``("g", i)`` are drawn uniformly; ``lock_density`` is the fraction of
    locations protected by one of the ``locks`` program locks.
    """

    tasks: int = 6
    depth: int = 3
    locations: int = 3
    accesses_per_task: int = 4
    locks: int = 2
    lock_density: float = 0.4
    write_probability: float = 0.5
    sync_probability: float = 0.3
    finish_probability: float = 0.25
    #: Probability that a spawn slot expands a parallel_for/reduce
    #: template instead of a single child task.
    template_probability: float = 0.3
    #: Maximum width of a template (iterations / reducers).
    fanout: int = 3
    #: Fixed lock per location (the discipline under which the paper's
    #: lock rule is complete); ``False`` generates ad-hoc critical
    #: sections instead.
    consistent_locking: bool = True
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for provenance records and ``--json`` output."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ProgramGenerator:
    """Generates random task-parallel spec trees from a :class:`FuzzConfig`."""

    def __init__(self, config: Optional[FuzzConfig] = None) -> None:
        self.config = config or FuzzConfig()

    # -- spec generation ---------------------------------------------------

    def generate_spec(self, seed: Optional[int] = None) -> Spec:
        """The root task's spec tree, deterministic in the seed."""
        config = self.config
        rng = random.Random(config.seed if seed is None else seed)
        budget = [max(0, config.tasks)]
        locks = self._assign_locks(rng)
        items = self._gen_task(rng, budget, depth=0, location_lock=locks)
        if not _has_access(items):
            # Degenerate draws still have to be checkable programs.
            items = items + [self._gen_access(rng, locks)]
        return ("task", tuple(items))

    def generate_program(self, seed: Optional[int] = None) -> TaskProgram:
        """Generate a random runnable :class:`TaskProgram`."""
        actual = self.config.seed if seed is None else seed
        return program_from_spec(
            self.generate_spec(actual), name=f"fuzz(seed={actual})"
        )

    # -- internals ---------------------------------------------------------

    def _assign_locks(self, rng: random.Random) -> Dict[Location, Optional[str]]:
        config = self.config
        assignment: Dict[Location, Optional[str]] = {}
        for index in range(max(1, config.locations)):
            location = ("g", index)
            if config.locks > 0 and rng.random() < config.lock_density:
                assignment[location] = f"L{rng.randrange(config.locks)}"
            else:
                assignment[location] = None
        return assignment

    def _gen_task(
        self,
        rng: random.Random,
        budget: List[int],
        depth: int,
        location_lock: Dict[Location, Optional[str]],
    ) -> List[Spec]:
        """One task's body: shuffled accesses, spawns, templates, syncs."""
        config = self.config
        body: List[Spec] = []
        actions = ["access"] * rng.randint(1, max(1, config.accesses_per_task))
        if depth < config.depth and budget[0] > 0:
            actions += ["spawn"] * rng.randint(0, 2)
            actions += ["template"] * (1 if rng.random() < config.template_probability else 0)
        rng.shuffle(actions)
        spawned_since_sync = False
        for action in actions:
            if action == "access":
                body.append(self._gen_access(rng, location_lock))
            elif action == "spawn" and budget[0] > 0:
                budget[0] -= 1
                child = self._gen_task(rng, budget, depth + 1, location_lock)
                spawn_spec: Spec = ("spawn", tuple(child))
                if rng.random() < config.finish_probability:
                    body.append(("finish", (spawn_spec,)))
                else:
                    body.append(spawn_spec)
                    spawned_since_sync = True
                if spawned_since_sync and rng.random() < config.sync_probability:
                    body.append(("sync",))
                    spawned_since_sync = False
            elif action == "template" and budget[0] > 0:
                template = rng.choice(("parallel_for", "reduce"))
                if template == "parallel_for":
                    body.extend(self._gen_parallel_for(rng, budget, depth, location_lock))
                else:
                    body.extend(self._gen_reduce(rng, budget, location_lock))
                spawned_since_sync = False
        if spawned_since_sync and depth > 0 and rng.random() < config.sync_probability:
            body.append(("sync",))
        return body

    def _gen_access(
        self,
        rng: random.Random,
        location_lock: Dict[Location, Optional[str]],
    ) -> Spec:
        config = self.config
        location = ("g", rng.randrange(max(1, config.locations)))
        kind = "write" if rng.random() < config.write_probability else "read"
        access: Spec = ("access", location, kind)
        if config.consistent_locking:
            lock = location_lock.get(location)
        elif config.locks > 0 and rng.random() < config.lock_density:
            lock = f"L{rng.randrange(config.locks)}"
        else:
            lock = None
        if lock is None:
            return access
        # Sometimes widen the critical section into a read-modify-write.
        if rng.random() < 0.5:
            return ("locked", lock, (("access", location, "read"), ("access", location, "write")))
        return ("locked", lock, (access,))

    def _gen_parallel_for(
        self,
        rng: random.Random,
        budget: List[int],
        depth: int,
        location_lock: Dict[Location, Optional[str]],
    ) -> List[Spec]:
        """A finish scope joining ``width`` iteration tasks."""
        config = self.config
        width = min(budget[0], rng.randint(2, max(2, config.fanout)))
        if width <= 0:
            return []
        budget[0] -= width
        shared = rng.random() < 0.5
        iterations: List[Spec] = []
        for index in range(width):
            element: Spec = ("access", ("g", index % max(1, config.locations)), "write")
            items: List[Spec] = [element]
            if shared:
                items.append(self._gen_access(rng, location_lock))
            if depth + 1 < config.depth and budget[0] > 0 and rng.random() < 0.3:
                budget[0] -= 1
                nested = self._gen_task(rng, budget, depth + 2, location_lock)
                items.append(("spawn", tuple(nested)))
            iterations.append(("spawn", tuple(items)))
        return [("finish", tuple(iterations))]

    def _gen_reduce(
        self,
        rng: random.Random,
        budget: List[int],
        location_lock: Dict[Location, Optional[str]],
    ) -> List[Spec]:
        """``width`` read-modify-write reducers into one accumulator."""
        config = self.config
        width = min(budget[0], rng.randint(2, max(2, config.fanout)))
        if width <= 0:
            return []
        budget[0] -= width
        accumulator = ("g", rng.randrange(max(1, config.locations)))
        lock = location_lock.get(accumulator) if self.config.consistent_locking else (
            f"L{rng.randrange(config.locks)}" if config.locks > 0 and rng.random() < config.lock_density else None
        )
        rmw: Tuple[Spec, ...] = (
            ("access", accumulator, "read"),
            ("access", accumulator, "write"),
        )
        reducer: Spec = ("locked", lock, rmw) if lock is not None else None
        body: List[Spec] = []
        for _ in range(width):
            items = (reducer,) if reducer is not None else rmw
            body.append(("spawn", items))
        body.append(("sync",))
        body.append(("access", accumulator, "read"))
        return body


# ---------------------------------------------------------------------------
# Spec utilities (shared with the oracle and the shrinker)
# ---------------------------------------------------------------------------


def spec_locations(spec: Spec) -> List[Location]:
    """Distinct locations accessed anywhere in *spec*, in first-seen order."""
    seen: Dict[Location, None] = {}

    def visit(items: Sequence[Spec]) -> None:
        for item in items:
            tag = item[0]
            if tag == "access":
                location = item[1]
                seen.setdefault(tuple(location) if isinstance(location, list) else location)
            elif tag in ("locked", "spawn", "finish"):
                visit(item[2] if tag == "locked" else item[1])

    visit(spec[1] if spec and spec[0] == "task" else spec)
    return list(seen)


def spec_access_count(spec: Spec) -> int:
    """Number of ``access`` nodes in *spec* -- the memory events one run
    performs (spec interpretation is straight-line: each node runs once)."""
    count = 0

    def visit(items: Sequence[Spec]) -> None:
        nonlocal count
        for item in items:
            tag = item[0]
            if tag == "access":
                count += 1
            elif tag in ("locked", "spawn", "finish"):
                visit(item[2] if tag == "locked" else item[1])

    visit(spec[1] if spec and spec[0] == "task" else spec)
    return count


def spec_task_count(spec: Spec) -> int:
    """Number of ``spawn`` nodes in *spec* (the root task is not counted)."""
    count = 0

    def visit(items: Sequence[Spec]) -> None:
        nonlocal count
        for item in items:
            tag = item[0]
            if tag == "spawn":
                count += 1
                visit(item[1])
            elif tag in ("locked", "finish"):
                visit(item[2] if tag == "locked" else item[1])

    visit(spec[1] if spec and spec[0] == "task" else spec)
    return count


def program_from_spec(spec: Spec, name: str = "fuzzed") -> TaskProgram:
    """Wrap a spec tree in a runnable :class:`TaskProgram`.

    Unlike :meth:`repro.trace.generator.TraceGenerator.program_from_spec`,
    the initial memory is derived from the spec itself (every accessed
    location starts at ``0``), so shrunk specs -- which may touch fewer
    locations than the config that bred them -- stay self-contained.
    """
    if not spec or spec[0] != "task":
        raise ValueError(f"root spec must be a task, got {spec[0] if spec else spec!r}")
    root_items = spec[1]

    def body(ctx: Any) -> None:
        _run_items(ctx, root_items)

    initial = {location: 0 for location in spec_locations(spec)}
    return TaskProgram(
        body,
        name=name,
        initial_memory=initial,
        annotations=AtomicAnnotations(),
    )


def _has_access(items: Sequence[Spec]) -> bool:
    for item in items:
        tag = item[0]
        if tag == "access":
            return True
        if tag in ("locked", "spawn", "finish"):
            if _has_access(item[2] if tag == "locked" else item[1]):
                return True
    return False
