"""The paper's 13 benchmark applications as task-parallel Python kernels.

Table 1 of the paper evaluates five TBB applications from PARSEC
(blackscholes, bodytrack, streamcluster, swaptions, fluidanimate), five
geometry/graphics applications from PBBS (convexhull, delrefine,
deltriang, nearestneigh, raycast -- originally Cilk, ported to TBB), and
three from the Structured Parallel Programming book (karatsuba, kmeans,
sort).  Each kernel here implements the same algorithm with the same task
decomposition style at laptop scale, written against the instrumented
:class:`~repro.runtime.task.TaskContext` API so that every shared-memory
access is visible to the checkers.

The kernels are deliberately *violation-free* (they are the overhead
benchmarks, not the detection suite), which the test suite verifies, and
they preserve the *qualitative* Table 1 characteristics that drive the
paper's performance story:

* blackscholes touches each location at most once per step -> zero LCA
  queries;
* kmeans and raycast issue many LCA queries with a high unique fraction
  (poor cache locality for the LCA memo) -> highest checking overheads;
* swaptions spawns the most tasks -> largest DPST;
* sort/karatsuba are small divide-and-conquer kernels.

Every workload takes an integer ``scale >= 1`` multiplying its input size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import WorkloadError
from repro.runtime.program import TaskProgram


@dataclass(frozen=True)
class PaperRow:
    """The paper's Table 1 row for a benchmark (for EXPERIMENTS.md).

    ``locations``/``nodes``/``lcas`` are the paper's absolute counts;
    ``unique_pct`` is the percentage of unique LCA queries (``None`` for
    blackscholes's ``-NA-``).
    """

    locations: int
    nodes: int
    lcas: int
    unique_pct: Optional[float]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered benchmark kernel."""

    name: str
    description: str
    build: Callable[[int], TaskProgram]
    paper: PaperRow
    #: Scale used by unit tests (fast).
    test_scale: int = 1
    #: Scale used by the benchmark harness.
    bench_scale: int = 2


_REGISTRY: Dict[str, WorkloadSpec] = {}

#: Table 1 ordering of the benchmarks.
WORKLOAD_ORDER = [
    "blackscholes",
    "bodytrack",
    "streamcluster",
    "swaptions",
    "fluidanimate",
    "convexhull",
    "delrefine",
    "deltriang",
    "karatsuba",
    "kmeans",
    "nearestneigh",
    "raycast",
    "sort",
]


def register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def _load() -> None:
    from repro.workloads import (  # noqa: F401
        blackscholes,
        bodytrack,
        streamcluster,
        swaptions,
        fluidanimate,
        convexhull,
        delrefine,
        deltriang,
        karatsuba,
        kmeans,
        nearestneigh,
        raycast,
        sort,
    )


def all_workloads() -> List[WorkloadSpec]:
    """Every workload, in Table 1 order."""
    _load()
    return [_REGISTRY[name] for name in WORKLOAD_ORDER]


def get(name: str) -> WorkloadSpec:
    """Look up one workload by name."""
    _load()
    if name not in _REGISTRY:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]
