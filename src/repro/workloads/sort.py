"""sort -- parallel mergesort (Structured Parallel Programming, ch. 13).

Classic spawn-based mergesort: recursively spawn the two halves, sync,
then merge into a scratch array and copy back.  Small input, small DPST,
few-but-recurring LCA queries (Table 1: 2,443 nodes, 8,165 LCA queries,
57% unique) -- the merge steps repeatedly touch locations previously
written by the child sort steps.
"""

from __future__ import annotations

import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Below this segment size, sort in-step with insertion sort.
THRESHOLD = 8


def _insertion_sort(ctx: TaskContext, lo: int, hi: int) -> None:
    """In-step insertion sort of ("a", lo..hi): many repeated accesses."""
    for i in range(lo + 1, hi):
        key = ctx.read(("a", i))
        j = i - 1
        while j >= lo:
            current = ctx.read(("a", j))
            if current <= key:
                break
            ctx.write(("a", j + 1), current)
            j -= 1
        ctx.write(("a", j + 1), key)


def _merge(ctx: TaskContext, lo: int, mid: int, hi: int) -> None:
    """Merge ("a", lo..mid) and ("a", mid..hi) through scratch ("t", ...)."""
    i, j = lo, mid
    for k in range(lo, hi):
        if i < mid and (j >= hi or ctx.read(("a", i)) <= ctx.read(("a", j))):
            ctx.write(("t", k), ctx.read(("a", i)))
            i += 1
        else:
            ctx.write(("t", k), ctx.read(("a", j)))
            j += 1
    for k in range(lo, hi):
        ctx.write(("a", k), ctx.read(("t", k)))


def _sort_task(ctx: TaskContext, lo: int, hi: int) -> None:
    if hi - lo <= THRESHOLD:
        _insertion_sort(ctx, lo, hi)
        return
    mid = (lo + hi) // 2
    ctx.spawn(_sort_task, lo, mid)
    ctx.spawn(_sort_task, mid, hi)
    ctx.sync()
    _merge(ctx, lo, mid, hi)


def build(scale: int = 1) -> TaskProgram:
    """Build the sort program: ``32 * scale`` elements."""
    count = 32 * scale
    rng = random.Random(7)
    initial = {("a", i): rng.randrange(10_000) for i in range(count)}

    def main(ctx: TaskContext) -> None:
        ctx.spawn(_sort_task, 0, count)
        ctx.sync()

    return TaskProgram(main, name="sort", initial_memory=initial)


register(
    WorkloadSpec(
        name="sort",
        description="parallel mergesort with in-step insertion-sort leaves",
        build=build,
        paper=PaperRow(locations=26_984, nodes=2_443, lcas=8_165, unique_pct=56.67),
    )
)
