"""karatsuba -- divide-and-conquer big-integer multiplication (SPP book).

Multiplies two ``n``-digit numbers held in shared digit arrays.  Each
recursive call spawns the three half-size subproducts (low*low, high*high,
(low+high)*(low+high)) into *private* scratch arrays, syncs, and combines
them into its output region with read-modify-write additions -- those
combine steps produce the same-step two-access patterns and LCA traffic
Table 1 reports (54.55% unique).

Scratch regions are identified by a per-program allocation counter, so
parallel subproblems never share accumulator locations (the kernel is
violation-free by construction).
"""

from __future__ import annotations

import itertools
import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Below this digit count, multiply with the schoolbook method in-step.
THRESHOLD = 4

#: Digit base; small so carries actually occur.
BASE = 10


def _school_multiply(ctx, x_arr, x_lo, y_arr, y_lo, n, out_arr, out_lo) -> None:
    """Schoolbook product of two n-digit slices into out (2n digits)."""
    for i in range(n):
        xi = ctx.read((x_arr, x_lo + i))
        if xi == 0:
            continue
        for j in range(n):
            yj = ctx.read((y_arr, y_lo + j))
            if yj == 0:
                continue
            k = (out_arr, out_lo + i + j)
            ctx.write(k, ctx.read(k) + xi * yj)  # RMW accumulate


def _add_into(ctx, src_arr, src_lo, dst_arr, dst_lo, n, sign: int = 1) -> None:
    """dst[0..n) += sign * src[0..n): per-element read-modify-write."""
    for i in range(n):
        value = ctx.read((src_arr, src_lo + i))
        if value == 0:
            continue
        k = (dst_arr, dst_lo + i)
        ctx.write(k, ctx.read(k) + sign * value)


def _karatsuba_task(ctx, alloc, x_arr, x_lo, y_arr, y_lo, n, out_arr, out_lo) -> None:
    """Product of n-digit slices of x and y into out[out_lo .. out_lo+2n)."""
    if n <= THRESHOLD:
        _school_multiply(ctx, x_arr, x_lo, y_arr, y_lo, n, out_arr, out_lo)
        return
    half = n // 2
    high = n - half
    # Private scratch arrays for the three subproducts and the digit sums.
    z0 = f"z{next(alloc)}"
    z2 = f"z{next(alloc)}"
    z1 = f"z{next(alloc)}"
    xs = f"s{next(alloc)}"
    ys = f"s{next(alloc)}"
    for name, size in ((z0, 2 * half), (z2, 2 * high), (z1, 2 * (high + 1))):
        for i in range(size):
            ctx.write((name, i), 0)
    # Digit sums low+high (high+1 digits, no carry normalization needed
    # because we track full integer values per digit slot).
    for i in range(high + 1):
        low_digit = ctx.read((x_arr, x_lo + i)) if i < half else 0
        high_digit = ctx.read((x_arr, x_lo + half + i)) if i < high else 0
        ctx.write((xs, i), low_digit + high_digit)
        low_digit = ctx.read((y_arr, y_lo + i)) if i < half else 0
        high_digit = ctx.read((y_arr, y_lo + half + i)) if i < high else 0
        ctx.write((ys, i), low_digit + high_digit)
    ctx.spawn(_karatsuba_task, alloc, x_arr, x_lo, y_arr, y_lo, half, z0, 0)
    ctx.spawn(
        _karatsuba_task, alloc, x_arr, x_lo + half, y_arr, y_lo + half, high, z2, 0
    )
    ctx.spawn(_karatsuba_task, alloc, xs, 0, ys, 0, high + 1, z1, 0)
    ctx.sync()
    # z1 -= z0 + z2; out += z0 + z1*B^half + z2*B^(2*half)
    _add_into(ctx, z0, 0, z1, 0, 2 * half, sign=-1)
    _add_into(ctx, z2, 0, z1, 0, 2 * high, sign=-1)
    _add_into(ctx, z0, 0, out_arr, out_lo, 2 * half)
    _add_into(ctx, z1, 0, out_arr, out_lo + half, 2 * (high + 1) - 1)
    _add_into(ctx, z2, 0, out_arr, out_lo + 2 * half, 2 * high)


def _digits_to_int(ctx_snapshot, name, size) -> int:
    """Reference helper for tests: interpret digit slots as an integer."""
    total = 0
    for i in reversed(range(size)):
        total = total * BASE + ctx_snapshot.get((name, i), 0)
    return total


def build(scale: int = 1) -> TaskProgram:
    """Build the karatsuba program: two ``16 * scale``-digit numbers."""
    digits = 16 * scale
    rng = random.Random(11)
    initial = {}
    for i in range(digits):
        initial[("x", i)] = rng.randrange(BASE)
        initial[("y", i)] = rng.randrange(BASE)
    for i in range(2 * digits):
        initial[("z", i)] = 0

    def main(ctx: TaskContext) -> None:
        alloc = itertools.count()
        ctx.spawn(_karatsuba_task, alloc, "x", 0, "y", 0, digits, "z", 0)
        ctx.sync()

    return TaskProgram(main, name="karatsuba", initial_memory=initial)


register(
    WorkloadSpec(
        name="karatsuba",
        description="divide-and-conquer big-integer multiplication",
        build=build,
        paper=PaperRow(locations=638_282, nodes=198_379, lcas=39_836, unique_pct=54.55),
    )
)
