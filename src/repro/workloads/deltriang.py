"""deltriang -- PBBS Delaunay triangulation (batched incremental insertion).

Inserts points into a triangulation in parallel batches: each insertion
task *locates* its point by walking the shared triangle table (reads), and
performs its split inside a critical section.  Unlike delrefine, the
walk mostly touches each record once per task, so the LCA-query count is
comparatively tiny (Table 1: 97K queries against 4.14M nodes) -- the
benchmark is node- and location-heavy, not query-heavy.
"""

from __future__ import annotations

import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Points inserted per parallel batch.
BATCH = 6


def _insert_point(ctx: TaskContext, point: int, px: float, py: float) -> None:
    """Locate the containing triangle (shared walk), then split it (locked)."""
    # Point location: walk from triangle 0 toward the point by repeatedly
    # reading triangle centroids (shared reads, one per visited record).
    current = 0
    for _ in range(8):
        cx = ctx.read(("tcx", current))
        cy = ctx.read(("tcy", current))
        link = ctx.read(("tlink", current))
        if link < 0 or (px - cx) ** 2 + (py - cy) ** 2 < 4.0:
            break
        current = link
    with ctx.lock("mesh"):
        count = ctx.read(("tri_n",))
        ctx.write(("tri_n",), count + 3)
        for child in range(count, count + 3):
            ctx.write(("tcx", child), (px + ctx.read(("tcx", current))) / 2.0)
            ctx.write(("tcy", child), (py + ctx.read(("tcy", current))) / 2.0)
            ctx.write(("tlink", child), current)
        ctx.write(("owner", point), current)


def build(scale: int = 1) -> TaskProgram:
    """Build the deltriang program: ``18 * scale`` points in batches of 6."""
    points = 18 * scale
    rng = random.Random(43)
    # Seed the mesh with a static location-walk chain: triangle i links to
    # i+1.  Triangles created during the run link *backward*, so the walk
    # only ever reads the immutable seed records (keeping the kernel
    # violation-free: the shared walk is read-only).
    seeds = 6
    initial = {("tri_n",): seeds}
    for t in range(seeds):
        initial[("tcx", t)] = rng.uniform(10.0, 90.0)
        initial[("tcy", t)] = rng.uniform(10.0, 90.0)
        initial[("tlink", t)] = t + 1 if t + 1 < seeds else -1
    inserts = [
        (i, rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)) for i in range(points)
    ]

    def main(ctx: TaskContext) -> None:
        for base in range(0, points, BATCH):
            for point, px, py in inserts[base : base + BATCH]:
                ctx.spawn(_insert_point, point, px, py)
            ctx.sync()

    return TaskProgram(main, name="deltriang", initial_memory=initial)


register(
    WorkloadSpec(
        name="deltriang",
        description="batched incremental point insertion with locked splits",
        build=build,
        paper=PaperRow(
            locations=20_000_000, nodes=4_140_000, lcas=97_437, unique_pct=61.38
        ),
    )
)
