"""kmeans -- k-means clustering (SPP book).

Lloyd's algorithm: each iteration fans out chunk tasks that read *every*
centroid for *every* point (the shared centroid locations are re-read by
every step of every iteration -- the source of kmeans's Table 1 profile:
18.29M LCA queries of which **83.86% are unique**, the worst cache
behaviour in the suite), then accumulate their chunk's partial sums into
shared per-cluster accumulators inside critical sections.  The main task
recomputes centroids between iterations.
"""

from __future__ import annotations

import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Points assigned per chunk task.  One point per task maximizes the
#: number of distinct (step, step) parallelism queries; even so, the
#: paper's 83.86%-unique profile is a full-scale phenomenon (millions of
#: locations each contributing a few never-repeated query pairs) that a
#: laptop-scale input cannot reach -- see EXPERIMENTS.md.
CHUNK = 1

#: Number of clusters.
K = 4

#: Lloyd iterations.
ITERATIONS = 2


def _init_centroid(ctx: TaskContext, j: int, seed_point: int) -> None:
    """Seed centroid j from one of the input points."""
    ctx.write(("cx", j), ctx.read(("px", seed_point)))
    ctx.write(("cy", j), ctx.read(("py", seed_point)))


def _assign_chunk(ctx: TaskContext, lo: int, hi: int) -> None:
    """Assign points [lo, hi) to the nearest centroid and accumulate."""
    partial = {j: [0.0, 0.0, 0] for j in range(K)}
    for i in range(lo, hi):
        px = ctx.read(("px", i))
        py = ctx.read(("py", i))
        best, best_dist = 0, float("inf")
        for j in range(K):
            cx = ctx.read(("cx", j))       # shared, re-read by every step
            cy = ctx.read(("cy", j))
            dist = (px - cx) ** 2 + (py - cy) ** 2
            if dist < best_dist:
                best, best_dist = j, dist
        ctx.write(("assign", i), best)
        partial[best][0] += px
        partial[best][1] += py
        partial[best][2] += 1
    for j in range(K):
        sx, sy, count = partial[j]
        if count == 0:
            continue
        with ctx.lock(f"cluster{j}"):
            ctx.write(("sumx", j), ctx.read(("sumx", j)) + sx)
            ctx.write(("sumy", j), ctx.read(("sumy", j)) + sy)
            ctx.write(("count", j), ctx.read(("count", j)) + count)


def build(scale: int = 1) -> TaskProgram:
    """Build the kmeans program: ``24 * scale`` 2-D points, 4 clusters."""
    points = 24 * scale
    rng = random.Random(5)
    initial = {}
    for i in range(points):
        initial[("px", i)] = rng.uniform(0.0, 100.0)
        initial[("py", i)] = rng.uniform(0.0, 100.0)

    def main(ctx: TaskContext) -> None:
        # Parallel centroid initialization (as real kmeans kernels do).
        # Side effect on the analysis: each centroid's first accessor is a
        # *different* step, so later steps' parallelism queries pair with
        # distinct partners per location -- the high unique-LCA-query
        # profile Table 1 reports for kmeans.
        for j in range(K):
            ctx.spawn(_init_centroid, j, j * (points // K))
        ctx.sync()
        for _ in range(ITERATIONS):
            for j in range(K):
                ctx.write(("sumx", j), 0.0)
                ctx.write(("sumy", j), 0.0)
                ctx.write(("count", j), 0)
            for lo in range(0, points, CHUNK):
                ctx.spawn(_assign_chunk, lo, min(lo + CHUNK, points))
            ctx.sync()
            for j in range(K):
                count = ctx.read(("count", j))
                if count:
                    ctx.write(("cx", j), ctx.read(("sumx", j)) / count)
                    ctx.write(("cy", j), ctx.read(("sumy", j)) / count)

    return TaskProgram(main, name="kmeans", initial_memory=initial)


register(
    WorkloadSpec(
        name="kmeans",
        description="Lloyd's k-means; every step re-reads every centroid",
        build=build,
        paper=PaperRow(
            locations=40_000_000, nodes=220_788, lcas=18_290_000, unique_pct=83.86
        ),
    )
)
