"""streamcluster -- PARSEC online k-median clustering.

Processes the input stream in batches: for each batch, parallel chunk
tasks read the *current shared set of centers* (re-read by every chunk of
every batch -- the half-unique LCA traffic of Table 1), assign each of
their points to the cheapest center and write per-point cost/assignment;
the main task then decides, from the accumulated batch cost, whether the
most expensive point of the batch is opened as a new center.
"""

from __future__ import annotations

import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Points per batch.
BATCH = 12

#: Points per chunk task within a batch.
CHUNK = 3


def _assign_chunk(ctx: TaskContext, lo: int, hi: int) -> None:
    """Assign points [lo, hi) of the stream to the nearest open center."""
    center_count = ctx.read(("centers_n",))
    chunk_cost = 0.0
    for i in range(lo, hi):
        px = ctx.read(("sx", i))
        py = ctx.read(("sy", i))
        best, best_cost = 0, float("inf")
        for c in range(center_count):
            cx = ctx.read(("centerx", c))
            cy = ctx.read(("centery", c))
            cost = (px - cx) ** 2 + (py - cy) ** 2
            if cost < best_cost:
                best, best_cost = c, cost
        ctx.write(("assign", i), best)
        ctx.write(("cost", i), best_cost)
        chunk_cost += best_cost
    # One critical section per chunk: a step must not split its shared
    # read-modify-write across several critical sections (that is exactly
    # the atomicity violation the checker flags).
    with ctx.lock("batch_cost"):
        ctx.write(("total_cost",), ctx.read(("total_cost",)) + chunk_cost)


def build(scale: int = 1) -> TaskProgram:
    """Build the streamcluster program: ``3 * scale`` batches of 12 points."""
    batches = 3 * scale
    stream = batches * BATCH
    rng = random.Random(31)
    initial = {("total_cost",): 0.0, ("centers_n",): 1}
    initial[("centerx", 0)] = 50.0
    initial[("centery", 0)] = 50.0
    for i in range(stream):
        initial[("sx", i)] = rng.uniform(0.0, 100.0)
        initial[("sy", i)] = rng.uniform(0.0, 100.0)

    def main(ctx: TaskContext) -> None:
        for batch in range(batches):
            base = batch * BATCH
            ctx.write(("total_cost",), 0.0)
            for lo in range(base, base + BATCH, CHUNK):
                ctx.spawn(_assign_chunk, lo, min(lo + CHUNK, base + BATCH))
            ctx.sync()
            # Open the batch's most expensive point as a new center when the
            # batch cost exceeds the opening threshold (simplified facility
            # cost rule).
            if ctx.read(("total_cost",)) > 1500.0:
                worst, worst_cost = base, -1.0
                for i in range(base, base + BATCH):
                    cost = ctx.read(("cost", i))
                    if cost > worst_cost:
                        worst, worst_cost = i, cost
                count = ctx.read(("centers_n",))
                ctx.write(("centerx", count), ctx.read(("sx", worst)))
                ctx.write(("centery", count), ctx.read(("sy", worst)))
                ctx.write(("centers_n",), count + 1)

    return TaskProgram(main, name="streamcluster", initial_memory=initial)


register(
    WorkloadSpec(
        name="streamcluster",
        description="batched online clustering against shared centers",
        build=build,
        paper=PaperRow(
            locations=4_580_000, nodes=530_952, lcas=234_781, unique_pct=49.87
        ),
    )
)
