"""convexhull -- PBBS 2-D convex hull (quickhull, divide and conquer).

Recursive quickhull over a shared point array: each task scans its subset
for the farthest point from the dividing chord (re-reading shared
coordinates -- the same point locations are visited by many steps along
the recursion, producing the 4.31M LCA queries of Table 1), then spawns
the two sub-hulls.  Hull vertices are appended to a shared output list
under a lock.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register


def _cross(ox: float, oy: float, ax: float, ay: float, bx: float, by: float) -> float:
    """Signed area of the (o, a, b) triangle: >0 when b is left of o->a."""
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


def _append_hull(ctx: TaskContext, index: int) -> None:
    """Append a hull vertex index to the shared output (locked)."""
    with ctx.lock("hull"):
        count = ctx.read(("hull_n",))
        ctx.write(("hull", count), index)
        ctx.write(("hull_n",), count + 1)


def _quickhull(
    ctx: TaskContext, subset: Tuple[int, ...], a: int, b: int
) -> None:
    """Expand the hull edge (a, b) with the points of *subset* above it."""
    ax, ay = ctx.read(("px", a)), ctx.read(("py", a))
    bx, by = ctx.read(("px", b)), ctx.read(("py", b))
    farthest = -1
    far_dist = 0.0
    above: List[int] = []
    for i in subset:
        x, y = ctx.read(("px", i)), ctx.read(("py", i))
        side = _cross(ax, ay, bx, by, x, y)
        if side > 1e-12:
            above.append(i)
            if side > far_dist:
                far_dist = side
                farthest = i
    if farthest < 0:
        return
    _append_hull(ctx, farthest)
    ctx.spawn(_quickhull, tuple(above), a, farthest)
    ctx.spawn(_quickhull, tuple(above), farthest, b)
    ctx.sync()


def build(scale: int = 1) -> TaskProgram:
    """Build the convexhull program: ``28 * scale`` random points."""
    count = 28 * scale
    rng = random.Random(23)
    initial = {("hull_n",): 0}
    for i in range(count):
        initial[("px", i)] = rng.uniform(0.0, 100.0)
        initial[("py", i)] = rng.uniform(0.0, 100.0)

    def main(ctx: TaskContext) -> None:
        # Extreme points in x start the hull.
        xs = [(ctx.read(("px", i)), i) for i in range(count)]
        left = min(xs)[1]
        right = max(xs)[1]
        _append_hull(ctx, left)
        _append_hull(ctx, right)
        everything = tuple(i for i in range(count) if i not in (left, right))
        ctx.spawn(_quickhull, everything, left, right)
        ctx.spawn(_quickhull, everything, right, left)
        ctx.sync()

    return TaskProgram(main, name="convexhull", initial_memory=initial)


register(
    WorkloadSpec(
        name="convexhull",
        description="quickhull divide and conquer over a shared point array",
        build=build,
        paper=PaperRow(
            locations=6_280_000, nodes=91_170_000, lcas=4_310_000, unique_pct=62.11
        ),
    )
)
