"""delrefine -- PBBS Delaunay mesh refinement (worklist style).

Iterative refinement of a triangle mesh's quality: each round, parallel
tasks take one *bad* triangle each, read its neighbourhood (shared
triangle records, re-read across rounds -- delrefine issues almost one LCA
query per location in Table 1: 8.19M queries over 9.12M locations), and
retriangulate the cavity by splitting the triangle.  Mesh mutation -- the
split replaces one triangle with two -- happens inside a critical section,
as in lock-based refinement implementations.
"""

from __future__ import annotations

import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Quality threshold below which a triangle is "bad" and gets refined.
QUALITY_THRESHOLD = 0.5

#: Refinement rounds.
ROUNDS = 2


def _refine_triangle(ctx: TaskContext, triangle: int, neighbour_sum: float) -> None:
    """Split one bad triangle, redistributing quality into two children.

    ``neighbour_sum`` is the cavity snapshot taken by the coordinating
    task before the round was spawned (parallel refiners mutate neighbour
    quality, so reading it here would be the very read/locked-write
    atomicity violation the checker exists to flag).
    """
    quality = ctx.read(("quality", triangle))
    if quality >= QUALITY_THRESHOLD:
        return  # another round already fixed it
    improvement = 0.3 + 0.1 * (neighbour_sum / 3.0)
    with ctx.lock("mesh"):
        count = ctx.read(("tri_n",))
        child = count
        ctx.write(("tri_n",), count + 1)
        ctx.write(("quality", triangle), quality + improvement)
        ctx.write(("quality", child), quality + improvement * 0.8)
        for offset in (1, 2, 3):
            ctx.write(("neighbor", child, offset), triangle if offset == 1 else -1)


def build(scale: int = 1) -> TaskProgram:
    """Build the delrefine program: ``14 * scale`` seed triangles, 2 rounds."""
    seeds = 14 * scale
    capacity = seeds * 8
    rng = random.Random(41)
    initial = {("tri_n",): seeds}
    for t in range(seeds):
        initial[("quality", t)] = rng.uniform(0.1, 0.9)
        for offset in (1, 2, 3):
            neighbour = rng.randrange(-1, seeds)
            initial[("neighbor", t, offset)] = neighbour if neighbour != t else -1
    for t in range(seeds, capacity):
        initial[("quality", t)] = 1.0

    def main(ctx: TaskContext) -> None:
        for _ in range(ROUNDS):
            count = ctx.read(("tri_n",))
            bad = []
            for t in range(count):
                if ctx.read(("quality", t)) < QUALITY_THRESHOLD:
                    bad.append(t)
            # Cavity snapshots are taken for the whole round *before* any
            # refiner is spawned: once the first refiner is running, the
            # coordinator's reads of the mesh would race with the locked
            # splits (a main-vs-refiner atomicity violation).
            snapshots = []
            for t in bad:
                neighbour_sum = 0.0
                for offset in (1, 2, 3):
                    neighbour = ctx.read(("neighbor", t, offset))
                    if neighbour >= 0:
                        neighbour_sum += ctx.read(("quality", neighbour))
                snapshots.append(neighbour_sum)
            for t, neighbour_sum in zip(bad, snapshots):
                ctx.spawn(_refine_triangle, t, neighbour_sum)
            ctx.sync()

    return TaskProgram(main, name="delrefine", initial_memory=initial)


register(
    WorkloadSpec(
        name="delrefine",
        description="worklist-parallel mesh refinement with locked splits",
        build=build,
        paper=PaperRow(
            locations=9_120_000, nodes=4_870_000, lcas=8_190_000, unique_pct=65.76
        ),
    )
)
