"""bodytrack -- PARSEC particle-filter body tracking.

A particle filter tracking a 4-dof "pose" across frames: per frame,
parallel per-particle tasks perturb the shared pose estimate, score it
against the frame's observation (reads of the few shared pose/observation
locations), and write their particle weight; the main task then normalizes
the weights and updates the pose.  bodytrack is Table 1's
*few-locations / many-tasks* benchmark (only 5,101 locations against
915K DPST nodes) -- shared state is tiny, the task count is not.
"""

from __future__ import annotations

import math
import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Degrees of freedom of the tracked pose.
DOF = 4

#: Frames tracked.
FRAMES = 3


def _score_particle(ctx: TaskContext, frame: int, particle: int) -> None:
    """Perturb the pose for one particle and score it against the frame."""
    rng = random.Random((frame << 16) ^ particle)
    error = 0.0
    for d in range(DOF):
        estimate = ctx.read(("pose", d))          # shared, read by every particle
        observed = ctx.read(("obs", frame, d))
        hypothesis = estimate + rng.gauss(0.0, 0.5)
        error += (hypothesis - observed) ** 2
        ctx.write(("hyp", frame, particle, d), hypothesis)
    ctx.write(("w", frame, particle), math.exp(-0.5 * error))


def build(scale: int = 1) -> TaskProgram:
    """Build the bodytrack program: ``12 * scale`` particles, 3 frames."""
    particles = 12 * scale
    rng = random.Random(37)
    initial = {("pose", d): 0.0 for d in range(DOF)}
    for frame in range(FRAMES):
        for d in range(DOF):
            initial[("obs", frame, d)] = math.sin(0.7 * frame + d) + rng.gauss(0, 0.05)

    def main(ctx: TaskContext) -> None:
        for frame in range(FRAMES):
            for particle in range(particles):
                ctx.spawn(_score_particle, frame, particle)
            ctx.sync()
            # Weighted mean of the particle hypotheses becomes the new pose.
            total = 0.0
            for particle in range(particles):
                total += ctx.read(("w", frame, particle))
            for d in range(DOF):
                mean = 0.0
                for particle in range(particles):
                    weight = ctx.read(("w", frame, particle))
                    mean += weight * ctx.read(("hyp", frame, particle, d))
                ctx.write(("pose", d), mean / total if total > 0 else 0.0)

    return TaskProgram(main, name="bodytrack", initial_memory=initial)


register(
    WorkloadSpec(
        name="bodytrack",
        description="particle filter: many tasks sharing a tiny pose state",
        build=build,
        paper=PaperRow(locations=5_101, nodes=915_537, lcas=11_567, unique_pct=56.32),
    )
)
