"""blackscholes -- PARSEC option pricing with ``parallel_for``.

Prices a portfolio of European options with the Black-Scholes closed-form
formula.  The TBB original is a ``parallel_for`` over options; each
iteration reads the option's five parameters and writes its price, and *no
location is ever touched twice by one step*.  Table 1 consequently reports
**zero LCA queries** for blackscholes: the checker's first-access paths
(Figures 7/8) never need a parallelism verdict when the single-access
slots are still empty.
"""

from __future__ import annotations

import math
import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Options priced per chunk task.
CHUNK = 8


def _cnd(d: float) -> float:
    """Cumulative normal distribution (Abramowitz-Stegun, as in PARSEC)."""
    a1, a2, a3, a4, a5 = 0.319381530, -0.356563782, 1.781477937, -1.821255978, 1.330274429
    sign = d < 0.0
    d = abs(d)
    k = 1.0 / (1.0 + 0.2316419 * d)
    poly = k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))))
    value = 1.0 - (1.0 / math.sqrt(2.0 * math.pi)) * math.exp(-0.5 * d * d) * poly
    return 1.0 - value if sign else value


def _price_chunk(ctx: TaskContext, lo: int, hi: int) -> None:
    """One parallel_for chunk: price options [lo, hi)."""
    for i in range(lo, hi):
        spot = ctx.read(("S", i))
        strike = ctx.read(("K", i))
        rate = ctx.read(("r", i))
        vol = ctx.read(("v", i))
        time = ctx.read(("T", i))
        d1 = (math.log(spot / strike) + (rate + 0.5 * vol * vol) * time) / (
            vol * math.sqrt(time)
        )
        d2 = d1 - vol * math.sqrt(time)
        call = spot * _cnd(d1) - strike * math.exp(-rate * time) * _cnd(d2)
        ctx.write(("price", i), call)


def build(scale: int = 1) -> TaskProgram:
    """Build the blackscholes program: ``40 * scale`` options."""
    count = 40 * scale
    rng = random.Random(42)
    initial = {}
    for i in range(count):
        initial[("S", i)] = rng.uniform(20.0, 120.0)
        initial[("K", i)] = rng.uniform(20.0, 120.0)
        initial[("r", i)] = rng.uniform(0.01, 0.06)
        initial[("v", i)] = rng.uniform(0.1, 0.6)
        initial[("T", i)] = rng.uniform(0.25, 2.0)

    def main(ctx: TaskContext) -> None:
        for lo in range(0, count, CHUNK):
            ctx.spawn(_price_chunk, lo, min(lo + CHUNK, count))
        ctx.sync()

    return TaskProgram(main, name="blackscholes", initial_memory=initial)


register(
    WorkloadSpec(
        name="blackscholes",
        description="PARSEC option pricing; parallel_for, one access per location per step",
        build=build,
        paper=PaperRow(locations=10_000_000, nodes=1_352, lcas=0, unique_pct=None),
    )
)
