"""swaptions -- PARSEC HJM Monte-Carlo swaption pricing.

Prices a handful of swaptions by simulating many interest-rate paths.
The TBB original partitions trials recursively; here every *single trial*
is its own task, spawned through a divide-and-conquer splitter -- which is
why swaptions owns the largest DPST in Table 1 (144M nodes on the paper's
inputs) and, together with its many per-trial result locations, one of the
highest checking overheads in Figure 13.  Each trial writes its own payoff
slot and then accumulates sum and sum-of-squares into per-swaption
aggregates inside one critical section.
"""

from __future__ import annotations

import math
import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Number of swaptions priced.
SWAPTIONS = 3

#: Simulated forward-curve steps per trial.
CURVE_STEPS = 6


def _simulate_trial(ctx: TaskContext, swaption: int, trial: int) -> None:
    """One Monte-Carlo path: evolve the forward rate, discount the payoff."""
    strike = ctx.read(("strike", swaption))
    rate = ctx.read(("rate", swaption))
    vol = ctx.read(("vol", swaption))
    rng = random.Random((swaption << 20) ^ trial)
    forward = rate
    discount = 1.0
    for _ in range(CURVE_STEPS):
        shock = rng.gauss(0.0, 1.0)
        forward = max(1e-6, forward + vol * shock * 0.1)
        discount *= math.exp(-forward * 0.25)
    payoff = max(0.0, forward - strike) * discount
    ctx.write(("payoff", swaption, trial), payoff)
    with ctx.lock(f"agg{swaption}"):
        ctx.write(("sum", swaption), ctx.read(("sum", swaption)) + payoff)
        ctx.write(("sum2", swaption), ctx.read(("sum2", swaption)) + payoff * payoff)


def _spawn_range(ctx: TaskContext, swaption: int, lo: int, hi: int) -> None:
    """Recursive splitter: one leaf task per trial (maximal DPST)."""
    if hi - lo == 1:
        _simulate_trial(ctx, swaption, lo)
        return
    mid = (lo + hi) // 2
    ctx.spawn(_spawn_range, swaption, lo, mid)
    ctx.spawn(_spawn_range, swaption, mid, hi)
    ctx.sync()


def build(scale: int = 1) -> TaskProgram:
    """Build the swaptions program: 3 swaptions x ``16 * scale`` trials."""
    trials = 16 * scale
    rng = random.Random(13)
    initial = {}
    for s in range(SWAPTIONS):
        initial[("strike", s)] = rng.uniform(0.02, 0.06)
        initial[("rate", s)] = rng.uniform(0.02, 0.06)
        initial[("vol", s)] = rng.uniform(0.1, 0.4)
        initial[("sum", s)] = 0.0
        initial[("sum2", s)] = 0.0

    def main(ctx: TaskContext) -> None:
        for s in range(SWAPTIONS):
            ctx.spawn(_spawn_range, s, 0, trials)
        ctx.sync()
        for s in range(SWAPTIONS):
            total = ctx.read(("sum", s))
            ctx.write(("price", s), total / trials)

    return TaskProgram(main, name="swaptions", initial_memory=initial)


register(
    WorkloadSpec(
        name="swaptions",
        description="HJM Monte-Carlo pricing; one task per trial (largest DPST)",
        build=build,
        paper=PaperRow(
            locations=26_760_000, nodes=144_000_000, lcas=9_870_000, unique_pct=64.41
        ),
    )
)
