"""Failure injection: buggy variants of the benchmark kernels.

Each variant re-creates a *realistic* concurrency mistake in one of the
13 kernels -- a missing lock, a split critical section, a read taken
outside the lock, a premature read before a join.  The injected bug is
precisely documented, and each variant records the family of locations
the checker must implicate (``location_heads``: the first element of the
tuple locations, or the scalar itself).

These are the system's failure-injection tests: unlike the 36-program
suite (small, synthetic), they demonstrate detection inside real kernels
with hundreds of irrelevant accesses around the bug -- and that the
checker implicates *only* the buggy locations (precision at scale).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, List, Tuple

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext

Location = Hashable


@dataclass(frozen=True)
class BuggyVariant:
    """One injected bug: builder plus the implicated location family."""

    name: str
    base_workload: str
    description: str
    build: Callable[[int], TaskProgram]
    #: Heads of the locations the checker must (exclusively) implicate.
    location_heads: FrozenSet[str]


_VARIANTS: List[BuggyVariant] = []


def register(variant: BuggyVariant) -> BuggyVariant:
    _VARIANTS.append(variant)
    return variant


def all_variants() -> List[BuggyVariant]:
    return list(_VARIANTS)


def location_head(location: Location) -> str:
    """The location's family name (tuple head or the scalar itself)."""
    if isinstance(location, tuple) and location:
        return str(location[0])
    return str(location)


# ---------------------------------------------------------------------------
# kmeans: reduction without the cluster lock
# ---------------------------------------------------------------------------


def _kmeans_unlocked_chunk(ctx: TaskContext, lo: int, hi: int, k: int) -> None:
    for i in range(lo, hi):
        px = ctx.read(("px", i))
        py = ctx.read(("py", i))
        best, best_dist = 0, float("inf")
        for j in range(k):
            dist = (px - ctx.read(("cx", j))) ** 2 + (py - ctx.read(("cy", j))) ** 2
            if dist < best_dist:
                best, best_dist = j, dist
        # BUG: the per-cluster lock is missing around the accumulation.
        ctx.write(("sumx", best), ctx.read(("sumx", best)) + px)
        ctx.write(("sumy", best), ctx.read(("sumy", best)) + py)
        ctx.write(("count", best), ctx.read(("count", best)) + 1)


def build_kmeans_unlocked(scale: int = 1) -> TaskProgram:
    points, k = 12 * scale, 3
    rng = random.Random(5)
    initial = {}
    for i in range(points):
        initial[("px", i)] = rng.uniform(0.0, 100.0)
        initial[("py", i)] = rng.uniform(0.0, 100.0)

    def main(ctx: TaskContext) -> None:
        for j in range(k):
            ctx.write(("cx", j), ctx.read(("px", j)))
            ctx.write(("cy", j), ctx.read(("py", j)))
            ctx.write(("sumx", j), 0.0)
            ctx.write(("sumy", j), 0.0)
            ctx.write(("count", j), 0)
        for lo in range(0, points, 2):
            ctx.spawn(_kmeans_unlocked_chunk, lo, min(lo + 2, points), k)
        ctx.sync()

    return TaskProgram(main, name="kmeans-unlocked", initial_memory=initial)


register(
    BuggyVariant(
        name="kmeans_unlocked_reduction",
        base_workload="kmeans",
        description="per-cluster accumulation without the cluster lock "
        "(lost updates on sumx/sumy/count)",
        build=build_kmeans_unlocked,
        location_heads=frozenset({"sumx", "sumy", "count"}),
    )
)


# ---------------------------------------------------------------------------
# streamcluster: batch cost accumulated in many small critical sections
# ---------------------------------------------------------------------------


def _stream_split_cs_chunk(ctx: TaskContext, lo: int, hi: int) -> None:
    center_count = ctx.read(("centers_n",))
    for i in range(lo, hi):
        px = ctx.read(("sx", i))
        py = ctx.read(("sy", i))
        best_cost = float("inf")
        for c in range(center_count):
            cost = (px - ctx.read(("centerx", c))) ** 2 + (
                py - ctx.read(("centery", c))
            ) ** 2
            best_cost = min(best_cost, cost)
        # BUG: one critical section *per point* splits the step's
        # read-modify-writes of total_cost across several critical
        # sections; a parallel chunk's update can interleave between them
        # (Section 3.3's split-critical-section pattern at kernel scale).
        with ctx.lock("batch_cost"):
            ctx.write(("total_cost",), ctx.read(("total_cost",)) + best_cost)


def build_streamcluster_split_cs(scale: int = 1) -> TaskProgram:
    points = 12 * scale
    rng = random.Random(31)
    initial = {("total_cost",): 0.0, ("centers_n",): 1}
    initial[("centerx", 0)] = 50.0
    initial[("centery", 0)] = 50.0
    for i in range(points):
        initial[("sx", i)] = rng.uniform(0.0, 100.0)
        initial[("sy", i)] = rng.uniform(0.0, 100.0)

    def main(ctx: TaskContext) -> None:
        for lo in range(0, points, 3):
            ctx.spawn(_stream_split_cs_chunk, lo, min(lo + 3, points))
        ctx.sync()

    return TaskProgram(main, name="streamcluster-splitcs", initial_memory=initial)


register(
    BuggyVariant(
        name="streamcluster_split_critical_sections",
        base_workload="streamcluster",
        description="batch cost updated in one critical section per point: "
        "the step's accumulation is splittable by parallel chunks",
        build=build_streamcluster_split_cs,
        location_heads=frozenset({"total_cost"}),
    )
)


# ---------------------------------------------------------------------------
# delrefine: cavity read outside the mesh lock
# ---------------------------------------------------------------------------


def _refine_racy(ctx: TaskContext, triangle: int) -> None:
    quality = ctx.read(("quality", triangle))
    # BUG: neighbour qualities are read while parallel refiners mutate
    # them under the mesh lock (the bug the shipped kernel avoids by
    # snapshotting in the coordinator).
    neighbour_sum = 0.0
    for offset in (1, 2, 3):
        neighbour = ctx.read(("neighbor", triangle, offset))
        if neighbour >= 0:
            neighbour_sum += ctx.read(("quality", neighbour))
    with ctx.lock("mesh"):
        count = ctx.read(("tri_n",))
        ctx.write(("tri_n",), count + 1)
        ctx.write(("quality", triangle), quality + 0.3 + 0.1 * neighbour_sum)
        ctx.write(("quality", count), 1.0)


def build_delrefine_racy_cavity(scale: int = 1) -> TaskProgram:
    seeds = 8 * scale
    rng = random.Random(41)
    initial = {("tri_n",): seeds}
    for t in range(seeds):
        initial[("quality", t)] = rng.uniform(0.1, 0.45)  # all bad
        for offset in (1, 2, 3):
            neighbour = rng.randrange(seeds)
            initial[("neighbor", t, offset)] = neighbour if neighbour != t else -1

    def main(ctx: TaskContext) -> None:
        count = ctx.read(("tri_n",))
        for t in range(count):
            ctx.spawn(_refine_racy, t)
        ctx.sync()

    return TaskProgram(main, name="delrefine-racy", initial_memory=initial)


register(
    BuggyVariant(
        name="delrefine_racy_cavity_read",
        base_workload="delrefine",
        description="neighbour qualities read unlocked while parallel "
        "refiners update them inside the mesh lock",
        build=build_delrefine_racy_cavity,
        location_heads=frozenset({"quality"}),
    )
)


# ---------------------------------------------------------------------------
# deltriang: location walk over mutable links
# ---------------------------------------------------------------------------


def _insert_walk_mutable(ctx: TaskContext, point: int, px: float, py: float) -> None:
    # BUG: the walk reads tlink[0] unlocked...
    entry = ctx.read(("tlink", 0))
    with ctx.lock("mesh"):
        count = ctx.read(("tri_n",))
        ctx.write(("tri_n",), count + 1)
        ctx.write(("tcx", count), px)
        ctx.write(("tcy", count), py)
        # ...and the split *updates* tlink[0] in a separate critical
        # section from the read: walk-then-update without a consistent
        # snapshot.
        ctx.write(("tlink", 0), count if entry < 0 else entry)


def build_deltriang_mutable_walk(scale: int = 1) -> TaskProgram:
    points = 8 * scale
    rng = random.Random(43)
    initial = {("tri_n",): 1, ("tcx", 0): 50.0, ("tcy", 0): 50.0, ("tlink", 0): -1}
    inserts = [
        (i, rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)) for i in range(points)
    ]

    def main(ctx: TaskContext) -> None:
        for point, px, py in inserts:
            ctx.spawn(_insert_walk_mutable, point, px, py)
        ctx.sync()

    return TaskProgram(main, name="deltriang-mutwalk", initial_memory=initial)


register(
    BuggyVariant(
        name="deltriang_walk_then_update",
        base_workload="deltriang",
        description="point location reads the entry link unlocked, the "
        "locked split updates it: stale-walk insertion",
        build=build_deltriang_mutable_walk,
        location_heads=frozenset({"tlink"}),
    )
)


# ---------------------------------------------------------------------------
# swaptions: aggregation without the per-swaption lock
# ---------------------------------------------------------------------------


def _trial_unlocked(ctx: TaskContext, trial: int) -> None:
    rng = random.Random(trial)
    payoff = max(0.0, rng.gauss(0.01, 0.02))
    ctx.write(("payoff", trial), payoff)
    # BUG: missing the agg lock around sum / sum2.
    ctx.write(("sum",), ctx.read(("sum",)) + payoff)
    ctx.write(("sum2",), ctx.read(("sum2",)) + payoff * payoff)


def build_swaptions_unlocked(scale: int = 1) -> TaskProgram:
    trials = 10 * scale
    initial = {("sum",): 0.0, ("sum2",): 0.0}

    def main(ctx: TaskContext) -> None:
        for trial in range(trials):
            ctx.spawn(_trial_unlocked, trial)
        ctx.sync()

    return TaskProgram(main, name="swaptions-unlocked", initial_memory=initial)


register(
    BuggyVariant(
        name="swaptions_unlocked_aggregation",
        base_workload="swaptions",
        description="Monte-Carlo aggregation without the aggregate lock",
        build=build_swaptions_unlocked,
        location_heads=frozenset({"sum", "sum2"}),
    )
)


# ---------------------------------------------------------------------------
# fluidanimate: premature read of the double buffer (missing sync)
# ---------------------------------------------------------------------------


def _density_then_read(ctx: TaskContext, row: int, cols: int) -> None:
    for col in range(cols):
        ctx.write(("rho2", row, col), ctx.read(("rho", row, col)) * 0.5)


def _premature_summary(ctx: TaskContext, rows: int, cols: int) -> None:
    total = 0.0
    for row in range(rows):
        for col in range(cols):
            total += ctx.read(("rho2", row, col))
            total += ctx.read(("rho2", row, col))  # re-read: snapshot pair
    ctx.write(("summary",), total)


def build_fluidanimate_missing_sync(scale: int = 1) -> TaskProgram:
    rows, cols = 4 * scale, 4
    rng = random.Random(17)
    initial = {
        ("rho", r, c): rng.uniform(0.5, 2.0) for r in range(rows) for c in range(cols)
    }
    for r in range(rows):
        for c in range(cols):
            initial[("rho2", r, c)] = 0.0

    def main(ctx: TaskContext) -> None:
        for row in range(rows):
            ctx.spawn(_density_then_read, row, cols)
        # BUG: the summary task is spawned *before* the sync, so it runs
        # logically in parallel with the density writers and its repeated
        # reads of rho2 can straddle their updates.
        ctx.spawn(_premature_summary, rows, cols)
        ctx.sync()

    return TaskProgram(main, name="fluidanimate-nosync", initial_memory=initial)


register(
    BuggyVariant(
        name="fluidanimate_missing_sync",
        base_workload="fluidanimate",
        description="summary reader spawned before the join of the density "
        "pass: torn snapshot of the double buffer",
        build=build_fluidanimate_missing_sync,
        location_heads=frozenset({"rho2"}),
    )
)
