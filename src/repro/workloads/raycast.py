"""raycast -- PBBS ray-casting against a voxel grid.

Casts one ray per task through a shared uniform grid (2-D DDA traversal),
reading every visited cell's occupancy and density.  Because each ray
visits a long, mostly distinct sequence of cells and *every pair of rays
is parallel*, the parallelism queries pair almost every step with almost
every other step: Table 1 reports raycast issuing the most LCA queries in
the suite (61.48M) with the highest unique fraction (**91.13%**), making
it one of the three high-overhead outliers of Figure 13.
"""

from __future__ import annotations

import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Grid side length.
GRID = 12


def _cast_ray(ctx: TaskContext, ray: int, x0: float, y0: float, dx: float, dy: float) -> None:
    """March one ray through the grid; record first hit and accumulated density."""
    x, y = x0, y0
    travelled = 0.0
    density = 0.0
    hit = -1
    step = 1.0  # one visit per cell: every parallelism query pairs fresh steps
    while 0.0 <= x < GRID and 0.0 <= y < GRID and travelled < 3.0 * GRID:
        cell_x, cell_y = int(x), int(y)
        occupied = ctx.read(("occ", cell_x, cell_y))
        density += ctx.read(("rho", cell_x, cell_y))
        if occupied:
            hit = cell_x * GRID + cell_y
            break
        x += dx * step
        y += dy * step
        travelled += step
    ctx.write(("hit", ray), hit)
    ctx.write(("dens", ray), density)


def build(scale: int = 1) -> TaskProgram:
    """Build the raycast program: ``30 * scale`` rays on a 12x12 grid."""
    rays = 30 * scale
    rng = random.Random(3)
    initial = {}
    for gx in range(GRID):
        for gy in range(GRID):
            initial[("occ", gx, gy)] = 1 if rng.random() < 0.06 else 0
            initial[("rho", gx, gy)] = rng.uniform(0.0, 1.0)
    directions = []
    for _ in range(rays):
        angle = rng.uniform(0.0, 2.0)
        x0 = rng.uniform(0.0, GRID - 1)
        y0 = rng.uniform(0.0, GRID - 1)
        # Normalized-ish direction; exact normalization is irrelevant here.
        dx = 0.5 + 0.5 * (angle % 1.0)
        dy = 0.5 + 0.5 * ((angle * 7.0) % 1.0)
        directions.append((x0, y0, dx if angle < 1.0 else -dx, dy))

    def main(ctx: TaskContext) -> None:
        for ray, (x0, y0, dx, dy) in enumerate(directions):
            ctx.spawn(_cast_ray, ray, x0, y0, dx, dy)
        ctx.sync()

    return TaskProgram(main, name="raycast", initial_memory=initial)


register(
    WorkloadSpec(
        name="raycast",
        description="per-ray tasks traversing a shared voxel grid (DDA)",
        build=build,
        paper=PaperRow(
            locations=3_890_000, nodes=6_280_000, lcas=61_480_000, unique_pct=91.13
        ),
    )
)
