"""nearestneigh -- PBBS nearest neighbours over a shared bucket grid.

Answers one nearest-neighbour query per leaf task against a shared
uniform-grid spatial index.  Queries are partitioned by a recursive
splitter down to single queries (PBBS's Cilk style), giving the deep,
wide DPST Table 1 reports (18.69M nodes for 539K LCA queries -- node-heavy
rather than query-heavy).  Each query task probes the grid ring by ring,
reading shared bucket contents.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Side length of the bucket grid.
GRID = 6

#: Maximum points stored per bucket.
BUCKET_CAP = 4


def _query_task(ctx: TaskContext, query: int, qx: float, qy: float) -> None:
    """Find the nearest indexed point by expanding-ring bucket probes."""
    cell_x = min(GRID - 1, max(0, int(qx / 100.0 * GRID)))
    cell_y = min(GRID - 1, max(0, int(qy / 100.0 * GRID)))
    best = -1
    best_dist = float("inf")
    for ring in range(GRID):
        for bx in range(max(0, cell_x - ring), min(GRID, cell_x + ring + 1)):
            for by in range(max(0, cell_y - ring), min(GRID, cell_y + ring + 1)):
                if max(abs(bx - cell_x), abs(by - cell_y)) != ring:
                    continue
                count = ctx.read(("bucket_n", bx, by))
                for slot in range(count):
                    px = ctx.read(("bx", bx, by, slot))
                    py = ctx.read(("by", bx, by, slot))
                    dist = (px - qx) ** 2 + (py - qy) ** 2
                    if dist < best_dist:
                        best_dist = dist
                        best = ctx.read(("bid", bx, by, slot))
        if best >= 0:
            break  # conservative: one extra ring would be exact
    ctx.write(("nn", query), best)


def _split_queries(
    ctx: TaskContext, queries: Tuple[Tuple[int, float, float], ...]
) -> None:
    """Recursive splitter down to single-query leaves."""
    if len(queries) == 1:
        query, qx, qy = queries[0]
        _query_task(ctx, query, qx, qy)
        return
    mid = len(queries) // 2
    ctx.spawn(_split_queries, queries[:mid])
    ctx.spawn(_split_queries, queries[mid:])
    ctx.sync()


def build(scale: int = 1) -> TaskProgram:
    """Build the nearestneigh program: ``20*scale`` points, ``16*scale`` queries."""
    points = 20 * scale
    queries = 16 * scale
    rng = random.Random(29)
    initial = {}
    buckets = {}
    for bx in range(GRID):
        for by in range(GRID):
            buckets[(bx, by)] = 0
    for i in range(points):
        x, y = rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)
        bx = min(GRID - 1, int(x / 100.0 * GRID))
        by = min(GRID - 1, int(y / 100.0 * GRID))
        slot = buckets[(bx, by)]
        if slot >= BUCKET_CAP:
            continue
        buckets[(bx, by)] = slot + 1
        initial[("bx", bx, by, slot)] = x
        initial[("by", bx, by, slot)] = y
        initial[("bid", bx, by, slot)] = i
    for (bx, by), count in buckets.items():
        initial[("bucket_n", bx, by)] = count
    query_points = tuple(
        (q, rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)) for q in range(queries)
    )

    def main(ctx: TaskContext) -> None:
        ctx.spawn(_split_queries, query_points)
        ctx.sync()

    return TaskProgram(main, name="nearestneigh", initial_memory=initial)


register(
    WorkloadSpec(
        name="nearestneigh",
        description="per-query tasks probing a shared bucket grid",
        build=build,
        paper=PaperRow(
            locations=1_130_000, nodes=18_690_000, lcas=539_031, unique_pct=53.13
        ),
    )
)
