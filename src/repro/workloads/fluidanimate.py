"""fluidanimate -- PARSEC SPH fluid simulation (grid-based).

A simplified smoothed-particle-hydrodynamics timestep on a uniform grid:
each frame, parallel per-row tasks read their row's cells *and both
neighbouring rows* (the shared-neighbour reads are the source of
fluidanimate's 7.41M LCA queries in Table 1), computing new densities into
a double buffer; after a sync a second parallel phase swaps the buffers.
Cell mass exchanged across the moving boundary column is updated inside
critical sections, like the original's per-cell mutexes.
"""

from __future__ import annotations

import random

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.workloads import PaperRow, WorkloadSpec, register

#: Frames simulated.
FRAMES = 2


def _density_row(ctx: TaskContext, row: int, cols: int, rows: int) -> None:
    """Compute smoothed density for one row from the 3-row neighbourhood."""
    for col in range(cols):
        total = 0.0
        weight = 0.0
        for dr in (-1, 0, 1):
            neighbour = row + dr
            if 0 <= neighbour < rows:
                total += ctx.read(("rho", neighbour, col))
                weight += 1.0
        for dc in (-1, 1):
            neighbour = col + dc
            if 0 <= neighbour < cols:
                total += ctx.read(("rho", row, neighbour))
                weight += 1.0
        ctx.write(("rho2", row, col), total / weight)
    # Boundary mass exchange: shared across row tasks, hence locked.
    with ctx.lock("boundary"):
        ctx.write(("mass",), ctx.read(("mass",)) + 0.001 * row)


def _swap_row(ctx: TaskContext, row: int, cols: int) -> None:
    """Copy the double buffer back: rho <- rho2."""
    for col in range(cols):
        ctx.write(("rho", row, col), ctx.read(("rho2", row, col)))


def build(scale: int = 1) -> TaskProgram:
    """Build the fluidanimate program: an ``8*scale x 8`` grid, 2 frames."""
    rows = 8 * scale
    cols = 8
    rng = random.Random(17)
    initial = {("rho", r, c): rng.uniform(0.5, 2.0) for r in range(rows) for c in range(cols)}
    initial[("mass",)] = 0.0

    def main(ctx: TaskContext) -> None:
        for _ in range(FRAMES):
            for row in range(rows):
                ctx.spawn(_density_row, row, cols, rows)
            ctx.sync()
            for row in range(rows):
                ctx.spawn(_swap_row, row, cols)
            ctx.sync()

    return TaskProgram(main, name="fluidanimate", initial_memory=initial)


register(
    WorkloadSpec(
        name="fluidanimate",
        description="SPH density pass over a grid with neighbour-row reads",
        build=build,
        paper=PaperRow(
            locations=19_730_000, nodes=759_830, lcas=7_410_000, unique_pct=61.35
        ),
    )
)
