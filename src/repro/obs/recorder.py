"""The :class:`Recorder` protocol: how the pipeline emits observability.

Design constraint (ISSUE 2, paper Section 5): the checking hot paths run
millions of events, so the *disabled* configuration must cost nothing
measurable.  The layer therefore follows the flush pattern:

* the checkers and engines accumulate plain integer counters as part of
  their normal bookkeeping (no recorder calls per event);
* pipeline drivers (replay, ``run_program``, the sharded driver) test
  ``recorder.enabled`` **once** and only then wrap work in spans and
  flush the accumulated counters at phase boundaries.

:data:`NULL_RECORDER` -- an instance of the no-op base class -- is the
default everywhere; ``benchmarks/bench_obs_overhead.py`` holds the
disabled path to <2% overhead on a 100k-event trace.

Span paths nest lexically: entering ``"replay"`` inside ``"check"``
aggregates under ``"check/replay"``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram, MetricsSnapshot, SpanStats


class _NullSpan:
    """Context manager that does nothing; shared singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class Recorder:
    """No-op recorder: the zero-overhead default of every pipeline hook.

    Also the base class of :class:`MetricsRecorder`.  Every method is
    safe to call unconditionally; hot paths should instead branch on
    :attr:`enabled` once per phase and skip the calls entirely.
    """

    #: ``False`` on the no-op base; pipeline code gates all per-phase
    #: metric work on this single attribute.
    enabled = False

    def count(self, name: str, value: float = 1) -> None:
        """Add *value* to counter *name* (monotonic, merged by sum)."""

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* (point-in-time level, merged by max)."""

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name*."""

    def span(self, name: str) -> Any:
        """A timing context manager; nested spans build ``a/b`` paths."""
        return NULL_SPAN

    def counter_value(self, name: str) -> float:
        """Current value of counter *name* (0 when absent / disabled)."""
        return 0

    def snapshot(self) -> MetricsSnapshot:
        """Capture everything recorded so far (empty when disabled)."""
        return MetricsSnapshot()

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Merge a snapshot's values into this recorder."""

    def add_shard(self, index: int, snapshot_dict: Dict[str, Any]) -> None:
        """Attach one worker's snapshot (dict form) to this recorder,
        merging its counters/gauges/histograms into the parent totals and
        keeping the per-shard spans addressable in the output."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} enabled={self.enabled}>"


#: The process-wide disabled recorder; use instead of ``None`` defaults.
NULL_RECORDER = Recorder()


class _Span:
    """Timing context manager of :class:`MetricsRecorder`."""

    __slots__ = ("_recorder", "_name", "_path", "_started")

    def __init__(self, recorder: "MetricsRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._path = ""
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._path = self._recorder._enter_span(self._name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - self._started
        self._recorder._exit_span(self._path, elapsed)


class MetricsRecorder(Recorder):
    """Collecting recorder: counters, gauges, histograms, nested spans.

    Thread-safe for concurrent ``count``/``gauge``/``observe`` calls
    (the work-stealing executor runs observers from worker threads);
    spans track nesting per recorder, so keep span usage on the driving
    thread -- which is where all pipeline phases run.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._span_stack: List[str] = []
        self._shards: List[Dict[str, Any]] = []

    # -- recording ---------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram()
                self._histograms[name] = hist
            hist.observe(value)

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def _enter_span(self, name: str) -> str:
        path = "/".join(self._span_stack + [name])
        self._span_stack.append(name)
        return path

    def _exit_span(self, path: str, elapsed: float) -> None:
        if self._span_stack:
            self._span_stack.pop()
        with self._lock:
            stats = self._spans.get(path)
            if stats is None:
                stats = SpanStats(path)
                self._spans[path] = stats
            stats.record(elapsed)

    # -- access / combination ----------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            snapshot = MetricsSnapshot()
            snapshot.counters = dict(self._counters)
            snapshot.gauges = dict(self._gauges)
            for name, hist in self._histograms.items():
                copy = Histogram()
                copy.merge(hist)
                snapshot.histograms[name] = copy
            for path, span in self._spans.items():
                snapshot.spans[path] = SpanStats(
                    path, span.count, span.total_s, span.min_s, span.max_s
                )
            snapshot.shards = list(self._shards)
            return snapshot

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.gauges.items():
                current = self._gauges.get(name)
                self._gauges[name] = (
                    value if current is None else max(current, value)
                )
            for name, hist in snapshot.histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    mine = Histogram()
                    self._histograms[name] = mine
                mine.merge(hist)
            for path, span in snapshot.spans.items():
                mine_span = self._spans.get(path)
                if mine_span is None:
                    self._spans[path] = SpanStats(
                        path, span.count, span.total_s, span.min_s, span.max_s
                    )
                else:
                    mine_span.merge(span)
            self._shards.extend(snapshot.shards)

    def add_shard(self, index: int, snapshot_dict: Dict[str, Any]) -> None:
        shard_snapshot = MetricsSnapshot.from_dict(snapshot_dict)
        shard_snapshot.shards = []  # workers never nest further
        spans = shard_snapshot.spans
        shard_snapshot.spans = {}  # totals merge; spans stay per-shard
        self.absorb(shard_snapshot)
        entry = dict(snapshot_dict)
        entry.pop("schema", None)
        entry["shard"] = index
        entry["spans"] = [spans[path].to_dict() for path in sorted(spans)]
        with self._lock:
            self._shards.append(entry)
            self._shards.sort(key=lambda shard: shard.get("shard", 0))
