"""Metric value types and the mergeable :class:`MetricsSnapshot`.

The observability layer (:mod:`repro.obs`) separates *collection* (the
:class:`~repro.obs.recorder.Recorder` protocol, called from the checking
pipeline) from *values* (this module): counters, gauges, histograms and
aggregated phase spans, all of which can be snapshotted into one plain
JSON-serializable object and merged across worker processes -- the
metrics analogue of :meth:`repro.report.ViolationReport.merge`.

Merge semantics mirror what the sharded pipeline needs:

* **counters** sum -- a per-shard event count totals to the run's count;
* **gauges** keep the maximum -- per-shard footprints (entries, bytes)
  become the peak, which is what capacity planning wants;
* **histograms** merge bucket-wise (power-of-two buckets, exact for the
  count/total/min/max moments);
* **spans** aggregate per path -- total seconds, call count, min/max.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Version stamp of the on-disk JSON layout (``--metrics out.json``).
METRICS_SCHEMA = "repro-metrics/1"


class Histogram:
    """Power-of-two bucketed distribution with exact moments.

    A value ``v`` lands in the bucket keyed by its binary exponent
    (``frexp``), so buckets cover ``[2**(e-1), 2**e)``; zero and negative
    values share the ``0`` bucket.  Count, sum, min and max are exact;
    the buckets give shape at fixed memory cost.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for exponent, count in other.buckets.items():
            self.buckets[exponent] = self.buckets.get(exponent, 0) + count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(exp): n for exp, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        hist.min = data.get("min")
        hist.max = data.get("max")
        hist.buckets = {
            int(exp): int(n) for exp, n in data.get("buckets", {}).items()
        }
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Histogram n={self.count} mean={self.mean:.4g}>"


@dataclass
class SpanStats:
    """Aggregated timings of one span *path* (e.g. ``"check/replay"``)."""

    path: str
    count: int = 0
    total_s: float = 0.0
    min_s: Optional[float] = None
    max_s: Optional[float] = None

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if self.min_s is None or seconds < self.min_s:
            self.min_s = seconds
        if self.max_s is None or seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "SpanStats") -> None:
        self.count += other.count
        self.total_s += other.total_s
        if other.min_s is not None and (self.min_s is None or other.min_s < self.min_s):
            self.min_s = other.min_s
        if other.max_s is not None and (self.max_s is None or other.max_s > self.max_s):
            self.max_s = other.max_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanStats":
        return cls(
            path=data["path"],
            count=int(data.get("count", 0)),
            total_s=float(data.get("total_s", 0.0)),
            min_s=data.get("min_s"),
            max_s=data.get("max_s"),
        )


@dataclass
class MetricsSnapshot:
    """One immutable-by-convention capture of a recorder's state.

    Plain data end to end: picklable across worker processes, JSON round-
    trippable, and mergeable.  ``shards`` holds the per-shard snapshots of
    a sharded run (as dicts, shard index under ``"shard"``), so the
    ``--metrics`` output keeps per-shard spans next to the merged totals.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    shards: List[Dict[str, Any]] = field(default_factory=list)

    # -- combination -------------------------------------------------------

    def absorb(self, other: "MetricsSnapshot") -> None:
        """Merge *other* into this snapshot (counters sum, gauges max)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = Histogram()
                self.histograms[name] = mine
            mine.merge(hist)
        for path, span in other.spans.items():
            mine_span = self.spans.get(path)
            if mine_span is None:
                self.spans[path] = SpanStats(
                    path, span.count, span.total_s, span.min_s, span.max_s
                )
            else:
                mine_span.merge(span)
        self.shards.extend(other.shards)

    @classmethod
    def merge(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Merge many snapshots into a fresh one (the spans/counters
        analogue of :meth:`repro.report.ViolationReport.merge`)."""
        merged = cls()
        for snapshot in snapshots:
            merged.absorb(snapshot)
        return merged

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
            "spans": [self.spans[path].to_dict() for path in sorted(self.spans)],
        }
        if self.shards:
            data["shards"] = list(self.shards)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        snapshot = cls()
        snapshot.counters = dict(data.get("counters", {}))
        snapshot.gauges = dict(data.get("gauges", {}))
        snapshot.histograms = {
            name: Histogram.from_dict(hist)
            for name, hist in data.get("histograms", {}).items()
        }
        for span in data.get("spans", []):
            stats = SpanStats.from_dict(span)
            snapshot.spans[stats.path] = stats
        snapshot.shards = list(data.get("shards", []))
        return snapshot

    def dump(self, path: str) -> None:
        """Write the snapshot as pretty-printed JSON to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "MetricsSnapshot":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __bool__(self) -> bool:
        return bool(
            self.counters or self.gauges or self.histograms or self.spans
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<MetricsSnapshot counters={len(self.counters)} "
            f"spans={len(self.spans)} shards={len(self.shards)}>"
        )


def is_metrics_dict(data: Any) -> bool:
    """``True`` iff *data* looks like a serialized snapshot."""
    return isinstance(data, dict) and data.get("schema") == METRICS_SCHEMA
