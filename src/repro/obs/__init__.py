"""repro.obs -- the unified observability layer of the checking pipeline.

The paper's whole evaluation (Section 5, Figures 13/14, Table 1) is
instrumentation counts: accesses checked, pattern promotions, metadata
footprint, per-phase overhead.  This package gives the reproduction one
surface for all of it:

* :class:`~repro.obs.recorder.Recorder` -- the collection protocol:
  counters, gauges, histograms and nestable phase spans.  The default
  everywhere is :data:`~repro.obs.recorder.NULL_RECORDER`, a no-op whose
  cost on the hot paths is held under 2% by
  ``benchmarks/bench_obs_overhead.py``.
* :class:`~repro.obs.recorder.MetricsRecorder` -- the collecting
  implementation, snapshot-able into a
  :class:`~repro.obs.metrics.MetricsSnapshot` that merges across the
  sharded pipeline's worker processes exactly like
  :meth:`repro.report.ViolationReport.merge` merges findings.
* :data:`METRIC_NAMES` -- the canonical metric name registry.  Checkers
  expose their accumulated counters through ``metrics()`` under these
  names, so an in-process run (``jobs=1``), a sharded run (``jobs=4``)
  and a live ``run_program`` all report field-for-field comparable
  numbers.

Phase span names (nesting reflects the pipeline)::

    record          program execution with trace recording
    dpst.build      DPST materialization (runtime build or file header)
    check           one CheckSession.check() call
    replay          event replay through one checker
    sharded         the sharded driver, containing:
      partition       bucketing in-memory events by location shard
      map             the worker pool pass (per-shard spans live in the
                      per-shard snapshots under ``shards[i]``)
      merge           ViolationReport + metrics merge

Flush helpers (:func:`flush_observer_metrics`, :func:`flush_engine_stats`)
move accumulated counters into a recorder at phase boundaries; hot loops
never call the recorder per event.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import (
    METRICS_SCHEMA,
    Histogram,
    MetricsSnapshot,
    SpanStats,
    is_metrics_dict,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NULL_SPAN,
    MetricsRecorder,
    Recorder,
)

__all__ = [
    "METRICS_SCHEMA",
    "METRIC_NAMES",
    "SHARD_SENSITIVE_METRICS",
    "SPAN_CHECK",
    "SPAN_DPST_BUILD",
    "SPAN_LINT",
    "SPAN_MAP",
    "SPAN_MERGE",
    "SPAN_PARTITION",
    "SPAN_RECORD",
    "SPAN_REPLAY",
    "SPAN_SHARDED",
    "Histogram",
    "MetricsRecorder",
    "MetricsSnapshot",
    "NULL_RECORDER",
    "NULL_SPAN",
    "Recorder",
    "SpanStats",
    "comparable_counters",
    "flush_engine_stats",
    "flush_observer_metrics",
    "is_metrics_dict",
    "register_engine_metric_names",
]

# -- canonical span names ----------------------------------------------------

SPAN_RECORD = "record"
SPAN_DPST_BUILD = "dpst.build"
SPAN_CHECK = "check"
SPAN_REPLAY = "replay"
SPAN_SHARDED = "sharded"
SPAN_PARTITION = "partition"
SPAN_MAP = "map"
SPAN_MERGE = "merge"
SPAN_LINT = "static.lint"

# -- canonical metric names --------------------------------------------------

#: The metric name registry: every counter/gauge the pipeline emits, with
#: its meaning.  ``docs/api.md`` renders this table; tests assert that
#: checkers only emit registered names.
METRIC_NAMES: Dict[str, str] = {
    # replay / routing
    "trace.events.routed": "memory events delivered to a checker during replay",
    # parallelism engines (EngineStats; Table 1 columns)
    "engine.queries": "parallelism queries issued (Table 1: LCA queries)",
    "engine.unique": "distinct step pairs among the queries (cache misses)",
    "engine.hops": "parent-link hops / label entries walked by queries",
    # checker-generic
    "checker.accesses_checked": "memory accesses a checker actually analyzed",
    # optimized checker (Figures 6-9)
    "checker.optimized.promotions": "two-access patterns promoted local -> global",
    "checker.optimized.promotions_blocked": "candidate patterns dropped (parallel occupant)",
    "checker.optimized.memo_hits": "re-checks skipped by global-space version stamps",
    "checker.optimized.pattern_checks": "stored patterns tested against an interleaver",
    "checker.optimized.global_entries": "occupied global access-history entries (<=12/location in paper mode)",
    "checker.optimized.local_entries": "occupied per-task local entries",
    "checker.optimized.tracked_locations": "locations with a global space",
    # basic checker (Figure 3)
    "checker.basic.history_entries": "stored access-history entries (grows with accesses)",
    "checker.basic.history_peak": "largest single-location history",
    "checker.basic.tracked_locations": "locations with a history",
    # velodrome baseline
    "checker.velodrome.edges": "happens-before edges materialized",
    "checker.velodrome.transactions": "transactions on at least one conflict edge",
    # regiontrack baseline (arXiv:2008.04479)
    "checker.regiontrack.regions": "per-(location, step) region summaries materialized",
    "checker.regiontrack.pair_witnesses": "two-access pattern witnesses stored (<=4/region)",
    "checker.regiontrack.lockset_entries": "distinct-lockset first accesses stored",
    "checker.regiontrack.triple_checks": "pair/single witnesses tested for an unserializable triple",
    "checker.regiontrack.memo_hits": "interleaver probes skipped by pair-generation stamps",
    "checker.regiontrack.tracked_locations": "locations with region summaries",
    # streaming wrapper (repro.checker.streaming)
    "streaming.events": "memory events consumed by a streaming checker",
    "streaming.compactions": "compaction sweeps performed",
    "streaming.evicted": "dead local cells evicted by sweeps",
    "streaming.peak_window": "peak live local entries observed at sweep boundaries",
    # race detector
    "checker.racedetector.races": "distinct data races recorded",
    # findings
    "report.violations": "distinct violations in the checker's report",
    "report.raw_findings": "total findings before deduplication",
    # runtime (live runs only)
    "dpst.nodes": "DPST nodes materialized (gauge)",
    "runtime.lock_version_bumps": "fresh versioned lock names minted on re-acquisition",
    "runtime.tasks": "tasks executed",
    "runtime.memory_events": "instrumented shared-memory accesses",
    "runtime.lock_ops": "lock acquisitions + releases",
    "runtime.syncs": "sync / finish-scope closures",
    # sharded driver bookkeeping
    "sharded.workers": "worker processes used by the sharded driver",
    "sharded.shards_nonempty": "shards that received at least one event",
    "sharded.heartbeats": "worker completions observed by the driver",
    # fault tolerance (worker supervision, checkpoints, lenient reads)
    "sharded.shard_failures": "worker attempts that crashed, errored, or timed out",
    "sharded.retries": "shard attempts relaunched after a failure",
    "sharded.inline_fallbacks": "shards degraded to in-process checking after exhausting retries",
    "sharded.resumed_shards": "shards merged from checkpoints instead of re-run",
    "trace.lines_skipped": "undecodable trace lines skipped by a lenient reader",
    # per-worker (inside shard snapshots)
    "worker.elapsed_s": "wall seconds one worker spent on its shard",
    "worker.pid": "OS pid of the worker process",
    # static lint pass (repro lint / CheckSession.lint)
    "static.lint.runs": "lint passes executed",
    "static.lint.accesses": "static accesses collected by the skeleton builder",
    "static.lint.steps": "static step regions in the skeleton",
    "static.lint.candidates": "candidate unserializable triples found statically",
    "static.lint.errors": "error-severity diagnostics",
    "static.lint.warnings": "warning-severity diagnostics",
    "static.lint.serial_locations": "exact locations proven schedule-serial",
    # interprocedural call graph (AST front end)
    "static.callgraph.functions": "functions reachable in the lint call graph",
    "static.callgraph.sccs": "strongly connected components in the lint call graph",
    "static.callgraph.unresolved_calls": "call sites the static resolver could not resolve",
    # static prefilter (sharded/in-process event dropping)
    "static.prefilter.locations": "locations the dynamic check skipped as schedule-serial",
    "static.prefilter.proven": "locations individually proven schedule-serial by the lint pass",
    "static.prefilter.poisoned": "serial-looking locations whose proof an imprecision voided",
    "static.prefilter.events_skipped": "memory events dropped by the static prefilter",
    "static.prefilter.dropped_events": "memory events dropped by the per-location static prefilter",
    "static.prefilter.disabled": "prefilter requests refused (no provable locations or non-trivial annotations)",
    # content-addressed result cache (repro.cache / CheckSession cache_dir=)
    "cache.hit": "checks served from the content-addressed result cache",
    "cache.miss": "checks computed fresh and stored into the result cache",
    "cache.bytes": "bytes moved through the result cache (stored on miss, read on hit)",
    "cache.bypass": "cache requests refused (uncacheable checker/prefilter/annotations)",
    # differential fuzzing (repro fuzz / repro.fuzz)
    "fuzz.runs": "programs pushed through the differential oracle",
    "fuzz.comparisons": "oracle legs compared against the reference verdict",
    "fuzz.events_checked": "memory events in the oracle's reference traces",
    "fuzz.disagreements": "broken equivalences found by the oracle",
    "fuzz.shrink_steps": "accepted delta-debugging reductions while minimizing reproducers",
}

#: Counters whose totals legitimately differ between ``jobs=1`` and
#: ``jobs=N``: per-process memo tables make uniqueness/hop counts local
#: to each worker, and streaming compaction cadence is per shard (a shard
#: holding 1/Nth of the events sweeps at different points than the full
#: stream, so sweep/eviction/peak totals do not sum -- only
#: ``streaming.events`` partitions exactly).  Everything else in
#: :data:`METRIC_NAMES` that the offline pipeline emits must total
#: identically regardless of sharding (enforced by
#: ``tests/test_metrics_sharded.py``).
SHARD_SENSITIVE_METRICS = frozenset(
    {
        "engine.unique",
        "engine.hops",
        "streaming.compactions",
        "streaming.evicted",
        "streaming.peak_window",
    }
)


def register_engine_metric_names(engine_name: str) -> None:
    """Reserve the per-engine ``engine.<name>.*`` metric names.

    Called by :func:`repro.dpst.engines.register_engine` for every
    registered engine (built-in or third-party), so per-engine counters
    are always legal :data:`METRIC_NAMES` members and render in
    ``repro stats`` output.
    """
    METRIC_NAMES.setdefault(
        f"engine.{engine_name}.queries",
        f"parallelism queries answered by the {engine_name!r} engine",
    )
    METRIC_NAMES.setdefault(
        f"engine.{engine_name}.unique",
        f"distinct node pairs queried on the {engine_name!r} engine",
    )
    METRIC_NAMES.setdefault(
        f"engine.{engine_name}.hops",
        f"traversal/maintenance work units spent by the {engine_name!r} engine",
    )


def _shard_sensitive(name: str) -> bool:
    """Uniqueness/hop counts are per-process; aggregate and per-engine
    variants (``engine.unique``, ``engine.depa.hops``, ...) all qualify."""
    return name.startswith("engine.") and (
        name.endswith(".unique") or name.endswith(".hops")
    )


def comparable_counters(counters: Dict[str, float]) -> Dict[str, float]:
    """The shard-stable slice of *counters*.

    Drops :data:`SHARD_SENSITIVE_METRICS` (including their per-engine
    ``engine.<name>.unique`` / ``engine.<name>.hops`` variants) and the
    sharded driver's own bookkeeping (``sharded.*``), leaving exactly the
    counters whose ``jobs=1`` and ``jobs=N`` totals must agree.
    """
    return {
        name: value
        for name, value in counters.items()
        if name not in SHARD_SENSITIVE_METRICS
        and not _shard_sensitive(name)
        and not name.startswith("sharded.")
        and not name.startswith("worker.")
    }


# -- flush helpers -----------------------------------------------------------


def flush_observer_metrics(recorder: Recorder, observer: Any) -> None:
    """Move an observer's accumulated ``metrics()`` into *recorder*.

    Observers accumulate plain integers on their hot paths; drivers call
    this once per phase.  Observers without a ``metrics`` method (or with
    an empty dict) are ignored.
    """
    if not recorder.enabled:
        return
    metrics = getattr(observer, "metrics", None)
    if metrics is None:
        return
    for name, value in metrics().items():
        recorder.count(name, value)


def flush_engine_stats(recorder: Recorder, engine: Optional[Any]) -> None:
    """Flush a parallelism engine's :class:`~repro.dpst.stats.EngineStats`.

    Emits the aggregate ``engine.*`` counters plus, when the engine
    carries its registry name (``engine_name``), the per-engine
    ``engine.<name>.*`` variants so mixed-engine snapshots stay
    distinguishable.
    """
    if not recorder.enabled or engine is None:
        return
    stats = engine.stats
    name = getattr(engine, "engine_name", None)
    for metric, value in stats.as_metrics(name).items():
        recorder.count(metric, value)


# Importing the engine registry ensures the built-in engines' per-engine
# metric names are reserved the moment repro.obs is usable.  Guarded so a
# partially initialized interpreter (circular-import edge) degrades to
# aggregate-only names instead of failing; the dpst chain never imports
# repro.obs at module level, so in practice this always succeeds.
try:  # pragma: no branch
    from repro.dpst import engines as _engines  # noqa: F401  (side effect)
except ImportError:  # pragma: no cover - defensive only
    pass
