"""The unified checking front door: :class:`CheckSession`.

One entry point for every way of checking something:

* a live :class:`~repro.runtime.program.TaskProgram` (or a bare body
  function) -- executed once with trace recording, then checked;
* an in-memory recorded :class:`~repro.trace.trace.Trace`;
* a trace *file path* (either serialization format; the streaming JSONL
  format is checked without ever materializing the events).

and every way of running a checker over it: any :func:`make_checker`
spec (name, class, or instance), in-process (``jobs=1``) or through the
location-sharded multiprocessing pipeline (``jobs>1``, see
:mod:`repro.checker.sharded`).

::

    from repro import CheckSession

    report = CheckSession("run.jsonl", jobs=4).check()
    report = CheckSession(program, checker="basic").check()

    session = CheckSession(trace)
    session.check("optimized")
    session.check("racedetector")
    session.reports          # {"optimized": ..., "racedetector": ...}
    session.first_violation  # first finding across every check so far

:func:`check_trace` is the one-call convenience wrapper, mirroring
:func:`repro.runtime.program.check_program` for offline sources.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Union

from repro.checker import checker_name_of, make_checker
from repro.checker.annotations import AtomicAnnotations
from repro.checker.sharded import CheckerSpec, check_sharded, filter_skipped
from repro.errors import TraceError
from repro.report import ViolationReport
from repro.runtime.program import TaskProgram, run_program
from repro.trace.replay import replay_events, replay_memory_events
from repro.trace.serialize import TraceReader, open_trace
from repro.trace.trace import Trace

Source = Union[TaskProgram, Trace, TraceReader, str, "os.PathLike[str]"]


class CheckSession:
    """A checking session over one program, trace, or trace file.

    Parameters
    ----------
    source:
        What to check.  A :class:`TaskProgram` (or bare callable body) is
        executed once -- lazily, on first use -- with trace recording
        under *executor*; a :class:`Trace` / :class:`TraceReader` / path
        is checked offline as-is.
    checker:
        Default checker spec for :meth:`check` -- a registered name, a
        checker class, or a pre-built instance.
    jobs:
        Default worker count for :meth:`check`.  ``1`` (default) checks
        in-process; ``N > 1`` runs the location-sharded pipeline;
        ``None`` uses one worker per CPU.
    engine:
        Parallelism-query engine: any registered name in
        :func:`repro.dpst.engines.available_engines` (built-ins:
        ``"lca"``, ``"labels"``, ``"vc"``, ``"depa"``).  Unknown names
        raise :class:`repro.dpst.engines.UnknownEngineError` at check
        time, naming the valid engines.
    executor:
        Scheduling strategy when *source* is a program.
    annotations:
        Atomicity annotations.  Defaults to the program's own annotations
        for program sources, check-everything otherwise.
    lca_cache:
        Enable the LCA memo table during replay.
    recorder:
        Optional :class:`repro.obs.Recorder` collecting metrics and
        phase spans for everything this session does (recording, DPST
        builds, every check, the sharded pipeline).  Defaults to the
        no-op :data:`repro.obs.NULL_RECORDER`; pass a
        :class:`repro.obs.MetricsRecorder` and read :attr:`metrics`
        afterwards.
    strict:
        ``False`` opens file sources in lenient mode: undecodable or
        truncated JSONL lines are counted (:attr:`lines_skipped`, and
        the ``trace.lines_skipped`` metric when observed) and skipped
        instead of aborting the check mid-stream.  Ignored for
        non-file sources.
    """

    def __init__(
        self,
        source: Source,
        checker: CheckerSpec = "optimized",
        jobs: Optional[int] = 1,
        engine: str = "lca",
        executor: Any = None,
        annotations: Optional[AtomicAnnotations] = None,
        lca_cache: bool = True,
        recorder: Any = None,
        strict: bool = True,
    ) -> None:
        if recorder is None:
            from repro.obs import NULL_RECORDER

            recorder = NULL_RECORDER
        self.checker = checker
        self.jobs = jobs
        self.engine = engine
        self.executor = executor
        self.lca_cache = lca_cache
        self.strict = strict
        #: The session's observability sink (a :class:`repro.obs.Recorder`).
        self.recorder = recorder
        #: Reports of every :meth:`check` call, keyed by checker name.
        self.reports: Dict[str, ViolationReport] = {}
        #: Outcome of the last ``static_prefilter=`` request (see
        #: :meth:`check`): ``{"requested", "applied", "locations",
        #: "reason"}`` -- the CLI renders this so skips are never silent.
        self.prefilter_info: Optional[Dict[str, Any]] = None
        #: Outcome of the last ``cache_dir=`` request (see :meth:`check`):
        #: ``{"requested", "applied", "hit", "key", "reason"}`` -- like
        #: :attr:`prefilter_info`, a bypassed cache is never silent.
        self.cache_info: Optional[Dict[str, Any]] = None
        self._lint_report = None
        self._source_digest_memo: Optional[str] = None

        self._program: Optional[TaskProgram] = None
        self._trace: Optional[Trace] = None
        self._reader: Optional[TraceReader] = None
        self._run_result = None
        self._dpst_spanned = False

        if isinstance(source, TaskProgram):
            self._program = source
        elif callable(source):
            self._program = TaskProgram(source)
        elif isinstance(source, Trace):
            self._trace = source
        elif isinstance(source, TraceReader):
            self._reader = source
        elif isinstance(source, (str, os.PathLike)):
            self._reader = open_trace(source, strict=strict)
        else:
            raise TraceError(
                f"cannot check {type(source).__name__}: expected a "
                "TaskProgram, a body callable, a Trace, a TraceReader, "
                "or a trace file path"
            )
        if annotations is not None:
            self.annotations = annotations
        elif self._program is not None:
            self.annotations = self._program.annotations
        else:
            self.annotations = None

    # -- source access ----------------------------------------------------

    @property
    def source_kind(self) -> str:
        """``"program"``, ``"trace"``, or ``"file"``."""
        if self._program is not None:
            return "program"
        if self._reader is not None:
            return "file"
        return "trace"

    @property
    def run_result(self):
        """The :class:`RunResult` of a program source (run on demand)."""
        if self._program is None:
            return None
        if self._run_result is None:
            self._run_result = run_program(
                self._program,
                executor=self.executor,
                record_trace=True,
                # Runtime counters (tasks, memory events, lock ops, syncs)
                # ride along whenever the session is observed.
                collect_stats=self.recorder.enabled,
                parallel_engine=self.engine,
                lca_cache=self.lca_cache,
                recorder=self.recorder,
            )
        return self._run_result

    @property
    def trace(self) -> Trace:
        """The trace under check, materialized in memory on first access."""
        if self._trace is None:
            if self._program is not None:
                self._trace = self.run_result.trace
            else:
                self._trace = self._reader.read()
        return self._trace

    @property
    def dpst(self):
        """The DPST of the execution under check."""
        if self._trace is not None:
            return self._trace.dpst
        if self._reader is not None:
            return self._reader.dpst
        return self.trace.dpst

    # -- checking ----------------------------------------------------------

    def check(
        self,
        checker: Optional[CheckerSpec] = None,
        jobs: Optional[int] = None,
        engine: Optional[str] = None,
        static_prefilter: Any = False,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        on_shard_failure: str = "retry",
        max_retries: int = 2,
        shard_timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        cache_dir: Optional[str] = None,
        streaming: bool = False,
        window: Optional[int] = None,
        **checker_kwargs: Any,
    ) -> ViolationReport:
        """Run one checker over the source; return (and remember) its report.

        *checker* / *jobs* / *engine* default to the session's settings;
        ``checker_kwargs`` are forwarded to checker construction (names
        and classes only).  Repeated calls reuse the recorded trace, so a
        program source executes exactly once per session.  The per-call
        *engine* override lets one session compare any registered
        parallelism engines over the same recorded trace (the
        differential fuzzing oracle runs every
        :func:`~repro.dpst.engines.available_engines` name this way);
        it applies to offline replays -- a program source's recording
        engine stays the session's.

        ``static_prefilter`` drops events on locations the static lint
        pass proves schedule-serial before the dynamic check runs:
        ``True`` lints the session's own program source, or pass a task
        body / :class:`TaskProgram` / generator spec /
        pre-built :class:`~repro.static.lint.LintReport` describing the
        program that produced an offline trace.  Filtering is refused --
        with the reason recorded in :attr:`prefilter_info`, never
        silently -- unless the lint skeleton is fully exact and the
        session's annotations are trivial.

        ``checkpoint_dir`` / ``resume`` persist (and reuse) per-shard
        results; ``on_shard_failure`` / ``max_retries`` /
        ``shard_timeout`` / ``start_method`` configure the worker
        supervision of the sharded pipeline -- all forwarded to
        :func:`repro.checker.sharded.check_sharded` (a ``jobs=1``
        check honors checkpoints too, treating the run as one shard).

        ``cache_dir`` enables the content-addressed result cache
        (:mod:`repro.cache`): the check becomes a hash lookup when the
        same trace was already checked under the same checker/engine
        configuration, and both hits and fresh results are served in
        canonical (jobs-insensitive) violation order.  The cache is
        bypassed -- with the reason recorded in :attr:`cache_info`,
        never silently -- for class/instance checker specs, static
        prefilter requests, and non-trivial annotations, since those
        carry state the key cannot see.

        ``streaming=True`` checks incrementally through
        :class:`repro.checker.streaming.StreamingChecker`: events are
        consumed one at a time (file sources are never materialized, and
        the full event stream -- including task ends -- is replayed so
        finished tasks free their metadata) with a compaction sweep every
        *window* events.  ``window`` defaults to
        :data:`repro.checker.streaming.DEFAULT_WINDOW`; ``0`` disables
        periodic compaction (the ∞ window).  The report is byte-identical
        to the offline check at every window; only peak memory differs.
        Requires a compactable checker -- ``velodrome``, ``basic`` and
        ``regiontrack`` are refused with a
        :class:`~repro.errors.CheckerError`.
        """
        spec = self.checker if checker is None else checker
        jobs = self.jobs if jobs is None else jobs
        engine = self.engine if engine is None else engine
        if window is not None and not streaming:
            from repro.errors import CheckerError

            raise CheckerError(
                "window= only applies to streaming checks; pass "
                "streaming=True (or drop window=)"
            )
        cache_state = self._resolve_cache(
            cache_dir, spec, checker_kwargs, engine, static_prefilter, streaming
        )
        if streaming:
            from repro.checker.streaming import DEFAULT_WINDOW, StreamingChecker

            spec = StreamingChecker(
                window=(
                    DEFAULT_WINDOW
                    if window is None
                    else (None if window == 0 else window)
                ),
                checker=spec,
                **checker_kwargs,
            )
        elif checker_kwargs:
            spec = make_checker(spec, **checker_kwargs)
        if cache_state is not None:
            entry = cache_state["cache"].load(cache_state["key"])
            if entry is not None:
                cache_state["info"]["hit"] = True
                if self.recorder.enabled:
                    self.recorder.count("cache.hit")
                    self.recorder.count("cache.bytes", entry.nbytes)
                self.reports[checker_name_of(spec)] = entry.report
                return entry.report
        skip = self._resolve_prefilter(static_prefilter)
        fault_options = dict(
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            on_shard_failure=on_shard_failure,
            max_retries=max_retries,
            shard_timeout=shard_timeout,
            start_method=start_method,
        )

        if self.recorder.enabled:
            from repro.obs import SPAN_CHECK

            self._span_dpst_build()
            with self.recorder.span(SPAN_CHECK):
                report = self._dispatch(spec, jobs, engine, skip, fault_options)
        else:
            report = self._dispatch(spec, jobs, engine, skip, fault_options)
        if cache_state is not None:
            from repro.cache import normalized_report_copy

            report = normalized_report_copy(report)
            nbytes = cache_state["cache"].store(
                cache_state["key"], report, meta=cache_state["meta"]
            )
            if self.recorder.enabled:
                self.recorder.count("cache.miss")
                self.recorder.count("cache.bytes", nbytes)
        self.reports[checker_name_of(spec)] = report
        return report

    def _source_digest(self) -> str:
        """Content digest of the source, memoized for the session."""
        from repro.cache import file_digest, trace_digest

        if self._source_digest_memo is None:
            if self._reader is not None and self._trace is None:
                self._source_digest_memo = "file:" + file_digest(
                    self._reader.path
                )
            else:
                self._source_digest_memo = "trace:" + trace_digest(self.trace)
        return self._source_digest_memo

    def _resolve_cache(
        self,
        cache_dir: Optional[str],
        spec: CheckerSpec,
        checker_kwargs: Dict[str, Any],
        engine: str,
        static_prefilter: Any,
        streaming: bool = False,
    ) -> Optional[Dict[str, Any]]:
        """Turn a ``cache_dir=`` request into a ready cache lookup.

        Mirrors :meth:`_resolve_prefilter`: the decision (and any reason
        for bypassing) lands in :attr:`cache_info`, never silently.
        """
        if cache_dir is None:
            return None
        from repro.cache import (
            ResultCache,
            checker_cache_token,
            result_cache_key,
        )

        info: Dict[str, Any] = {
            "requested": True,
            "applied": False,
            "hit": False,
            "key": None,
            "reason": "",
        }
        self.cache_info = info
        token = checker_cache_token(spec, checker_kwargs)
        if streaming:
            info["reason"] = (
                "streaming checks consume the trace incrementally; "
                "serving (or storing) a cached offline result would "
                "defeat the bounded-memory contract"
            )
        elif token is None:
            info["reason"] = (
                "checker spec is not content-addressable (pass a "
                "registered name, not a class or instance, with "
                "JSON-safe kwargs)"
            )
        elif static_prefilter not in (False, None):
            info["reason"] = (
                "static prefilter requests carry program text the "
                "cache key cannot see"
            )
        elif self.annotations is not None and not self.annotations.trivial:
            info["reason"] = (
                "non-trivial atomicity annotations are not part of "
                "the cache key"
            )
        if info["reason"]:
            if self.recorder.enabled:
                self.recorder.count("cache.bypass")
            return None
        digest = self._source_digest()
        key = result_cache_key(digest, token, engine, False, self.strict)
        info["applied"] = True
        info["key"] = key
        info["reason"] = "content-addressed lookup enabled"
        return {
            "cache": ResultCache(cache_dir),
            "key": key,
            "info": info,
            "meta": {
                "trace": digest,
                "checker": token,
                "engine": engine,
                "strict": bool(self.strict),
            },
        }

    def _dispatch(
        self,
        spec: CheckerSpec,
        jobs: Optional[int],
        engine: str,
        skip_locations: Optional[frozenset] = None,
        fault_options: Optional[Dict[str, Any]] = None,
    ) -> ViolationReport:
        fault_options = fault_options or {}
        if jobs == 1 and not fault_options.get("checkpoint_dir"):
            return self._check_in_process(spec, engine, skip_locations)
        return check_sharded(
            self._sharded_source(),
            checker=spec,
            jobs=jobs,
            annotations=self.annotations,
            lca_cache=self.lca_cache,
            parallel_engine=engine,
            recorder=self.recorder,
            skip_locations=skip_locations,
            **fault_options,
        )

    def _span_dpst_build(self) -> None:
        """Time the one-off DPST materialization under ``dpst.build``.

        Program sources build their tree inside :func:`run_program`'s
        ``record`` span, so only offline sources get the explicit span.
        Subsequent checks reuse the built tree; the span fires once.
        """
        if self._dpst_spanned or self._program is not None:
            return
        self._dpst_spanned = True
        from repro.obs import SPAN_DPST_BUILD

        with self.recorder.span(SPAN_DPST_BUILD):
            self.dpst

    def check_all(self, *checkers: CheckerSpec) -> Dict[str, ViolationReport]:
        """Run several checkers (session defaults apply); return the mapping."""
        for spec in checkers:
            self.check(spec)
        return dict(self.reports)

    def _sharded_source(self):
        """The cheapest source shape to hand to the sharded driver."""
        if self._trace is not None:
            return self._trace
        if self._reader is not None:
            return self._reader
        return self.trace  # program: record, then shard the trace

    def _check_in_process(
        self,
        spec: CheckerSpec,
        engine: Optional[str] = None,
        skip_locations: Optional[frozenset] = None,
    ) -> ViolationReport:
        """jobs=1: stream file sources, replay in-memory ones."""
        from repro.checker.streaming import StreamingChecker

        analysis = make_checker(spec)
        # Streaming checkers get the *full* event stream: task-end events
        # let the compaction sweep release finished tasks' metadata.
        # Plain checkers keep the memory-only stream (and its replay
        # function) they have always had.
        full_stream = isinstance(analysis, StreamingChecker)
        file_stream = self._trace is None and self._reader is not None
        if file_stream:
            # File source: never materialize the event list.
            events = (
                self._reader.events()
                if full_stream
                else self._reader.memory_events()
            )
            dpst = self._reader.dpst
            skipped_before = self._reader.lines_skipped
        else:
            events = self.trace.events if full_stream else self.trace.memory_events()
            dpst = self.trace.dpst
        if skip_locations:
            if self.recorder.enabled:
                self.recorder.count(
                    "static.prefilter.locations", len(skip_locations)
                )
            events = filter_skipped(events, skip_locations, self.recorder)
        replay = replay_events if full_stream else replay_memory_events
        report = replay(
            events,
            analysis,
            dpst=dpst,
            annotations=self.annotations,
            lca_cache=self.lca_cache,
            parallel_engine=self.engine if engine is None else engine,
            recorder=self.recorder,
        )
        if file_stream and self.recorder.enabled:
            skipped = self._reader.lines_skipped - skipped_before
            if skipped:
                self.recorder.count("trace.lines_skipped", skipped)
        return report

    # -- static analysis ---------------------------------------------------

    def lint(self, target: Any = None):
        """Run the static lint pass; return its
        :class:`~repro.static.lint.LintReport`.

        With no *target* the session's program source is linted (and the
        report cached); offline sessions must pass the task body,
        :class:`TaskProgram`, or generator spec the trace came from.
        """
        from repro.static.lint import LintReport, lint_program

        if isinstance(target, LintReport):
            return target
        if target is None:
            if self._lint_report is not None:
                return self._lint_report
            if self._program is None:
                raise TraceError(
                    "lint needs program text: this session checks a "
                    f"{self.source_kind}; pass the task body, TaskProgram "
                    "or generator spec explicitly"
                )
            target = self._program
        if self.recorder.enabled:
            from repro.obs import SPAN_LINT

            with self.recorder.span(SPAN_LINT):
                report = lint_program(target)
            counts = report.severity_counts()
            self.recorder.count("static.lint.runs")
            self.recorder.count(
                "static.lint.accesses", len(report.skeleton.accesses)
            )
            self.recorder.count("static.lint.steps", len(report.skeleton.steps()))
            self.recorder.count("static.lint.candidates", len(report.candidates))
            self.recorder.count("static.lint.errors", counts["error"])
            self.recorder.count("static.lint.warnings", counts["warning"])
            self.recorder.count(
                "static.lint.serial_locations", len(report.serial_locations)
            )
            stats = report.callgraph_stats()
            if stats is not None:
                self.recorder.count(
                    "static.callgraph.functions", stats["functions"]
                )
                self.recorder.count("static.callgraph.sccs", stats["sccs"])
                self.recorder.count(
                    "static.callgraph.unresolved_calls",
                    stats["unresolved_calls"],
                )
        else:
            report = lint_program(target)
        if target is self._program:
            self._lint_report = report
        return report

    def _resolve_prefilter(self, request: Any) -> Optional[frozenset]:
        """Turn a ``static_prefilter=`` request into safe skip locations.

        Never silent: the decision (and the reason for refusing) lands in
        :attr:`prefilter_info`.
        """
        if request is False or request is None:
            return None
        report = self.lint(None if request is True else request)
        info: Dict[str, Any] = {
            "requested": True,
            "applied": False,
            "locations": [],
            "poisoned": {},
            "reason": "",
        }
        self.prefilter_info = info
        if self.annotations is not None and not self.annotations.trivial:
            info["reason"] = (
                "non-trivial atomicity annotations (grouped locations "
                "share metadata, so per-location proofs do not compose)"
            )
            if self.recorder.enabled:
                self.recorder.count("static.prefilter.disabled")
            return None
        locations = report.prefilter_locations()
        poisoned = report.poisoned_locations
        info["poisoned"] = {
            repr(location): list(reasons)
            for location, reasons in sorted(
                poisoned.items(), key=lambda kv: repr(kv[0])
            )
        }
        if self.recorder.enabled:
            self.recorder.count("static.prefilter.proven", len(locations))
            self.recorder.count("static.prefilter.poisoned", len(poisoned))
        if not locations:
            info["reason"] = (
                "no locations proven schedule-serial"
                + (f" ({len(poisoned)} poisoned by imprecision)" if poisoned else "")
            )
            if self.recorder.enabled:
                self.recorder.count("static.prefilter.disabled")
            return None
        info["applied"] = True
        info["locations"] = sorted(repr(loc) for loc in locations)
        info["reason"] = (
            f"{len(locations)} location(s) proven schedule-serial"
            + (f" ({len(poisoned)} poisoned by imprecision)" if poisoned else "")
        )
        return frozenset(locations)

    # -- aggregate views ---------------------------------------------------

    def report(self) -> ViolationReport:
        """Merged report across every :meth:`check` so far (checks the
        session default on first use)."""
        if not self.reports:
            self.check()
        return ViolationReport.merge(self.reports.values())

    @property
    def first_violation(self):
        """The first violation found so far, or ``None``."""
        for found in self.report():
            return found
        return None

    @property
    def lines_skipped(self) -> int:
        """Undecodable lines skipped so far by a lenient file reader.

        Always ``0`` for strict or non-file sources; never silent --
        the CLI surfaces a non-zero count after every lenient check.
        """
        return self._reader.lines_skipped if self._reader is not None else 0

    @property
    def metrics(self):
        """A :class:`repro.obs.MetricsSnapshot` of everything recorded so
        far, or ``None`` when the session runs with the no-op recorder."""
        if not self.recorder.enabled:
            return None
        return self.recorder.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<CheckSession {self.source_kind} checker="
            f"{checker_name_of(self.checker)!r} jobs={self.jobs} "
            f"checked={sorted(self.reports)}>"
        )


def check_trace(
    source: Source,
    checker: CheckerSpec = "optimized",
    jobs: Optional[int] = 1,
    **session_options: Any,
) -> ViolationReport:
    """One-call convenience: check any source through a fresh session."""
    return CheckSession(
        source, checker=checker, jobs=jobs, **session_options
    ).check()
