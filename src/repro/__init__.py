"""repro -- Atomicity violation checking for task parallel programs.

A from-scratch Python reproduction of *"Atomicity Violation Checker for
Task Parallel Programs"* (Adarsh Yoga and Santosh Nagarakatte, CGO 2016).

Quickstart
----------
::

    from repro import CheckSession, TaskProgram

    def child(ctx):
        value = ctx.read("X")          # two accesses to X in one step:
        ctx.write("X", value + 1)      # expected to be atomic

    def main(ctx):
        ctx.write("X", 0)
        ctx.spawn(child)
        ctx.spawn(child)
        ctx.sync()

    session = CheckSession(TaskProgram(main))
    report = session.check()           # default: the optimized checker
    print(report.describe())           # -> unserializable RWR/RWW triples

:class:`~repro.session.CheckSession` is the front door for every source
(live programs, recorded traces, trace files) and every checking mode
(in-process or location-sharded across processes); pass
``recorder=MetricsRecorder()`` to collect :mod:`repro.obs` metrics and
phase timings.  The older :func:`~repro.runtime.program.check_program`
one-shot is deprecated.

The package layers:

* :mod:`repro.dpst` -- the dynamic program structure tree (array and
  linked layouts) with cached LCA/parallelism queries;
* :mod:`repro.runtime` -- an instrumented task-parallel runtime (spawn /
  sync / finish, shared memory, locks) with serial, randomized and
  work-stealing executors;
* :mod:`repro.checker` -- the basic (Fig. 3) and optimized (Figs. 6-9)
  atomicity checkers plus the Velodrome baseline;
* :mod:`repro.trace` -- trace recording, a parameterized random trace /
  program generator, replay, and an exhaustive interleaving explorer used
  as ground truth;
* :mod:`repro.suite` -- the 36-program violation test suite;
* :mod:`repro.workloads` -- task-parallel kernels of the paper's 13
  benchmarks;
* :mod:`repro.bench` -- harnesses regenerating Table 1 and Figures 13/14;
* :mod:`repro.obs` -- the observability layer: counters, gauges,
  histograms and phase spans behind one :class:`~repro.obs.Recorder`;
* :mod:`repro.static` -- static analysis: access-set over-approximation,
  trace-coverage validation, and the ``repro lint`` pass (static MHP +
  locksets + Figure 4 candidate triples, feeding the sharded checker's
  ``--static-prefilter``).
"""

from repro.report import (
    READ,
    WRITE,
    AccessInfo,
    AtomicityViolation,
    TraceCycleViolation,
    ViolationReport,
)
from repro.errors import (
    CheckerError,
    DPSTError,
    ReproError,
    RuntimeUsageError,
    TraceError,
    WorkloadError,
)
from repro.dpst import (
    ArrayDPST,
    LCAEngine,
    LinkedDPST,
    NodeKind,
    make_dpst,
)
from repro.checker import (
    AtomicAnnotations,
    BasicAtomicityChecker,
    ExploringVelodrome,
    OptAtomicityChecker,
    RaceDetector,
    VelodromeChecker,
    make_checker,
)
from repro.runtime import (
    RandomOrderExecutor,
    RunResult,
    SerialExecutor,
    StatsObserver,
    TaskContext,
    TaskProgram,
    TraceRecorder,
    WorkStealingExecutor,
    parallel_for,
    parallel_invoke,
    parallel_pipeline,
    parallel_reduce,
    run_program,
)
from repro.runtime.program import check_program
from repro.checker.sharded import check_sharded
from repro.session import CheckSession, check_trace
from repro.dpst import EngineStats
from repro.obs import (
    METRIC_NAMES,
    NULL_RECORDER,
    MetricsRecorder,
    MetricsSnapshot,
    Recorder,
)
from repro.static import (
    LintReport,
    MHPIndex,
    StaticAccessSet,
    StaticCandidate,
    StaticSkeleton,
    analyze_function,
    analyze_spec,
    check_trace_coverage,
    lint_function,
    lint_program,
    lint_spec,
    skeleton_from_function,
    skeleton_from_spec,
)

__version__ = "1.2.0"

__all__ = [
    "READ",
    "WRITE",
    "AccessInfo",
    "AtomicityViolation",
    "TraceCycleViolation",
    "ViolationReport",
    "CheckerError",
    "DPSTError",
    "ReproError",
    "RuntimeUsageError",
    "TraceError",
    "WorkloadError",
    "ArrayDPST",
    "LCAEngine",
    "LinkedDPST",
    "NodeKind",
    "make_dpst",
    "AtomicAnnotations",
    "BasicAtomicityChecker",
    "ExploringVelodrome",
    "OptAtomicityChecker",
    "RaceDetector",
    "VelodromeChecker",
    "make_checker",
    "RandomOrderExecutor",
    "RunResult",
    "SerialExecutor",
    "StatsObserver",
    "TaskContext",
    "TaskProgram",
    "TraceRecorder",
    "WorkStealingExecutor",
    "parallel_for",
    "parallel_invoke",
    "parallel_pipeline",
    "parallel_reduce",
    "run_program",
    "check_program",
    "check_sharded",
    "CheckSession",
    "check_trace",
    "EngineStats",
    "METRIC_NAMES",
    "MetricsRecorder",
    "MetricsSnapshot",
    "NULL_RECORDER",
    "Recorder",
    "LintReport",
    "MHPIndex",
    "StaticAccessSet",
    "StaticCandidate",
    "StaticSkeleton",
    "analyze_function",
    "analyze_spec",
    "check_trace_coverage",
    "lint_function",
    "lint_program",
    "lint_spec",
    "skeleton_from_function",
    "skeleton_from_spec",
    "__version__",
]
