"""Interprocedural call graph over task bodies and their helpers.

The skeleton builder (:mod:`repro.static.structure`) walks one function
at a time; this module supplies the *interprocedural* substrate it and
the lint pass share:

* :class:`FunctionInfo` -- a resolvable callable: its AST, the name
  environment it closes over (module globals overlaid with closure
  cells), a stable marker, and any ``# repro: ignore[...]`` suppression
  comments found in its source;
* :func:`resolve_attribute` -- name/attribute-chain resolution through
  that environment (``helpers.leaf`` works, not just ``leaf``);
* :func:`build_callgraph` -- the call graph reachable from one root
  function.  Every node carries its **direct facts** (accesses, lock
  usage, spawn/sync/finish effects, ctx-escape approximations,
  unresolved call sites) collected by a lightweight AST scan; edges are
  spawn / inline / template call sites;
* :meth:`CallGraph.sccs` -- Tarjan condensation, components emitted
  callees-first, which is the evaluation order the bottom-up summary
  fixpoint (:mod:`repro.static.summaries`) needs;
* :meth:`CallGraph.stats` -- the ``static.callgraph.*`` counters
  (functions / SCCs / unresolved call sites) surfaced by
  :meth:`repro.static.lint.LintReport.to_dict` and ``repro lint --json``.

The facts collected here are deliberately coarser than the skeleton
walk: no ordering, no frames, no lock versions -- just the sets and
flags a sound recursion summary needs.  Precision still comes from the
walker; the graph tells it *when* a summary is good enough.
"""

from __future__ import annotations

import ast
import inspect
import os
import re
import textwrap
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.report import READ, WRITE
from repro.static.accesses import (
    AccessPattern,
    _call_argument,
    _location_pattern,
)

#: ctx methods by effect (mirrors :mod:`repro.static.structure`).
READ_METHODS = frozenset({"read"})
WRITE_METHODS = frozenset({"write"})
RMW_METHODS = frozenset({"add", "update"})
QUERY_METHODS = frozenset({"locked", "task_id", "depth"})

#: The parallel algorithm templates and where their task bodies live:
#: (positional index, keyword name) pairs, or ``"*"`` for "every
#: positional after ctx" / ``"list:N"`` for a literal list argument.
TEMPLATES: Dict[str, Tuple[Any, Optional[str]]] = {
    "parallel_for": (3, "body"),
    "parallel_reduce": (3, "map_body"),
    "parallel_invoke": ("*", None),
    "parallel_pipeline": ("list:2", "stages"),
}

#: ``# repro: ignore`` (all codes) or ``# repro: ignore[SAV001, SAV104]``.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?"
)


def scan_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """``# repro: ignore[...]`` comments by 1-based source line.

    An empty frozenset means "every code on this line"; a non-empty one
    suppresses only the listed codes.
    """
    found: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None:
            found[lineno] = frozenset()
        else:
            found[lineno] = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return found


class FunctionInfo:
    """A resolvable task body / helper: AST plus its name environment."""

    __slots__ = (
        "node",
        "env",
        "marker",
        "filename",
        "line_offset",
        "suppressions",
    )

    def __init__(
        self,
        node: ast.AST,
        env: Dict[str, Any],
        marker: str,
        filename: str,
        line_offset: int,
        suppressions: Optional[Dict[int, FrozenSet[str]]] = None,
    ) -> None:
        self.node = node
        self.env = env
        self.marker = marker
        self.filename = filename
        self.line_offset = line_offset
        #: ``# repro: ignore`` comments by source line (segment-relative;
        #: add :attr:`line_offset` for the absolute line).
        self.suppressions: Dict[int, FrozenSet[str]] = suppressions or {}

    def first_param(self) -> Optional[str]:
        args = getattr(self.node, "args", None)
        if args is None or not args.args:
            return None
        return args.args[0].arg

    def body_statements(self) -> List[ast.stmt]:
        if isinstance(self.node, ast.Lambda):
            return [ast.Expr(value=self.node.body)]
        return list(self.node.body)

    def local_marker(self, name: str) -> str:
        """Marker of a nested ``def`` -- one convention everywhere."""
        return f"{self.marker}.<locals>.{name}"

    def lambda_marker(self, node: ast.Lambda) -> str:
        return f"{self.marker}.<lambda>@{getattr(node, 'lineno', 0)}"

    def child(self, node: ast.AST, marker: str) -> "FunctionInfo":
        """A nested def / lambda sharing this info's source coordinates."""
        return FunctionInfo(
            node, self.env, marker, self.filename, self.line_offset
        )


def callable_env(func: Callable[..., Any]) -> Dict[str, Any]:
    """Module globals overlaid with the function's closure cells."""
    env: Dict[str, Any] = dict(getattr(func, "__globals__", {}) or {})
    code = getattr(func, "__code__", None)
    closure = getattr(func, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                env[name] = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                pass
    return env


def info_for_callable(func: Callable[..., Any]) -> Optional[FunctionInfo]:
    """Parse *func*'s source into a :class:`FunctionInfo`, or ``None``."""
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - unparseable source
        return None
    if not tree.body:
        return None
    node = tree.body[0]
    marker = f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"
    try:
        filename = os.path.basename(inspect.getsourcefile(func) or "?")
    except TypeError:  # pragma: no cover
        filename = "?"
    code = getattr(func, "__code__", None)
    offset = 0
    if code is not None:
        offset = code.co_firstlineno - getattr(node, "lineno", 1)
    return FunctionInfo(
        node,
        callable_env(func),
        marker,
        filename,
        offset,
        suppressions=scan_suppressions(source),
    )


def resolve_attribute(node: ast.expr, env: Dict[str, Any]) -> Optional[Any]:
    """Resolve a ``Name`` / dotted ``Attribute`` chain through *env*.

    ``helpers.inner.leaf`` resolves the base name through the
    environment and follows plain ``getattr`` steps -- enough for module
    attributes and namespace objects.  Anything dynamic returns ``None``.
    """
    chain: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    if current.id not in env:
        return None
    target: Any = env[current.id]
    for attr in reversed(chain):
        try:
            target = getattr(target, attr)
        except Exception:
            return None
    return target


# ---------------------------------------------------------------------------
# The graph
# ---------------------------------------------------------------------------

#: Call-site kinds.
SPAWN = "spawn"
INLINE = "inline"
TEMPLATE = "template"


@dataclass(frozen=True)
class CallSite:
    """One call edge: caller marker, kind, callee marker (or None)."""

    caller: str
    kind: str                  # SPAWN | INLINE | TEMPLATE
    callee: Optional[str]      # None when unresolvable
    site: str                  # file:line
    detail: str = ""

    @property
    def resolved(self) -> bool:
        return self.callee is not None


@dataclass
class DirectFacts:
    """What one function does *directly* (callees excluded)."""

    patterns: Set[AccessPattern]
    constructs: bool = False   # spawn / sync / finish / template
    locks: bool = False        # lock scopes or manual acquire/release
    escapes: bool = False      # ctx leaves the recognized discipline
    unresolved: int = 0        # call sites that could not be resolved


@dataclass(frozen=True)
class CallGraphStats:
    """The ``static.callgraph.*`` counter values for one analysis."""

    functions: int
    sccs: int
    unresolved_calls: int
    recursive_functions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "functions": self.functions,
            "sccs": self.sccs,
            "unresolved_calls": self.unresolved_calls,
            "recursive_functions": self.recursive_functions,
        }


class CallGraph:
    """Call graph reachable from one root function."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.infos: Dict[str, FunctionInfo] = {}
        self.facts: Dict[str, DirectFacts] = {}
        self.edges: Dict[str, List[CallSite]] = {}

    # -- queries -----------------------------------------------------------

    def unresolved_calls(self) -> int:
        return sum(facts.unresolved for facts in self.facts.values())

    def sccs(self) -> List[List[str]]:
        """Strongly connected components, callees-first (Tarjan order).

        Iterative so deep non-recursive chains cannot blow the Python
        stack; a component is emitted only after every component it can
        reach, which is exactly the bottom-up summary order.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = [0]

        def successors(marker: str) -> List[str]:
            return [
                site.callee
                for site in self.edges.get(marker, [])
                if site.callee is not None and site.callee in self.facts
            ]

        for start in self.facts:
            if start in index:
                continue
            # (node, iterator position) work stack.
            work: List[Tuple[str, int]] = [(start, 0)]
            while work:
                node, position = work.pop()
                if position == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = successors(node)
                while position < len(children):
                    child = children[position]
                    position += 1
                    if child not in index:
                        work.append((node, position))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def recursive_markers(self) -> Set[str]:
        """Markers on some call cycle (non-trivial SCC or a self edge)."""
        recursive: Set[str] = set()
        for component in self.sccs():
            if len(component) > 1:
                recursive.update(component)
            else:
                marker = component[0]
                if any(
                    site.callee == marker
                    for site in self.edges.get(marker, [])
                ):
                    recursive.add(marker)
        return recursive

    def stats(self) -> CallGraphStats:
        return CallGraphStats(
            functions=len(self.facts),
            sccs=len(self.sccs()),
            unresolved_calls=self.unresolved_calls(),
            recursive_functions=len(self.recursive_markers()),
        )


def build_callgraph(root: Any) -> CallGraph:
    """The call graph reachable from *root* (callable or FunctionInfo)."""
    if isinstance(root, FunctionInfo):
        info: Optional[FunctionInfo] = root
    else:
        info = info_for_callable(root)
    if info is None:
        marker = f"{getattr(root, '__module__', '?')}.{getattr(root, '__qualname__', repr(root))}"
        graph = CallGraph(marker)
        return graph
    graph = CallGraph(info.marker)
    queue: List[FunctionInfo] = [info]
    while queue:
        current = queue.pop()
        if current.marker in graph.infos:
            continue
        graph.infos[current.marker] = current
        collector = _FactCollector(current)
        collector.run()
        graph.facts[current.marker] = collector.facts
        graph.edges[current.marker] = collector.sites
        queue.extend(collector.callees)
    return graph


class _FactCollector:
    """One function's direct facts + call sites, by explicit AST walk.

    The traversal recognizes the same ctx discipline the skeleton walker
    does -- method calls on a ctx name, helpers taking ctx first, spawn
    bodies, algorithm templates -- and conservatively flags everything
    else (``escapes`` / ``unresolved``).  Child nodes consumed by a
    recognized form are not re-visited, so a ctx name inside
    ``ctx.read(...)`` does not count as an escape.
    """

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.facts = DirectFacts(patterns=set())
        self.sites: List[CallSite] = []
        #: FunctionInfos of resolved callees, for the BFS frontier.
        self.callees: List[FunctionInfo] = []
        self.ctx_names: Set[str] = set()
        self.local_defs: Dict[str, FunctionInfo] = {}

    def run(self) -> None:
        first = self.info.first_param()
        if first is not None:
            self.ctx_names.add(first)
        for statement in self.info.body_statements():
            self._stmt(statement)

    # -- traversal ---------------------------------------------------------

    def _site(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0) + self.info.line_offset
        return f"{self.info.filename}:{line}"

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_defs[stmt.name] = self.info.child(
                stmt, self.info.local_marker(stmt.name)
            )
            return
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            if (
                isinstance(value, ast.Name)
                and value.id in self.ctx_names
                and all(isinstance(t, ast.Name) for t in stmt.targets)
            ):
                for target in stmt.targets:
                    self.ctx_names.add(target.id)
                return
            self._expr(value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.ctx_names.discard(target.id)
                else:
                    self._expr(target)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.withitem):
                self._withitem(child)
            elif isinstance(child, ast.excepthandler):
                for sub in child.body:
                    self._stmt(sub)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                self._expr(child.value)

    def _withitem(self, item: ast.withitem) -> None:
        expr = item.context_expr
        method = self._ctx_method(expr)
        if method == "lock":
            self.facts.locks = True
            return
        if method == "finish":
            self.facts.constructs = True
            return
        self._expr(expr)

    def _expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Name):
            if node.id in self.ctx_names:
                self.facts.escapes = True
            return
        if isinstance(node, ast.Lambda):
            if self._references_ctx(node.body):
                self.facts.escapes = True
            return
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in self.ctx_names
            ):
                if node.attr not in QUERY_METHODS:
                    self.facts.escapes = True
                return
            self._expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for condition in child.ifs:
                    self._expr(condition)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                self._expr(child.value)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        method = self._ctx_method(func)
        if method is not None:
            self._ctx_call(method, node)
            return
        if (
            isinstance(func, ast.Name)
            and func.id in TEMPLATES
            and node.args
            and self._is_ctx(node.args[0])
        ):
            self._template_call(func.id, node)
            return
        ctx_positions = [
            index for index, arg in enumerate(node.args) if self._is_ctx(arg)
        ]
        for index, arg in enumerate(node.args):
            if index not in ctx_positions:
                self._expr(arg)
        for keyword in node.keywords:
            if self._is_ctx(keyword.value):
                self.facts.escapes = True
            else:
                self._expr(keyword.value)
        if not isinstance(func, ast.Name):
            self._expr_func_shell(func)
        if ctx_positions == [0]:
            self._edge(INLINE, func, node)
        elif ctx_positions:
            self.facts.escapes = True

    def _expr_func_shell(self, func: ast.expr) -> None:
        """Scan a non-Name callee expression without flagging the chain."""
        if isinstance(func, ast.Attribute):
            base = func
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                if base.id in self.ctx_names:
                    self.facts.escapes = True
                return
            self._expr(base)
            return
        self._expr(func)

    def _ctx_call(self, method: str, node: ast.Call) -> None:
        if method in READ_METHODS or method in WRITE_METHODS or method in RMW_METHODS:
            location_arg = _call_argument(node, 0, "location")
            for index, arg in enumerate(node.args):
                if arg is not location_arg:
                    self._expr(arg)
            for keyword in node.keywords:
                if keyword.value is not location_arg:
                    self._expr(keyword.value)
            if location_arg is None:
                self.facts.escapes = True
                return
            kind, value = _location_pattern(location_arg)
            if method not in WRITE_METHODS:
                self.facts.patterns.add(AccessPattern(kind, value, READ))
            if method not in READ_METHODS:
                self.facts.patterns.add(AccessPattern(kind, value, WRITE))
        elif method == "spawn":
            self.facts.constructs = True
            body_arg = _call_argument(node, 0, "body")
            for arg in node.args:
                if arg is not body_arg:
                    self._expr(arg)
            for keyword in node.keywords:
                if keyword.value is not body_arg:
                    self._expr(keyword.value)
            if body_arg is None:
                self._unresolved(SPAWN, node, "spawn without a body")
            else:
                self._edge(SPAWN, body_arg, node)
        elif method == "sync":
            self.facts.constructs = True
        elif method in ("acquire", "release"):
            self.facts.locks = True
        elif method in ("lock", "finish"):
            # Outside a with statement: untrackable context manager.
            self.facts.escapes = True
        elif method in QUERY_METHODS:
            pass
        else:
            self.facts.escapes = True

    def _template_call(self, name: str, node: ast.Call) -> None:
        self.facts.constructs = True
        spec, keyword_name = TEMPLATES[name]
        bodies: List[ast.expr] = []
        consumed: List[ast.expr] = []
        if spec == "*":
            bodies = list(node.args[1:])
            consumed = list(node.args[1:])
        elif isinstance(spec, str) and spec.startswith("list:"):
            index = int(spec.split(":", 1)[1])
            stages = _call_argument(node, index, keyword_name)
            if isinstance(stages, (ast.List, ast.Tuple)):
                bodies = list(stages.elts)
            elif stages is not None:
                self._unresolved(TEMPLATE, node, f"{name} stages not a literal list")
            if stages is not None:
                consumed = [stages]
        else:
            body = _call_argument(node, spec, keyword_name)
            if body is not None:
                bodies = [body]
                consumed = [body]
            else:
                self._unresolved(TEMPLATE, node, f"{name} without a body")
        for index, arg in enumerate(node.args):
            if index == 0 or arg in consumed:
                continue
            self._expr(arg)
        for keyword in node.keywords:
            if keyword.value not in consumed:
                self._expr(keyword.value)
        for body in bodies:
            self._edge(TEMPLATE, body, node)

    # -- resolution --------------------------------------------------------

    def _edge(self, kind: str, target: ast.expr, node: ast.Call) -> None:
        """Record one call site, resolving *target* to a FunctionInfo."""
        site = self._site(node)
        callee = self._resolve(target)
        if callee is None:
            self._unresolved(kind, node, ast.dump(target)[:60])
            return
        self.sites.append(CallSite(self.info.marker, kind, callee.marker, site))
        self.callees.append(callee)

    def _unresolved(self, kind: str, node: ast.Call, detail: str) -> None:
        self.facts.unresolved += 1
        self.sites.append(
            CallSite(self.info.marker, kind, None, self._site(node), detail)
        )

    def _resolve(self, target: ast.expr) -> Optional[FunctionInfo]:
        if isinstance(target, ast.Lambda):
            return self.info.child(target, self.info.lambda_marker(target))
        if isinstance(target, ast.Name) and target.id in self.local_defs:
            return self.local_defs[target.id]
        if isinstance(target, (ast.Name, ast.Attribute)):
            resolved = resolve_attribute(target, self.info.env)
            if callable(resolved):
                return info_for_callable(resolved)
        return None

    # -- predicates --------------------------------------------------------

    def _ctx_method(self, node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.ctx_names
        ):
            return node.func.attr
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.ctx_names
        ):
            return node.attr
        return None

    def _is_ctx(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in self.ctx_names

    def _references_ctx(self, node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id in self.ctx_names
            for sub in ast.walk(node)
        )
