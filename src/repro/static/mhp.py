"""Static may-happen-in-parallel over skeleton regions.

The SPD3 rule (:mod:`repro.dpst.relation`) applied to the *static* tree:
two distinct steps ``S1`` (left) and ``S2`` may run in parallel iff the
child of their LCA on the path toward ``S1`` is an async region.  Because
the static skeleton over-approximates the dynamic DPST -- whatever the
input, every dynamic step maps into some static step, and the mapping
preserves the finish/async nesting -- "statically serial" implies
"serial in every execution", which is exactly the guarantee the sharded
checker's prefilter needs.

Two static-only extensions:

* **Replicated owners.**  A recursive task body is walked once, but every
  execution instantiates it many times; two steps owned by a marker in
  :attr:`StaticSkeleton.recursive_markers` (or one such step and itself)
  may always run in parallel across instances.
* **Self-parallelism.**  ``parallel(s, s)`` is meaningful here (unlike in
  the dynamic tree, where each step is one concrete instruction run):
  it holds when the step belongs to a replicated body or sits under a
  replicated async region.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.static.structure import ASYNC, StaticNode, StaticSkeleton


class MHPIndex:
    """May-happen-in-parallel queries over one static skeleton."""

    def __init__(self, skeleton: StaticSkeleton) -> None:
        self.skeleton = skeleton
        self._cache: Dict[Tuple[int, int], bool] = {}

    # -- queries -----------------------------------------------------------

    def parallel(self, first: StaticNode, second: StaticNode) -> bool:
        """May steps *first* and *second* execute in parallel?"""
        if first is second:
            return self.self_parallel(first)
        key = (min(first.index, second.index), max(first.index, second.index))
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute(first, second)
            self._cache[key] = cached
        return cached

    def self_parallel(self, step: StaticNode) -> bool:
        """May two dynamic instances of *step* execute in parallel?"""
        if self._replicated_owner(step):
            return True
        node: Optional[StaticNode] = step
        while node is not None:
            if node.kind == ASYNC and node.replicated:
                return True
            node = node.parent
        return False

    def serial(self, first: StaticNode, second: StaticNode) -> bool:
        return not self.parallel(first, second)

    def parallel_steps(self, step: StaticNode) -> List[StaticNode]:
        """Every step (possibly *step* itself) parallel with *step*."""
        return [
            other for other in self.skeleton.steps() if self.parallel(step, other)
        ]

    # -- internals ---------------------------------------------------------

    def _replicated_owner(self, step: StaticNode) -> bool:
        return (
            step.owner is not None
            and step.owner in self.skeleton.recursive_markers
        )

    def _compute(self, first: StaticNode, second: StaticNode) -> bool:
        # Cross-instance parallelism of a replicated body: two regions of
        # the same recursive task body may belong to different instances.
        if (
            first.owner is not None
            and first.owner == second.owner
            and first.owner in self.skeleton.recursive_markers
        ):
            return True
        ancestor, toward_first, toward_second = self._lca(first, second)
        if toward_first is ancestor or toward_second is ancestor:
            return False  # ancestor/descendant: strictly ordered
        left = (
            toward_first
            if toward_first.rank < toward_second.rank
            else toward_second
        )
        if left.kind == ASYNC:
            return True
        # A replicated async between the LCA and either step means that
        # step's whole instance family recurs; its copies are unordered
        # with respect to the other step's subtree.
        return self._replicated_between(first, ancestor) or self._replicated_between(
            second, ancestor
        )

    @staticmethod
    def _replicated_between(node: StaticNode, ancestor: StaticNode) -> bool:
        current: Optional[StaticNode] = node
        while current is not None and current is not ancestor:
            if current.kind == ASYNC and current.replicated:
                return True
            current = current.parent
        return False

    @staticmethod
    def _lca(
        first: StaticNode, second: StaticNode
    ) -> Tuple[StaticNode, StaticNode, StaticNode]:
        """``(lca, child_toward_first, child_toward_second)``; when one
        node is an ancestor of the other, its slot holds the LCA itself
        (mirroring :func:`repro.dpst.relation.lca_with_children`)."""
        a: Optional[StaticNode] = first
        b: Optional[StaticNode] = second
        child_a: Optional[StaticNode] = None
        child_b: Optional[StaticNode] = None
        while a is not None and b is not None and a.depth > b.depth:
            child_a, a = a, a.parent
        while a is not None and b is not None and b.depth > a.depth:
            child_b, b = b, b.parent
        while a is not b and a is not None and b is not None:
            child_a, a = a, a.parent
            child_b, b = b, b.parent
        assert a is not None and b is not None, "forest skeleton"
        return a, (a if child_a is None else child_a), (a if child_b is None else child_b)
