"""Bottom-up per-function summaries over the static call graph.

A :class:`FunctionSummary` folds a function's *transitive* effects --
every access pattern it or any callee may perform, whether anything in
its call tree spawns/syncs, touches locks, lets the task context escape,
or calls something the resolver could not see.  Summaries are computed
callees-first over the Tarjan condensation from
:meth:`repro.static.callgraph.CallGraph.sccs`, with a fixpoint iteration
inside each SCC so mutual recursion converges (the domain is finite:
pattern sets only grow, booleans only flip one way).

The skeleton walker (:mod:`repro.static.structure`) consults these when
inlining would not terminate: a recursive helper whose summary is
*step-local* (no constructs, no locks, no escapes, no unresolved calls)
contributes exactly the accesses already walked, so deeper unrolling is
redundant and the skeleton stays exact; anything else degrades to the
summary's access patterns plus a localized poison note.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.static.accesses import AccessPattern
from repro.static.callgraph import SPAWN, TEMPLATE, CallGraph


@dataclass(frozen=True)
class FunctionSummary:
    """Transitive effects of one function and everything it may call."""

    marker: str
    patterns: FrozenSet[AccessPattern]
    constructs: bool = False   # may spawn / sync / finish / run a template
    locks: bool = False        # may acquire or release locks
    escapes: bool = False      # ctx may escape the recognized discipline
    unresolved: int = 0        # unresolved call sites in the call tree
    recursive: bool = False    # participates in a call cycle

    @property
    def step_local(self) -> bool:
        """Pure straight-line ctx accesses: safe to stop unrolling at.

        A step-local call tree adds no DPST nodes and no lock-scope
        changes, so once the walker has materialized one full unrolling
        the deeper iterations repeat the same (step, lockset, access)
        triples and the skeleton is still exact.
        """
        return not (
            self.constructs or self.locks or self.escapes or self.unresolved
        )

    @property
    def resolved(self) -> bool:
        """Every access in the call tree is accounted for by a pattern."""
        return not (self.escapes or self.unresolved)


def compute_summaries(graph: CallGraph) -> Dict[str, FunctionSummary]:
    """Fold :class:`~repro.static.callgraph.DirectFacts` bottom-up.

    SCCs arrive callees-first, so every edge leaving a component lands
    on a finished summary; edges inside the component iterate to a
    fixpoint.  Spawn and template edges force ``constructs`` even when
    the callee itself is step-local -- the *call* creates DPST structure.
    """
    summaries: Dict[str, FunctionSummary] = {}
    for component in graph.sccs():
        members = set(component)
        cyclic = len(component) > 1 or any(
            site.callee == component[0]
            for site in graph.edges.get(component[0], [])
        )
        # Mutable working state per member.
        state = {
            marker: {
                "patterns": set(graph.facts[marker].patterns),
                "constructs": graph.facts[marker].constructs,
                "locks": graph.facts[marker].locks,
                "escapes": graph.facts[marker].escapes,
                "unresolved": graph.facts[marker].unresolved,
            }
            for marker in component
        }
        # Fold completed callee summaries in once; they cannot change.
        for marker in component:
            current = state[marker]
            for site in graph.edges.get(marker, []):
                if site.callee is None or site.callee in members:
                    continue
                callee = summaries.get(site.callee)
                if callee is None:  # pragma: no cover - defensive
                    current["unresolved"] += 1
                    continue
                current["patterns"] |= set(callee.patterns)
                current["locks"] |= callee.locks
                current["escapes"] |= callee.escapes
                current["unresolved"] += callee.unresolved
                if site.kind in (SPAWN, TEMPLATE):
                    current["constructs"] = True
                else:
                    current["constructs"] |= callee.constructs
        # Fixpoint over intra-component edges.
        changed = True
        while changed:
            changed = False
            for marker in component:
                current = state[marker]
                for site in graph.edges.get(marker, []):
                    if site.callee not in members:
                        continue
                    callee = state[site.callee]
                    before = (
                        len(current["patterns"]),
                        current["constructs"],
                        current["locks"],
                        current["escapes"],
                    )
                    current["patterns"] |= callee["patterns"]
                    current["locks"] |= callee["locks"]
                    current["escapes"] |= callee["escapes"]
                    if site.kind in (SPAWN, TEMPLATE):
                        current["constructs"] = True
                    else:
                        current["constructs"] |= callee["constructs"]
                    after = (
                        len(current["patterns"]),
                        current["constructs"],
                        current["locks"],
                        current["escapes"],
                    )
                    if after != before:
                        changed = True
        # Unresolved counts from intra-component callees: single pass is
        # enough for the boolean question "is anything unresolved".
        if cyclic:
            total_unresolved = sum(
                state[marker]["unresolved"] for marker in component
            )
            for marker in component:
                if total_unresolved and not state[marker]["unresolved"]:
                    state[marker]["unresolved"] = total_unresolved
        for marker in component:
            current = state[marker]
            summaries[marker] = FunctionSummary(
                marker=marker,
                patterns=frozenset(current["patterns"]),
                constructs=current["constructs"],
                locks=current["locks"],
                escapes=current["escapes"],
                unresolved=current["unresolved"],
                recursive=cyclic,
            )
    return summaries
