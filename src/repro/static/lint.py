"""The static atomicity lint pass (``repro lint``).

Combines the static skeleton (:mod:`repro.static.structure`), static MHP
(:mod:`repro.static.mhp`) and versioned static locksets
(:mod:`repro.static.locksets`) into the paper's Figure 4 check, applied
before any execution:

* a **candidate unserializable triple** is a same-step ordered access
  pair on one location whose versioned locksets are disjoint (the two
  accesses lie in different critical sections, Section 3.3), plus a
  statically-parallel access to the same location whose interposition
  forms one of the five unserializable RW patterns (Figure 4).  Exact
  triples (all three locations compile-time constants) are ``SAV001``
  errors; triples reached through prefix/unknown location patterns are
  ``SAV002`` warnings.
* **structural rules** surface everything the skeleton builder had to
  approximate or found suspicious (unresolved task bodies, ctx-discipline
  escapes, unbalanced lock scopes, conditional syncs, ...), each under a
  stable ``SAV1xx`` code.

The pass also proves locations *schedule-serial*: an exact location whose
accessing steps are pairwise non-parallel (and not self-parallel) can
never participate in any violation, on any input, under any schedule --
the fact the sharded checker's ``--static-prefilter`` consumes.  The
proof is **per location**: an imprecision poisons only the locations it
may touch.  An imprecise access pattern poisons every location it
may-alias; a localized skeleton note (one carrying ``patterns``) poisons
the locations those patterns may match; only imprecisions with an
unknown blast radius -- unresolved task bodies, ctx escapes, exceeded
budgets, over-trusted control flow -- poison the whole program.  The
proof never consults locksets, so lock-related notes (imbalances,
dynamic lock names) do not poison anything: soundness rests solely on
the skeleton over-approximating accesses and parallelism.

Suppression comments (``# repro: ignore[SAV001]`` on the flagged line)
move diagnostics into :attr:`LintReport.suppressed` without deleting
them, so SARIF output can mark them suppressed-in-source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.checker.patterns import is_unserializable_triple, triple_code
from repro.static.accesses import EXACT
from repro.static.diagnostics import (
    ANALYSIS_LIMIT,
    CANDIDATE_EXACT,
    CANDIDATE_POSSIBLE,
    CONDITIONAL_SYNC,
    CTX_ESCAPE,
    DYNAMIC_LOCK_NAME,
    ERROR,
    INFO,
    LOCK_IMBALANCE,
    NONCONSTANT_LOCATION,
    UNJOINED_SPAWN,
    UNRESOLVED_TASK,
    WARNING,
    Diagnostic,
    make_diagnostic,
    sort_diagnostics,
)
from repro.static.locksets import locks_disjoint
from repro.static.mhp import MHPIndex
from repro.static.structure import (
    SkeletonNote,
    StaticAccess,
    StaticSkeleton,
    skeleton_from_function,
    skeleton_from_spec,
)

Location = Hashable

#: Skeleton note kind -> diagnostic code.
_NOTE_CODES: Dict[str, str] = {
    "unresolved-task": UNRESOLVED_TASK,
    "nonconstant-location": NONCONSTANT_LOCATION,
    "ctx-escape": CTX_ESCAPE,
    "lock-imbalance": LOCK_IMBALANCE,
    "dynamic-lock-name": DYNAMIC_LOCK_NAME,
    "unjoined-spawn": UNJOINED_SPAWN,
    "conditional-sync": CONDITIONAL_SYNC,
    "unsupported": ANALYSIS_LIMIT,
    "budget-exceeded": ANALYSIS_LIMIT,
    "control-flow-skip": ANALYSIS_LIMIT,
    "recursive-inline": ANALYSIS_LIMIT,
}

#: Note kinds whose blast radius is unknown: they may hide accesses or
#: parallelism anywhere, so they poison every location's serial proof.
#: (``recursive-inline`` joins them only when its note carries no
#: localizing patterns; lock-related notes never poison -- the serial
#: proof does not consult locksets.)
GLOBAL_POISON_NOTE_KINDS = frozenset(
    {
        "unresolved-task",
        "ctx-escape",
        "unsupported",
        "budget-exceeded",
        "control-flow-skip",
    }
)


@dataclass(frozen=True)
class StaticCandidate:
    """One candidate unserializable triple found statically.

    ``first`` and ``second`` are the same-step pair (program order);
    ``interleaver`` is the statically-parallel access that can land
    between them.  Each leg is ``(access_type, site)``.
    """

    location: Location
    pattern: str                       # e.g. "WRW" (first-interleaver-second)
    first: Tuple[str, str]
    interleaver: Tuple[str, str]
    second: Tuple[str, str]
    exact: bool

    @property
    def code(self) -> str:
        return CANDIDATE_EXACT if self.exact else CANDIDATE_POSSIBLE

    def describe(self) -> str:
        qualifier = "" if self.exact else " (imprecise location pattern)"
        return (
            f"{self.pattern} on {self.location!r}{qualifier}: "
            f"{self.first[0]} @ {self.first[1]} .. {self.second[0]} @ "
            f"{self.second[1]} in one step can be split by parallel "
            f"{self.interleaver[0]} @ {self.interleaver[1]}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "location": repr(self.location),
            "pattern": self.pattern,
            "exact": self.exact,
            "first": {"access_type": self.first[0], "site": self.first[1]},
            "interleaver": {
                "access_type": self.interleaver[0],
                "site": self.interleaver[1],
            },
            "second": {"access_type": self.second[0], "site": self.second[1]},
        }

    def to_diagnostic(self) -> Diagnostic:
        return make_diagnostic(
            self.code,
            self.describe(),
            site=self.first[1],
            location=self.location,
            pattern=self.pattern,
        )


class LintReport:
    """Everything ``repro lint`` found about one program."""

    def __init__(
        self,
        target: str,
        skeleton: StaticSkeleton,
        mhp: MHPIndex,
        candidates: List[StaticCandidate],
        diagnostics: List[Diagnostic],
        serial_locations: FrozenSet[Location],
        poisoned_locations: Optional[Dict[Location, Tuple[str, ...]]] = None,
        suppressed: Optional[List[Diagnostic]] = None,
    ) -> None:
        self.target = target
        self.skeleton = skeleton
        self.mhp = mhp
        #: Candidate triples, exact first.
        self.candidates = candidates
        #: Active diagnostics (candidates included), severity-major order.
        self.diagnostics = diagnostics
        #: Exact locations individually proven schedule-serial.
        self.serial_locations = serial_locations
        #: Exact locations whose steps are serial but whose proof an
        #: imprecision voided, mapped to the human-readable reasons.
        self.poisoned_locations: Dict[Location, Tuple[str, ...]] = (
            poisoned_locations or {}
        )
        #: Diagnostics silenced by ``# repro: ignore`` comments.
        self.suppressed: List[Diagnostic] = suppressed or []

    # -- verdicts ----------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    @property
    def prefilter_safe(self) -> bool:
        """Is the whole skeleton exact (no approximations anywhere)?

        Historical all-or-nothing gate, kept for introspection: the
        prefilter itself now trusts :attr:`serial_locations` per
        location, so a partially-imprecise program still filters its
        individually-proven locations.
        """
        return self.skeleton.is_exact

    def prefilter_locations(self) -> FrozenSet[Location]:
        """Locations the dynamic checker may skip.

        Each one is individually proven: its accessing steps are
        pairwise schedule-serial and no imprecision -- imprecise access
        pattern, approximated helper, unresolved body -- may touch it.
        """
        return self.serial_locations

    def callgraph_stats(self) -> Optional[Dict[str, int]]:
        """``static.callgraph.*`` counters, when the AST front end ran."""
        stats = self.skeleton.callgraph_stats
        return stats.to_dict() if stats is not None else None

    def severity_counts(self) -> Dict[str, int]:
        counts = {ERROR: 0, WARNING: 0, INFO: 0}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
        return counts

    # -- rendering ---------------------------------------------------------

    def describe(self) -> str:
        counts = self.severity_counts()
        lines = [
            f"repro lint: {self.target}",
            f"  {counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info note(s); "
            f"{len(self.skeleton.accesses)} static access(es) in "
            f"{len(self.skeleton.steps())} step region(s)",
        ]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic.describe()}")
        for diagnostic in self.suppressed:
            lines.append(f"  [suppressed] {diagnostic.describe()}")
        if self.serial_locations:
            rendered = ", ".join(
                sorted(repr(loc) for loc in self.serial_locations)
            )
            lines.append(
                f"  schedule-serial location(s) [prefilterable]: {rendered}"
            )
        if self.poisoned_locations:
            for location in sorted(
                self.poisoned_locations, key=repr
            ):
                reasons = "; ".join(self.poisoned_locations[location])
                lines.append(
                    f"  poisoned location {location!r}: {reasons}"
                )
        stats = self.callgraph_stats()
        if stats is not None:
            lines.append(
                f"  call graph: {stats['functions']} function(s) in "
                f"{stats['sccs']} SCC(s), "
                f"{stats['unresolved_calls']} unresolved call(s)"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        counts = self.severity_counts()
        result = {
            "target": self.target,
            "counts": {
                "errors": counts[ERROR],
                "warnings": counts[WARNING],
                "infos": counts[INFO],
                "accesses": len(self.skeleton.accesses),
                "steps": len(self.skeleton.steps()),
                "candidates": len(self.candidates),
                "suppressed": len(self.suppressed),
            },
            "exact_skeleton": self.skeleton.is_exact,
            "prefilter_safe": self.prefilter_safe,
            "serial_locations": sorted(
                repr(loc) for loc in self.serial_locations
            ),
            "prefilter": {
                "proven": sorted(repr(loc) for loc in self.serial_locations),
                "poisoned": {
                    repr(location): list(reasons)
                    for location, reasons in sorted(
                        self.poisoned_locations.items(), key=lambda kv: repr(kv[0])
                    )
                },
            },
            "candidates": [c.to_dict() for c in self.candidates],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }
        stats = self.callgraph_stats()
        if stats is not None:
            result["callgraph"] = stats
        return result


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


def _find_candidates(
    skeleton: StaticSkeleton, mhp: MHPIndex
) -> List[StaticCandidate]:
    """Figure 4 applied statically: all same-step pairs x parallel accesses."""
    by_step = skeleton.accesses_by_step()
    seen: set = set()
    candidates: List[StaticCandidate] = []
    for step, accesses in by_step.items():
        # Same-step ordered pairs in different critical sections -- the
        # anchor rule the dynamic checkers apply (the interleaver's own
        # lockset is never consulted).
        pairs = [
            (first, second)
            for i, first in enumerate(accesses)
            for second in accesses[i + 1 :]
            if first.may_alias(second)
            and locks_disjoint(first.lockset, second.lockset)
        ]
        if not pairs:
            continue
        for other_step, other_accesses in by_step.items():
            if not mhp.parallel(step, other_step):
                continue
            # When other_step IS step (a self-parallel region), the
            # interleaver stands for the other dynamic instance's copy of
            # the access, so the pair's own accesses qualify too.
            for interleaver in other_accesses:
                for first, second in pairs:
                    if not (
                        interleaver.may_alias(first)
                        and interleaver.may_alias(second)
                    ):
                        continue
                    if not is_unserializable_triple(
                        first.access_type,
                        interleaver.access_type,
                        second.access_type,
                    ):
                        continue
                    exact = (
                        first.kind == EXACT
                        and second.kind == EXACT
                        and interleaver.kind == EXACT
                    )
                    location = first.location if exact else first.pattern.describe()
                    key = (
                        location,
                        first.site,
                        first.access_type,
                        interleaver.site,
                        interleaver.access_type,
                        second.site,
                        second.access_type,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(
                        StaticCandidate(
                            location=location,
                            pattern=triple_code(
                                first.access_type,
                                interleaver.access_type,
                                second.access_type,
                            ),
                            first=(first.access_type, first.site),
                            interleaver=(
                                interleaver.access_type,
                                interleaver.site,
                            ),
                            second=(second.access_type, second.site),
                            exact=exact,
                        )
                    )
    candidates.sort(key=lambda c: (not c.exact, repr(c.location), c.pattern))
    return candidates


def _global_poison_reasons(skeleton: StaticSkeleton) -> List[str]:
    """Reasons that void *every* location's serial proof."""
    reasons: List[str] = []
    for note in skeleton.notes:
        if note.kind in GLOBAL_POISON_NOTE_KINDS or (
            note.kind == "recursive-inline" and not note.patterns
        ):
            reason = f"{note.kind} @ {note.site}"
            if reason not in reasons:
                reasons.append(reason)
    return reasons


def _prefilter_analysis(
    skeleton: StaticSkeleton, mhp: MHPIndex
) -> Tuple[FrozenSet[Location], Dict[Location, Tuple[str, ...]]]:
    """Per-location serial proofs and what poisons the failed ones.

    Returns ``(serial, poisoned)``: *serial* holds exact locations whose
    accessing steps are pairwise non-parallel AND that no imprecision
    may touch; *poisoned* maps locations whose steps are serial but
    whose proof an imprecision voided to the reasons.  Locations with
    genuinely parallel accesses appear in neither -- they are the
    checker's job, not a precision loss.
    """
    exact_groups: Dict[Location, List[StaticAccess]] = {}
    imprecise: List[StaticAccess] = []
    for access in skeleton.accesses:
        if access.kind == EXACT:
            exact_groups.setdefault(access.location, []).append(access)
        else:
            imprecise.append(access)
    global_reasons = _global_poison_reasons(skeleton)
    localized_notes = [
        note
        for note in skeleton.notes
        if note.patterns
        and note.kind not in GLOBAL_POISON_NOTE_KINDS
    ]
    serial: set = set()
    poisoned: Dict[Location, Tuple[str, ...]] = {}
    for location, group in exact_groups.items():
        steps = list({access.step for access in group})
        if any(mhp.self_parallel(step) for step in steps):
            continue
        if any(
            mhp.parallel(steps[i], steps[j])
            for i in range(len(steps))
            for j in range(i + 1, len(steps))
        ):
            continue
        representative = group[0]
        reasons = list(global_reasons)
        for other in imprecise:
            if other.may_alias(representative):
                reasons.append(
                    f"imprecise access {other.pattern.describe()} @ {other.site}"
                )
        for note in localized_notes:
            if any(pattern.matches(location) for pattern in note.patterns):
                reasons.append(f"{note.kind} @ {note.site}")
        if reasons:
            poisoned[location] = tuple(dict.fromkeys(reasons))
        else:
            serial.add(location)
    return frozenset(serial), poisoned


def _serial_locations(
    skeleton: StaticSkeleton, mhp: MHPIndex
) -> FrozenSet[Location]:
    """Exact locations with an unpoisoned pairwise-serial proof."""
    serial, _ = _prefilter_analysis(skeleton, mhp)
    return serial


def _note_diagnostics(notes: Sequence[SkeletonNote]) -> List[Diagnostic]:
    seen: set = set()
    out: List[Diagnostic] = []
    for note in notes:
        key = (note.kind, note.site, note.detail)
        if key in seen:
            continue  # loop unrolling walks the same site twice
        seen.add(key)
        code = _NOTE_CODES.get(note.kind)
        if code is None:
            continue
        message = note.detail or note.kind
        out.append(make_diagnostic(code, message, site=note.site))
    return out


def _split_suppressed(
    diagnostics: List[Diagnostic],
    suppressions: Dict[str, FrozenSet[str]],
) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Partition diagnostics into (active, suppressed-in-source)."""
    if not suppressions:
        return diagnostics, []
    active: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    for diagnostic in diagnostics:
        codes = suppressions.get(diagnostic.site)
        if codes is not None and (not codes or diagnostic.code in codes):
            suppressed.append(diagnostic)
        else:
            active.append(diagnostic)
    return active, suppressed


def lint_skeleton(skeleton: StaticSkeleton, target: str = "") -> LintReport:
    """Run the full lint pass over an already-built skeleton."""
    mhp = MHPIndex(skeleton)
    candidates = _find_candidates(skeleton, mhp)
    diagnostics = [c.to_diagnostic() for c in candidates]
    diagnostics += _note_diagnostics(skeleton.notes)
    active, suppressed = _split_suppressed(
        sort_diagnostics(diagnostics), skeleton.suppressions
    )
    serial, poisoned = _prefilter_analysis(skeleton, mhp)
    return LintReport(
        target=target or skeleton.source,
        skeleton=skeleton,
        mhp=mhp,
        candidates=candidates,
        diagnostics=active,
        serial_locations=serial,
        poisoned_locations=poisoned,
        suppressed=suppressed,
    )


def lint_function(func: Callable[..., Any], target: str = "") -> LintReport:
    """Lint an ordinary task body (AST front end)."""
    skeleton = skeleton_from_function(func)
    return lint_skeleton(skeleton, target=target or skeleton.source)


def lint_spec(spec: Sequence[Any], target: str = "<spec>") -> LintReport:
    """Lint a generator spec tree (exact front end)."""
    skeleton = skeleton_from_spec(spec, source=target)
    return lint_skeleton(skeleton, target=target)


def lint_program(program: Any, target: str = "") -> LintReport:
    """Lint a :class:`~repro.runtime.program.TaskProgram` or bare body."""
    from repro.runtime.program import TaskProgram

    if isinstance(program, TaskProgram):
        name = target or f"program:{program.name}"
        return lint_function(program.body, target=name)
    if callable(program):
        return lint_function(program, target=target)
    return lint_spec(program, target=target or "<spec>")
