"""The static atomicity lint pass (``repro lint``).

Combines the static skeleton (:mod:`repro.static.structure`), static MHP
(:mod:`repro.static.mhp`) and versioned static locksets
(:mod:`repro.static.locksets`) into the paper's Figure 4 check, applied
before any execution:

* a **candidate unserializable triple** is a same-step ordered access
  pair on one location whose versioned locksets are disjoint (the two
  accesses lie in different critical sections, Section 3.3), plus a
  statically-parallel access to the same location whose interposition
  forms one of the five unserializable RW patterns (Figure 4).  Exact
  triples (all three locations compile-time constants) are ``SAV001``
  errors; triples reached through prefix/unknown location patterns are
  ``SAV002`` warnings.
* **structural rules** surface everything the skeleton builder had to
  approximate or found suspicious (unresolved task bodies, ctx-discipline
  escapes, unbalanced lock scopes, conditional syncs, ...), each under a
  stable ``SAV1xx`` code.

The pass also proves locations *schedule-serial*: an exact location whose
accessing steps are pairwise non-parallel (and not self-parallel) can
never participate in any violation, on any input, under any schedule --
the fact the sharded checker's ``--static-prefilter`` consumes.  The
proof is only trusted when the skeleton is fully exact
(:attr:`LintReport.prefilter_safe`); one imprecise pattern or unresolved
body disables filtering entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.checker.patterns import is_unserializable_triple, triple_code
from repro.static.accesses import EXACT
from repro.static.diagnostics import (
    ANALYSIS_LIMIT,
    CANDIDATE_EXACT,
    CANDIDATE_POSSIBLE,
    CONDITIONAL_SYNC,
    CTX_ESCAPE,
    DYNAMIC_LOCK_NAME,
    ERROR,
    INFO,
    LOCK_IMBALANCE,
    NONCONSTANT_LOCATION,
    UNJOINED_SPAWN,
    UNRESOLVED_TASK,
    WARNING,
    Diagnostic,
    make_diagnostic,
    sort_diagnostics,
)
from repro.static.locksets import locks_disjoint
from repro.static.mhp import MHPIndex
from repro.static.structure import (
    SkeletonNote,
    StaticAccess,
    StaticSkeleton,
    skeleton_from_function,
    skeleton_from_spec,
)

Location = Hashable

#: Skeleton note kind -> diagnostic code.
_NOTE_CODES: Dict[str, str] = {
    "unresolved-task": UNRESOLVED_TASK,
    "nonconstant-location": NONCONSTANT_LOCATION,
    "ctx-escape": CTX_ESCAPE,
    "lock-imbalance": LOCK_IMBALANCE,
    "dynamic-lock-name": DYNAMIC_LOCK_NAME,
    "unjoined-spawn": UNJOINED_SPAWN,
    "conditional-sync": CONDITIONAL_SYNC,
    "unsupported": ANALYSIS_LIMIT,
    "budget-exceeded": ANALYSIS_LIMIT,
    "control-flow-skip": ANALYSIS_LIMIT,
    "recursive-inline": ANALYSIS_LIMIT,
}


@dataclass(frozen=True)
class StaticCandidate:
    """One candidate unserializable triple found statically.

    ``first`` and ``second`` are the same-step pair (program order);
    ``interleaver`` is the statically-parallel access that can land
    between them.  Each leg is ``(access_type, site)``.
    """

    location: Location
    pattern: str                       # e.g. "WRW" (first-interleaver-second)
    first: Tuple[str, str]
    interleaver: Tuple[str, str]
    second: Tuple[str, str]
    exact: bool

    @property
    def code(self) -> str:
        return CANDIDATE_EXACT if self.exact else CANDIDATE_POSSIBLE

    def describe(self) -> str:
        qualifier = "" if self.exact else " (imprecise location pattern)"
        return (
            f"{self.pattern} on {self.location!r}{qualifier}: "
            f"{self.first[0]} @ {self.first[1]} .. {self.second[0]} @ "
            f"{self.second[1]} in one step can be split by parallel "
            f"{self.interleaver[0]} @ {self.interleaver[1]}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "location": repr(self.location),
            "pattern": self.pattern,
            "exact": self.exact,
            "first": {"access_type": self.first[0], "site": self.first[1]},
            "interleaver": {
                "access_type": self.interleaver[0],
                "site": self.interleaver[1],
            },
            "second": {"access_type": self.second[0], "site": self.second[1]},
        }

    def to_diagnostic(self) -> Diagnostic:
        return make_diagnostic(
            self.code,
            self.describe(),
            site=self.first[1],
            location=self.location,
            pattern=self.pattern,
        )


class LintReport:
    """Everything ``repro lint`` found about one program."""

    def __init__(
        self,
        target: str,
        skeleton: StaticSkeleton,
        mhp: MHPIndex,
        candidates: List[StaticCandidate],
        diagnostics: List[Diagnostic],
        serial_locations: FrozenSet[Location],
    ) -> None:
        self.target = target
        self.skeleton = skeleton
        self.mhp = mhp
        #: Candidate triples, exact first.
        self.candidates = candidates
        #: Every diagnostic (candidates included), severity-major order.
        self.diagnostics = diagnostics
        #: Exact locations proven schedule-serial by the static MHP.
        self.serial_locations = serial_locations

    # -- verdicts ----------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    @property
    def prefilter_safe(self) -> bool:
        """May the sharded checker trust :attr:`serial_locations`?

        Only when the skeleton is provably an over-approximation: every
        location pattern exact, every task body resolved, no construct
        the builder had to approximate.
        """
        return self.skeleton.is_exact

    def prefilter_locations(self) -> FrozenSet[Location]:
        """Locations the dynamic checker may skip -- empty unless safe."""
        if not self.prefilter_safe:
            return frozenset()
        return self.serial_locations

    def severity_counts(self) -> Dict[str, int]:
        counts = {ERROR: 0, WARNING: 0, INFO: 0}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
        return counts

    # -- rendering ---------------------------------------------------------

    def describe(self) -> str:
        counts = self.severity_counts()
        lines = [
            f"repro lint: {self.target}",
            f"  {counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info note(s); "
            f"{len(self.skeleton.accesses)} static access(es) in "
            f"{len(self.skeleton.steps())} step region(s)",
        ]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic.describe()}")
        if self.serial_locations:
            rendered = ", ".join(
                sorted(repr(loc) for loc in self.serial_locations)
            )
            safety = "usable" if self.prefilter_safe else "NOT usable"
            lines.append(
                f"  schedule-serial location(s) [{safety} as prefilter]: "
                f"{rendered}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        counts = self.severity_counts()
        return {
            "target": self.target,
            "counts": {
                "errors": counts[ERROR],
                "warnings": counts[WARNING],
                "infos": counts[INFO],
                "accesses": len(self.skeleton.accesses),
                "steps": len(self.skeleton.steps()),
                "candidates": len(self.candidates),
            },
            "exact_skeleton": self.skeleton.is_exact,
            "prefilter_safe": self.prefilter_safe,
            "serial_locations": sorted(
                repr(loc) for loc in self.serial_locations
            ),
            "candidates": [c.to_dict() for c in self.candidates],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


def _find_candidates(
    skeleton: StaticSkeleton, mhp: MHPIndex
) -> List[StaticCandidate]:
    """Figure 4 applied statically: all same-step pairs x parallel accesses."""
    by_step = skeleton.accesses_by_step()
    seen: set = set()
    candidates: List[StaticCandidate] = []
    for step, accesses in by_step.items():
        # Same-step ordered pairs in different critical sections -- the
        # anchor rule the dynamic checkers apply (the interleaver's own
        # lockset is never consulted).
        pairs = [
            (first, second)
            for i, first in enumerate(accesses)
            for second in accesses[i + 1 :]
            if first.may_alias(second)
            and locks_disjoint(first.lockset, second.lockset)
        ]
        if not pairs:
            continue
        for other_step, other_accesses in by_step.items():
            if not mhp.parallel(step, other_step):
                continue
            # When other_step IS step (a self-parallel region), the
            # interleaver stands for the other dynamic instance's copy of
            # the access, so the pair's own accesses qualify too.
            for interleaver in other_accesses:
                for first, second in pairs:
                    if not (
                        interleaver.may_alias(first)
                        and interleaver.may_alias(second)
                    ):
                        continue
                    if not is_unserializable_triple(
                        first.access_type,
                        interleaver.access_type,
                        second.access_type,
                    ):
                        continue
                    exact = (
                        first.kind == EXACT
                        and second.kind == EXACT
                        and interleaver.kind == EXACT
                    )
                    location = first.location if exact else first.pattern.describe()
                    key = (
                        location,
                        first.site,
                        first.access_type,
                        interleaver.site,
                        interleaver.access_type,
                        second.site,
                        second.access_type,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(
                        StaticCandidate(
                            location=location,
                            pattern=triple_code(
                                first.access_type,
                                interleaver.access_type,
                                second.access_type,
                            ),
                            first=(first.access_type, first.site),
                            interleaver=(
                                interleaver.access_type,
                                interleaver.site,
                            ),
                            second=(second.access_type, second.site),
                            exact=exact,
                        )
                    )
    candidates.sort(key=lambda c: (not c.exact, repr(c.location), c.pattern))
    return candidates


def _serial_locations(
    skeleton: StaticSkeleton, mhp: MHPIndex
) -> FrozenSet[Location]:
    """Exact locations whose accessing steps are pairwise (and self-) serial."""
    exact_groups: Dict[Location, List[StaticAccess]] = {}
    imprecise: List[StaticAccess] = []
    for access in skeleton.accesses:
        if access.kind == EXACT:
            exact_groups.setdefault(access.location, []).append(access)
        else:
            imprecise.append(access)
    serial: set = set()
    for location, group in exact_groups.items():
        representative = group[0]
        if any(other.may_alias(representative) for other in imprecise):
            continue  # an imprecise pattern may hit this location too
        steps = list({access.step for access in group})
        if any(mhp.self_parallel(step) for step in steps):
            continue
        if any(
            mhp.parallel(steps[i], steps[j])
            for i in range(len(steps))
            for j in range(i + 1, len(steps))
        ):
            continue
        serial.add(location)
    return frozenset(serial)


def _note_diagnostics(notes: Sequence[SkeletonNote]) -> List[Diagnostic]:
    seen: set = set()
    out: List[Diagnostic] = []
    for note in notes:
        key = (note.kind, note.site, note.detail)
        if key in seen:
            continue  # loop unrolling walks the same site twice
        seen.add(key)
        code = _NOTE_CODES.get(note.kind)
        if code is None:
            continue
        message = note.detail or note.kind
        out.append(make_diagnostic(code, message, site=note.site))
    return out


def lint_skeleton(skeleton: StaticSkeleton, target: str = "") -> LintReport:
    """Run the full lint pass over an already-built skeleton."""
    mhp = MHPIndex(skeleton)
    candidates = _find_candidates(skeleton, mhp)
    diagnostics = [c.to_diagnostic() for c in candidates]
    diagnostics += _note_diagnostics(skeleton.notes)
    return LintReport(
        target=target or skeleton.source,
        skeleton=skeleton,
        mhp=mhp,
        candidates=candidates,
        diagnostics=sort_diagnostics(diagnostics),
        serial_locations=_serial_locations(skeleton, mhp),
    )


def lint_function(func: Callable[..., Any], target: str = "") -> LintReport:
    """Lint an ordinary task body (AST front end)."""
    skeleton = skeleton_from_function(func)
    return lint_skeleton(skeleton, target=target or skeleton.source)


def lint_spec(spec: Sequence[Any], target: str = "<spec>") -> LintReport:
    """Lint a generator spec tree (exact front end)."""
    skeleton = skeleton_from_spec(spec, source=target)
    return lint_skeleton(skeleton, target=target)


def lint_program(program: Any, target: str = "") -> LintReport:
    """Lint a :class:`~repro.runtime.program.TaskProgram` or bare body."""
    from repro.runtime.program import TaskProgram

    if isinstance(program, TaskProgram):
        name = target or f"program:{program.name}"
        return lint_function(program.body, target=name)
    if callable(program):
        return lint_function(program, target=target)
    return lint_spec(program, target=target or "<spec>")
