"""Lint baselines: accept today's findings, fail only on new ones.

A baseline file records fingerprints of every known diagnostic so a CI
gate (``repro lint --baseline FILE``) can adopt lint on a codebase with
pre-existing findings: existing ones are acknowledged, and only
*new* diagnostics -- ones whose fingerprint is absent from the baseline
-- fail the build.  ``--update-baseline`` rewrites the file from the
current findings (merging per target, so gating several programs into
one shared baseline works).

Fingerprints are content-based, not index-based:
``target::code::site::location::pattern``.  Adding an unrelated finding
or reordering diagnostics does not invalidate the rest of the baseline;
editing a flagged line (its site moves) deliberately does, because the
finding must be re-triaged.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

#: Schema tag written into every baseline file.
BASELINE_SCHEMA = "repro-lint-baseline/1"


class BaselineError(ValueError):
    """A baseline file is missing, malformed, or from another schema."""


def fingerprint(target: str, diagnostic: Any) -> str:
    """Stable identity of one diagnostic within one lint target."""
    location = "" if diagnostic.location is None else repr(diagnostic.location)
    return "::".join(
        [
            target,
            diagnostic.code,
            diagnostic.site or "",
            location,
            diagnostic.pattern or "",
        ]
    )


def report_fingerprints(report: Any) -> List[str]:
    """Fingerprints of a report's *active* diagnostics (suppressed ones
    are already acknowledged in-source and need no baseline entry)."""
    return [fingerprint(report.target, d) for d in report.diagnostics]


def load_baseline(path: str) -> Dict[str, Any]:
    if not os.path.exists(path):
        raise BaselineError(
            f"baseline file {path!r} does not exist "
            "(run with --update-baseline to create it)"
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"unreadable baseline {path!r}: {error}") from error
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path!r} is not a {BASELINE_SCHEMA} baseline file"
        )
    if not isinstance(data.get("findings"), list):
        raise BaselineError(f"{path!r} has no findings list")
    return data


def compare_to_baseline(
    reports: List[Any], path: str
) -> Tuple[List[Tuple[Any, Any]], List[str]]:
    """``(new, stale)`` relative to the baseline at *path*.

    *new* is ``(report, diagnostic)`` pairs whose fingerprint the
    baseline does not know -- the ones a gate should fail on.  *stale*
    is baseline fingerprints belonging to the linted targets that no
    current diagnostic matches (fixed or moved findings, candidates for
    a baseline refresh); fingerprints of targets outside *reports* are
    left alone.
    """
    data = load_baseline(path)
    known = set(data["findings"])
    targets = {report.target for report in reports}
    new: List[Tuple[Any, Any]] = []
    current: set = set()
    for report in reports:
        for diagnostic in report.diagnostics:
            print_ = fingerprint(report.target, diagnostic)
            current.add(print_)
            if print_ not in known:
                new.append((report, diagnostic))
    stale = sorted(
        print_
        for print_ in known - current
        if print_.split("::", 1)[0] in targets
    )
    return new, stale


def update_baseline(reports: List[Any], path: str) -> Dict[str, Any]:
    """Write (or merge into) the baseline at *path*; returns its data.

    Entries for the linted targets are replaced wholesale; entries for
    other targets are preserved, so several lint invocations can share
    one baseline file.
    """
    existing: List[str] = []
    if os.path.exists(path):
        existing = load_baseline(path)["findings"]
    targets = {report.target for report in reports}
    kept = [
        print_
        for print_ in existing
        if print_.split("::", 1)[0] not in targets
    ]
    fresh: List[str] = []
    for report in reports:
        fresh.extend(report_fingerprints(report))
    data = {
        "schema": BASELINE_SCHEMA,
        "findings": sorted(set(kept + fresh)),
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return data
