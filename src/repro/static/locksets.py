"""Static locksets with lock versioning (paper Section 3.3, statically).

The dynamic runtime (:mod:`repro.runtime.locks`) gives a lock that one
task releases and re-acquires a *fresh versioned name* (``L``, ``L#1``,
``L#2`` ...), so that two separate critical sections never spuriously
appear to protect a two-access pattern spanning them.  The checkers then
treat a same-step pair as unsplittable only when the versioned locksets
of its two accesses intersect.

:class:`StaticLockState` replays exactly that rule over the *lexical*
critical-section scopes the skeleton builder walks (``with ctx.lock(L)``
blocks, ``locked`` spec items, manual ``ctx.acquire``/``ctx.release``
call sites): every re-entry into the same base lock within one task mints
a fresh version, so the static lockset of an access agrees with what the
instrumented runtime would stamp on the corresponding event of a serial
execution.

Lock names that are not compile-time constants get a per-site synthetic
base name.  That is safe for the candidate-triple rule: two accesses in
the same lexical scope dynamically share one critical section whatever
the name evaluates to, and accesses in different scopes can never share a
*versioned* name (re-acquisition re-versions), so scope-keyed synthetic
names reproduce the dynamic intersections exactly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.runtime.locks import versioned_name


class LockScopeError(Exception):
    """An unbalanced lock operation (recorded, not raised, by the builder)."""


class StaticLockState:
    """Versioned lockset bookkeeping for one static task.

    Mirrors :class:`repro.runtime.locks.TaskLockState`: non-reentrant
    acquisition, per-base epoch counters, fresh versioned names on
    re-acquisition.  Imbalances do not raise -- the skeleton builder
    records them as facts so the lint pass can report ``SAV104`` -- but
    the state stays consistent (a bad acquire/release is ignored).
    """

    def __init__(self) -> None:
        self._held: Dict[str, str] = {}
        self._epochs: Dict[str, int] = {}
        #: (kind, base, site) imbalance facts, in discovery order.
        self.imbalances: List[Tuple[str, str, str]] = []

    def acquire(self, base: str, site: str = "") -> Optional[str]:
        """Record acquisition of *base*; returns the versioned name.

        Re-acquiring a held lock is recorded as an imbalance (the runtime
        would raise :class:`~repro.errors.RuntimeUsageError`) and ignored.
        """
        if base in self._held:
            self.imbalances.append(("reacquire", base, site))
            return None
        epoch = self._epochs.get(base, 0)
        name = versioned_name(base, epoch)
        self._held[base] = name
        return name

    def release(self, base: str, site: str = "") -> Optional[str]:
        """Record release of *base*; bumps the epoch (the versioning rule)."""
        name = self._held.pop(base, None)
        if name is None:
            self.imbalances.append(("release-unheld", base, site))
            return None
        self._epochs[base] = self._epochs.get(base, 0) + 1
        return name

    def drain(self, site: str = "") -> None:
        """End of task: anything still held is an acquire-without-release."""
        for base in sorted(self._held):
            self.imbalances.append(("unreleased", base, site))
        self._held.clear()

    def held(self) -> FrozenSet[str]:
        """The current versioned lockset."""
        return frozenset(self._held.values())

    @property
    def balanced(self) -> bool:
        return not self.imbalances and not self._held


def locks_disjoint(first: FrozenSet[str], second: FrozenSet[str]) -> bool:
    """No common versioned lock: the accesses lie in different critical
    sections, so a parallel access can interleave between them.

    The same predicate the dynamic checkers apply to same-step pairs
    (:meth:`repro.checker.access.AccessEntry.locks_disjoint`); the
    interleaver's own lockset is never consulted -- it can always slot
    between two critical sections.
    """
    if not first or not second:
        return True
    return not (first & second)
