"""Static series-parallel skeleton: the DPST approximated before running.

The dynamic program structure tree (Section 2) is built while a program
executes; this module builds its *static* counterpart from the program
text alone, for both front ends:

:func:`skeleton_from_spec`
    Exact skeleton of a :mod:`repro.trace.generator` spec tree.  Specs are
    straight-line, so the construction mirrors the runtime's scope-frame
    rules verbatim and the resulting tree is isomorphic to the DPST any
    execution of the spec would build.

:func:`skeleton_from_function`
    Best-effort skeleton of an ordinary task body from its AST.  The
    walker interprets statements against the same scope-frame rules the
    runtime applies (implicit finish frames on the first spawn after a
    task start or sync; explicit frames for ``with ctx.finish()``), with
    the static approximations:

    * loop bodies are walked **twice**, so cross-iteration parallelism
      (a spawn inside a loop is parallel with its own next instance)
      materializes structurally, while a spawn-then-sync loop stays
      correctly serial;
    * branches of a conditional are walked sequentially (accesses and
      spawns in either branch are assumed possible), but a ``sync`` whose
      execution is conditional -- it sits in a branch or loop entered
      *after* the frame it would pop was pushed -- is ignored, keeping
      the skeleton an over-approximation of parallelism;
    * plain helper calls that receive the task context as their first
      argument are inlined (they run in the caller's task and frames);
    * recursive spawns mark the corresponding async region *replicated*:
      an unbounded family of instances, parallel with itself;
    * the TBB algorithm templates (``parallel_for`` / ``parallel_reduce``
      / ``parallel_invoke`` / ``parallel_pipeline``) expand to their
      finish/async shape, with data-parallel bodies instantiated twice
      (leaf-vs-leaf parallelism).

Everything the walker cannot model soundly -- unresolvable task bodies,
a context object escaping the ``ctx`` access discipline, unbalanced
manual lock usage, control flow that can skip a task construct -- is
recorded as a structured :class:`SkeletonNote`.  Notes whose kind is in
:data:`IMPRECISE_NOTE_KINDS` void :attr:`StaticSkeleton.is_exact`; the
lint pass additionally uses each note's optional ``patterns`` to poison
only the locations a given imprecision may touch, so one approximated
helper no longer disables the prefilter for the whole program.

The AST front end is interprocedural: :func:`skeleton_from_function`
first builds the call graph reachable from the target
(:mod:`repro.static.callgraph`) and walks helpers by inlining --
names resolve through closures, module globals, and dotted attribute
chains.  Recursive helpers are unrolled twice (so same-step pairs with
their true locksets materialize) and then cut off using the bottom-up
:mod:`repro.static.summaries`: a step-local summary proves deeper
unrolling redundant (the skeleton stays exact); anything else
contributes the summary's access patterns plus a ``recursive-inline``
note carrying those patterns for per-location poisoning.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.report import READ, WRITE
from repro.static.accesses import (
    EXACT,
    PREFIX,
    UNKNOWN,
    AccessPattern,
    StaticAccessSet,
    _literal,
    _location_pattern,
)
from repro.static.callgraph import (
    TEMPLATES as _TEMPLATES,
    CallGraph,
    CallGraphStats,
    FunctionInfo as _FunctionInfo,
    build_callgraph,
    callable_env as _callable_env,
    info_for_callable as _info_for_callable,
    resolve_attribute as _resolve_attribute,
)
from repro.static.locksets import StaticLockState
from repro.static.summaries import FunctionSummary, compute_summaries

Location = Hashable

#: Static node kinds (mirroring :class:`repro.dpst.nodes.NodeKind`).
FINISH = "finish"
ASYNC = "async"
STEP = "step"

#: ctx methods by effect.
_READ_METHODS = frozenset({"read"})
_WRITE_METHODS = frozenset({"write"})
_RMW_METHODS = frozenset({"add", "update"})
_QUERY_METHODS = frozenset({"locked", "task_id", "depth"})

#: Note kinds that void the skeleton's exactness claim (and with it the
#: static prefilter): anything that could make the skeleton *miss*
#: accesses or parallelism.
IMPRECISE_NOTE_KINDS = frozenset(
    {
        "unresolved-task",
        "ctx-escape",
        "lock-imbalance",
        "unsupported",
        "budget-exceeded",
        "control-flow-skip",
        "recursive-inline",
    }
)

#: Walk budget: AST nodes processed (statements + expressions) before the
#: builder gives up and marks the skeleton approximate.  Loop unrolling
#: doubles per nesting level, so this caps pathological inputs.
_DEFAULT_BUDGET = 200_000


class _BudgetExceeded(Exception):
    pass


@dataclass(frozen=True)
class SkeletonNote:
    """One structured fact the builder recorded about the program.

    ``patterns`` localizes the imprecision when the builder can bound
    which locations it may involve (e.g. a recursive helper with a fully
    resolved summary): the lint pass then poisons only locations one of
    these patterns may match, instead of the whole program.  An empty
    tuple means the blast radius is unknown.
    """

    kind: str
    site: str
    detail: str = ""
    patterns: Tuple[AccessPattern, ...] = field(default=(), compare=False)

    @property
    def localized(self) -> bool:
        return bool(self.patterns)


class StaticNode:
    """One region of the static skeleton (finish, async, or step)."""

    __slots__ = (
        "index",
        "kind",
        "parent",
        "rank",
        "children",
        "site",
        "replicated",
        "owner",
    )

    def __init__(
        self,
        index: int,
        kind: str,
        parent: Optional["StaticNode"],
        site: str = "",
    ) -> None:
        self.index = index
        self.kind = kind
        self.parent = parent
        self.rank = 0 if parent is None else len(parent.children)
        self.children: List["StaticNode"] = []
        self.site = site
        #: True when this async region stands for an unbounded family of
        #: dynamic instances (recursive spawn): parallel with itself.
        self.replicated = False
        #: Marker of the task body whose walk created this region (AST
        #: front end only) -- regions of a recursive body are parallel
        #: across instances even though the tree holds a single copy.
        self.owner: Optional[str] = None
        if parent is not None:
            parent.children.append(self)

    @property
    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def ancestors(self) -> List["StaticNode"]:
        """Strict ancestors, nearest first."""
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{self.kind} #{self.index}{' *' if self.replicated else ''}>"


class StaticAccess:
    """One statically-derived access, attributed to its step region."""

    __slots__ = ("step", "kind", "location", "access_type", "lockset", "site")

    def __init__(
        self,
        step: StaticNode,
        kind: str,
        location: Location,
        access_type: str,
        lockset: FrozenSet[str],
        site: str,
    ) -> None:
        self.step = step
        self.kind = kind          # EXACT | PREFIX | UNKNOWN
        self.location = location
        self.access_type = access_type
        self.lockset = lockset
        self.site = site

    @property
    def pattern(self) -> AccessPattern:
        return AccessPattern(self.kind, self.location, self.access_type)

    def may_alias(self, other: "StaticAccess") -> bool:
        """Could the two accesses touch the same concrete location?"""
        if self.kind == UNKNOWN or other.kind == UNKNOWN:
            return True
        if self.kind == EXACT and other.kind == EXACT:
            return self.location == other.location
        if self.kind == PREFIX and other.kind == PREFIX:
            return self.location == other.location
        exact, prefix = (
            (self, other) if self.kind == EXACT else (other, self)
        )
        return (
            isinstance(exact.location, tuple)
            and bool(exact.location)
            and exact.location[0] == prefix.location
        )

    def describe(self) -> str:
        base = self.pattern.describe()
        locks = (
            " {" + ", ".join(sorted(self.lockset)) + "}" if self.lockset else ""
        )
        return f"{base}{locks} @ {self.site}"


class StaticSkeleton:
    """The static series-parallel skeleton plus everything found building it."""

    def __init__(self, source: str = "") -> None:
        self.source = source
        self.nodes: List[StaticNode] = []
        self.root = self._node(FINISH, None, site="<root>")
        self.accesses: List[StaticAccess] = []
        self.notes: List[SkeletonNote] = []
        #: Task-body markers that spawn themselves (directly or through a
        #: cycle): their regions stand for unboundedly many instances.
        self.recursive_markers: set = set()
        #: ``static.callgraph.*`` stats from the AST front end (``None``
        #: for the exact spec front end, which has no call graph).
        self.callgraph_stats: Optional[CallGraphStats] = None
        #: ``# repro: ignore[...]`` comments by absolute "file:line" site;
        #: an empty frozenset suppresses every code on that line.
        self.suppressions: Dict[str, FrozenSet[str]] = {}

    # -- construction ------------------------------------------------------

    def _node(self, kind: str, parent: Optional[StaticNode], site: str = "") -> StaticNode:
        node = StaticNode(len(self.nodes), kind, parent, site=site)
        self.nodes.append(node)
        return node

    def note(
        self,
        kind: str,
        site: str,
        detail: str = "",
        patterns: Tuple[AccessPattern, ...] = (),
    ) -> None:
        self.notes.append(SkeletonNote(kind, site, detail, patterns))

    # -- queries -----------------------------------------------------------

    def steps(self) -> List[StaticNode]:
        return [node for node in self.nodes if node.kind == STEP]

    def accesses_by_step(self) -> Dict[StaticNode, List[StaticAccess]]:
        by_step: Dict[StaticNode, List[StaticAccess]] = {}
        for access in self.accesses:
            by_step.setdefault(access.step, []).append(access)
        return by_step

    @property
    def imprecise_notes(self) -> List[SkeletonNote]:
        return [n for n in self.notes if n.kind in IMPRECISE_NOTE_KINDS]

    @property
    def is_exact(self) -> bool:
        """True when the skeleton provably over-approximates the program:
        no unresolved bodies / escapes / unsupported constructs, and every
        location pattern exact."""
        if self.imprecise_notes:
            return False
        return all(a.kind == EXACT for a in self.accesses)

    def access_set(self) -> StaticAccessSet:
        """The flat access set (interops with :mod:`repro.static.coverage`)."""
        result = StaticAccessSet()
        for access in self.accesses:
            result.add(access.kind, access.location, access.access_type)
        for note in self.notes:
            if note.kind == "unresolved-task":
                result.unresolved_tasks.append(note.detail or note.site)
        return result

    def describe(self) -> str:
        lines = [
            f"static skeleton of {self.source or '<program>'}: "
            f"{len(self.nodes)} region(s), {len(self.accesses)} access(es)"
        ]

        def render(node: StaticNode, indent: int) -> None:
            mark = " [replicated]" if node.replicated else ""
            lines.append("  " * indent + f"{node.kind} #{node.index}{mark}")
            if node.kind == STEP:
                for access in self.accesses:
                    if access.step is node:
                        lines.append("  " * (indent + 1) + access.describe())
            for child in node.children:
                render(child, indent + 1)

        render(self.root, 0)
        for note in self.notes:
            lines.append(f"note[{note.kind}] {note.site} {note.detail}".rstrip())
        return "\n".join(lines)


class _TaskCursor:
    """Mirrors the runtime's scope-frame rules for one static task.

    ``frames`` holds ``(node, kind)`` with kind in ``body`` / ``implicit``
    / ``explicit``; the bottom frame is the task's base region (the root
    finish for the main task, the async node otherwise), exactly like
    :class:`repro.runtime.task.Task`.
    """

    __slots__ = ("sk", "frames", "step", "locks", "constructs")

    def __init__(self, skeleton: StaticSkeleton, base: StaticNode) -> None:
        self.sk = skeleton
        self.frames: List[Tuple[StaticNode, str]] = [(base, "body")]
        self.step: Optional[StaticNode] = None
        self.locks = StaticLockState()
        #: Count of task constructs (spawn/sync/finish) -- used to detect
        #: control flow that might skip one.
        self.constructs = 0

    def _close_step(self) -> None:
        self.step = None

    def access(self, kind: str, location: Location, access_type: str, site: str) -> None:
        if self.step is None:
            self.step = self.sk._node(STEP, self.frames[-1][0], site=site)
        self.sk.accesses.append(
            StaticAccess(self.step, kind, location, access_type, self.locks.held(), site)
        )

    def spawn(self, site: str) -> StaticNode:
        """Create the async region for one spawn; returns it."""
        self.constructs += 1
        self._close_step()
        node, frame_kind = self.frames[-1]
        if frame_kind == "body":
            finish = self.sk._node(FINISH, node, site=site)
            self.frames.append((finish, "implicit"))
            node = finish
        return self.sk._node(ASYNC, node, site=site)

    def sync(self, barrier: int) -> bool:
        """Pop the innermost implicit frame, if *barrier* allows it.

        ``barrier`` is the frame-stack height at entry of the innermost
        conditional/loop region: a sync may only pop a frame pushed at or
        above it (the frame's spawn provably precedes the sync on every
        path).  Returns False when the sync was ignored.
        """
        self.constructs += 1
        self._close_step()
        if self.frames[-1][1] != "implicit":
            return True  # body/explicit top: runtime sync is a wait/no-op
        if len(self.frames) - 1 < barrier:
            return False
        self.frames.pop()
        return True

    def finish_enter(self, site: str) -> StaticNode:
        self.constructs += 1
        self._close_step()
        node = self.sk._node(FINISH, self.frames[-1][0], site=site)
        self.frames.append((node, "explicit"))
        return node

    def finish_exit(self) -> None:
        self.constructs += 1
        self._close_step()
        while self.frames[-1][1] == "implicit":
            self.frames.pop()
        if self.frames[-1][1] == "explicit":
            self.frames.pop()

    def end(self, site: str) -> None:
        """End of the task body: drain frames, flag drain-joined spawns."""
        self._close_step()
        while len(self.frames) > 1:
            node, kind = self.frames.pop()
            if kind == "implicit" and any(
                child.kind == ASYNC for child in node.children
            ):
                self.sk.note(
                    "unjoined-spawn",
                    node.site or site,
                    "spawned children joined only by the end-of-task drain",
                )
        self.locks.drain(site)
        for imbalance_kind, base, where in self.locks.imbalances:
            self.sk.note("lock-imbalance", where or site, f"{imbalance_kind}: {base!r}")
        self.locks.imbalances.clear()


# ---------------------------------------------------------------------------
# Spec front end (exact)
# ---------------------------------------------------------------------------


def skeleton_from_spec(spec: Sequence[Any], source: str = "<spec>") -> StaticSkeleton:
    """Exact static skeleton of a generator spec tree.

    Accepts the tuple form produced by :class:`repro.trace.generator.
    TraceGenerator` and the list form a JSON round-trip yields (locations
    that were tuples come back as lists and are re-tupled).
    """
    skeleton = StaticSkeleton(source=source)

    def canon_location(location: Any) -> Location:
        return tuple(location) if isinstance(location, list) else location

    def visit(items: Sequence[Any], cursor: _TaskCursor, path: str) -> None:
        for index, item in enumerate(items):
            tag = item[0]
            site = f"{path}.{index}:{tag}"
            if tag == "access":
                _, location, access_type = item
                cursor.access(EXACT, canon_location(location), access_type, site)
            elif tag == "locked":
                _, lock_name, inner = item
                cursor.locks.acquire(str(lock_name), site)
                visit(inner, cursor, site)
                cursor.locks.release(str(lock_name), site)
            elif tag == "spawn":
                child = cursor.spawn(site)
                child_cursor = _TaskCursor(skeleton, child)
                visit(item[1], child_cursor, site)
                child_cursor.end(site)
            elif tag == "sync":
                cursor.sync(barrier=1)
            elif tag == "finish":
                cursor.finish_enter(site)
                visit(item[1], cursor, site)
                cursor.finish_exit()
            else:
                raise ValueError(f"unknown spec item {tag!r}")

    root_cursor = _TaskCursor(skeleton, skeleton.root)
    if len(spec) and spec[0] == "task":
        visit(spec[1], root_cursor, "task")
    else:
        visit(spec, root_cursor, "spec")
    root_cursor.end("<end>")
    return skeleton


# ---------------------------------------------------------------------------
# AST front end (best effort, conservatively noted)
# ---------------------------------------------------------------------------


#: Unrollings of a recursive helper before the summary cutoff: two, so
#: that same-step access pairs materialize with their true locksets.
_RECURSIVE_UNROLL = 2


class _AstSkeletonBuilder:
    """Interprets task-body ASTs against the static scope-frame rules."""

    def __init__(
        self,
        skeleton: StaticSkeleton,
        budget: int = _DEFAULT_BUDGET,
        graph: Optional[CallGraph] = None,
    ) -> None:
        self.sk = skeleton
        self.budget = budget
        self.ops = 0
        #: markers of task bodies on the current spawn chain (recursion).
        self.spawn_chain: List[str] = []
        #: markers of helpers on the current inline chain.
        self.inline_chain: List[str] = []
        #: the interprocedural call graph, when the front end built one.
        self.graph = graph
        self._summaries: Optional[Dict[str, FunctionSummary]] = None

    def _summary_for(self, marker: str) -> Optional[FunctionSummary]:
        if self.graph is None:
            return None
        if self._summaries is None:
            self._summaries = compute_summaries(self.graph)
        return self._summaries.get(marker)

    # -- bookkeeping -------------------------------------------------------

    def _tick(self) -> None:
        self.ops += 1
        if self.ops > self.budget:
            raise _BudgetExceeded()

    def _site(self, info: _FunctionInfo, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0) + info.line_offset
        return f"{info.filename}:{line}"

    def _merge_suppressions(self, info: _FunctionInfo) -> None:
        """Register *info*'s ``# repro: ignore`` comments by absolute site."""
        for line, codes in getattr(info, "suppressions", {}).items():
            key = f"{info.filename}:{line + info.line_offset}"
            existing = self.sk.suppressions.get(key)
            if existing is None:
                self.sk.suppressions[key] = codes
            elif codes and existing:
                self.sk.suppressions[key] = existing | codes
            else:
                self.sk.suppressions[key] = frozenset()

    # -- task entry --------------------------------------------------------

    def build_task(self, info: _FunctionInfo, base: StaticNode) -> None:
        """Walk *info* as one task's body rooted at *base*."""
        self._merge_suppressions(info)
        ctx_name = info.first_param()
        cursor = _TaskCursor(self.sk, base)
        site = self._site(info, info.node)
        if ctx_name is None:
            self.sk.note("unresolved-task", site, f"{info.marker}: no context parameter")
            cursor.end(site)
            return
        first_node = len(self.sk.nodes)
        self.spawn_chain.append(info.marker)
        try:
            state = _WalkState(info, cursor, {ctx_name})
            self._walk_block(state, info.body_statements(), barrier=1)
        finally:
            self.spawn_chain.pop()
            for node in self.sk.nodes[first_node:]:
                if node.owner is None:
                    node.owner = info.marker
        self._check_skipped_constructs(state, site)
        cursor.end(site)

    def _check_skipped_constructs(self, state: "_WalkState", site: str) -> None:
        """A conditional early exit before later task constructs means the
        linear walk may have over-trusted a sync: flag it."""
        for count_at_exit, where in state.early_exits:
            if state.cursor.constructs > count_at_exit:
                self.sk.note(
                    "control-flow-skip",
                    where,
                    "conditional return/break/continue may skip a later "
                    "task construct",
                )
                return

    # -- statement walking -------------------------------------------------

    def _walk_block(
        self, state: "_WalkState", statements: Sequence[ast.stmt], barrier: int
    ) -> bool:
        """Walk a statement list; returns True on an unconditional return."""
        for statement in statements:
            if self._walk_stmt(state, statement, barrier):
                return True
        return False

    def _walk_stmt(self, state: "_WalkState", stmt: ast.stmt, barrier: int) -> bool:
        self._tick()
        cursor = state.cursor
        if isinstance(stmt, ast.Expr):
            self._scan_expr(state, stmt.value, barrier)
        elif isinstance(stmt, ast.Assign):
            self._handle_assign(state, stmt, barrier)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_expr(state, stmt.value, barrier)
            self._scan_expr(state, stmt.target, barrier, store=True)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(state, stmt.value, barrier)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(state, stmt.value, barrier)
            state.early_exits.append(
                (cursor.constructs, self._site(state.info, stmt))
            )
            return True
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            state.early_exits.append(
                (cursor.constructs, self._site(state.info, stmt))
            )
        elif isinstance(stmt, ast.If):
            self._scan_expr(state, stmt.test, barrier)
            inner = len(cursor.frames)
            returned_body = self._walk_block(state, stmt.body, inner)
            returned_else = self._walk_block(state, stmt.orelse, inner)
            return returned_body and returned_else
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(state, stmt.iter, barrier)
            self._walk_loop(state, stmt.body, stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._scan_expr(state, stmt.test, barrier)
            self._walk_loop(state, stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(state, stmt, barrier)
        elif isinstance(stmt, ast.Try):
            before = cursor.constructs
            inner = len(cursor.frames)
            self._walk_block(state, stmt.body, inner)
            for handler in stmt.handlers:
                self._walk_block(state, handler.body, inner)
            self._walk_block(state, stmt.orelse, inner)
            self._walk_block(state, stmt.finalbody, inner)
            if cursor.constructs != before:
                self.sk.note(
                    "control-flow-skip",
                    self._site(state.info, stmt),
                    "task constructs inside a try block",
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            state.local_defs[stmt.name] = state.info.child(
                stmt, state.info.local_marker(stmt.name)
            )
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass, ast.Global, ast.Nonlocal)):
            pass
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(state, child, barrier)
        else:
            # Match statements, class defs, anything exotic: scan for ctx
            # references and flag the construct when they appear.
            if self._references_ctx(state, stmt):
                self.sk.note(
                    "unsupported",
                    self._site(state.info, stmt),
                    f"unsupported statement {type(stmt).__name__} uses the context",
                )
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(state, child, barrier)
        return False

    def _walk_loop(
        self,
        state: "_WalkState",
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
    ) -> None:
        """Walk a loop body twice (cross-iteration parallelism), once more
        for the else clause."""
        inner = len(state.cursor.frames)
        for _ in range(2):
            self._walk_block(state, body, inner)
        self._walk_block(state, orelse, inner)

    def _walk_with(self, state: "_WalkState", stmt: ast.With, barrier: int) -> None:
        cursor = state.cursor
        entered: List[Tuple[str, Any]] = []  # ("lock", base) | ("finish", None)
        for item in stmt.items:
            expr = item.context_expr
            method = self._ctx_method(state, expr)
            site = self._site(state.info, expr)
            if method == "lock" and isinstance(expr, ast.Call):
                base = self._lock_base(state, expr, site)
                cursor.locks.acquire(base, site)
                entered.append(("lock", base))
            elif method == "finish":
                cursor.finish_enter(site)
                entered.append(("finish", None))
            else:
                self._scan_expr(state, expr, barrier)
            if item.optional_vars is not None and self._references_ctx(
                state, item.optional_vars
            ):
                self.sk.note("ctx-escape", site, "context bound by a with statement")
        self._walk_block(state, stmt.body, barrier)
        for kind, payload in reversed(entered):
            if kind == "lock":
                cursor.locks.release(payload, self._site(state.info, stmt))
            else:
                cursor.finish_exit()

    # -- expression scanning ----------------------------------------------

    def _scan_expr(
        self,
        state: "_WalkState",
        node: ast.expr,
        barrier: int,
        store: bool = False,
    ) -> None:
        """Collect ctx effects from *node* in (approximate) eval order."""
        self._tick()
        if isinstance(node, ast.Call):
            self._scan_call(state, node, barrier)
            return
        if isinstance(node, ast.Name):
            if not store and node.id in state.ctx_names:
                self.sk.note(
                    "ctx-escape",
                    self._site(state.info, node),
                    f"context {node.id!r} used outside the access discipline",
                )
            return
        if isinstance(node, ast.Lambda):
            if self._references_ctx(state, node.body):
                self.sk.note(
                    "ctx-escape",
                    self._site(state.info, node),
                    "lambda closing over the context in an unrecognized position",
                )
            return
        if isinstance(node, ast.Attribute):
            # ctx.method without a call (e.g. passed around) is an escape;
            # plain attribute chains are scanned for nested calls.
            if isinstance(node.value, ast.Name) and node.value.id in state.ctx_names:
                if node.attr not in _QUERY_METHODS:
                    self.sk.note(
                        "ctx-escape",
                        self._site(state.info, node),
                        f"unbound context method {node.attr!r}",
                    )
                return
            self._scan_expr(state, node.value, barrier)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(state, child, barrier)
            elif isinstance(child, ast.comprehension):
                self._scan_expr(state, child.iter, barrier)
                for condition in child.ifs:
                    self._scan_expr(state, condition, barrier)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                self._scan_expr(state, child.value, barrier)

    def _scan_call(self, state: "_WalkState", node: ast.Call, barrier: int) -> None:
        func = node.func
        method = self._ctx_method(state, func)
        if method is not None:
            self._handle_ctx_call(state, method, node, barrier)
            return
        if isinstance(func, ast.Name) and func.id in _TEMPLATES:
            if node.args and self._is_ctx(state, node.args[0]):
                self._handle_template(state, func.id, node, barrier)
                return
        # Plain call: arguments first (eval order), then maybe inline.
        ctx_positions = [
            index
            for index, arg in enumerate(node.args)
            if self._is_ctx(state, arg)
        ]
        for index, arg in enumerate(node.args):
            if index not in ctx_positions:
                self._scan_expr(state, arg, barrier)
        for keyword in node.keywords:
            if self._is_ctx(state, keyword.value):
                self.sk.note(
                    "ctx-escape",
                    self._site(state.info, node),
                    "context passed as a keyword argument",
                )
            else:
                self._scan_expr(state, keyword.value, barrier)
        inlining = ctx_positions == [0] and isinstance(func, (ast.Name, ast.Attribute))
        if not isinstance(func, ast.Name) and not inlining:
            self._scan_expr(state, func, barrier)
        if inlining:
            self._inline_call(state, func, node, barrier)
        elif ctx_positions:
            self.sk.note(
                "ctx-escape",
                self._site(state.info, node),
                "context passed to an unresolvable callee position",
            )

    # -- ctx calls ---------------------------------------------------------

    def _handle_ctx_call(
        self, state: "_WalkState", method: str, node: ast.Call, barrier: int
    ) -> None:
        cursor = state.cursor
        site = self._site(state.info, node)
        location_arg = self._argument(node, 0, "location")
        if method in _READ_METHODS or method in _WRITE_METHODS or method in _RMW_METHODS:
            # Evaluate the other arguments first (they may contain nested
            # ctx calls: ctx.write(X, ctx.read(X) + 1) reads before writing).
            for index, arg in enumerate(node.args):
                if index != 0 or location_arg is not arg:
                    self._scan_expr(state, arg, barrier)
            for keyword in node.keywords:
                if keyword.value is not location_arg:
                    self._scan_expr(state, keyword.value, barrier)
            if location_arg is None:
                self.sk.note("unsupported", site, f"ctx.{method} without a location")
                return
            kind, value = _location_pattern(location_arg)
            if kind != EXACT:
                self.sk.note(
                    "nonconstant-location",
                    site,
                    f"ctx.{method} location degrades to a {kind} pattern",
                )
            if method in _READ_METHODS:
                cursor.access(kind, value, READ, site)
            elif method in _WRITE_METHODS:
                cursor.access(kind, value, WRITE, site)
            else:
                cursor.access(kind, value, READ, site)
                cursor.access(kind, value, WRITE, site)
        elif method == "spawn":
            body_arg = self._argument(node, 0, "body")
            for index, arg in enumerate(node.args):
                if arg is not body_arg:
                    if self._is_ctx(state, arg):
                        self.sk.note("ctx-escape", site, "context passed to a spawned child")
                    else:
                        self._scan_expr(state, arg, barrier)
            for keyword in node.keywords:
                if keyword.value is not body_arg:
                    self._scan_expr(state, keyword.value, barrier)
            self._spawn_body(state, body_arg, site)
        elif method == "sync":
            if not cursor.sync(barrier):
                self.sk.note(
                    "conditional-sync",
                    site,
                    "sync under a condition ignored (parallelism over-approximated)",
                )
        elif method == "acquire" or method == "release":
            base = self._lock_base(state, node, site)
            if method == "acquire":
                cursor.locks.acquire(base, site)
            else:
                cursor.locks.release(base, site)
        elif method in _QUERY_METHODS:
            pass
        elif method in ("lock", "finish"):
            # Correct use is inside a with statement (handled there); a
            # bare call creates a context manager we cannot track.
            self.sk.note(
                "unsupported", site, f"ctx.{method}() outside a with statement"
            )
        else:
            self.sk.note("unsupported", site, f"unknown context method {method!r}")

    def _spawn_body(self, state: "_WalkState", body_arg: Optional[ast.expr], site: str) -> None:
        cursor = state.cursor
        if body_arg is None:
            self.sk.note("unresolved-task", site, "spawn without a body argument")
            cursor.spawn(site)
            return
        info = self._resolve_body(state, body_arg)
        async_node = cursor.spawn(site)
        if info is None:
            self.sk.note(
                "unresolved-task",
                site,
                ast.dump(body_arg)[:60],
            )
            return
        if info.marker in self.spawn_chain:
            # Recursive spawn: one static region stands for the whole
            # family of dynamic instances.  Every marker on the cycle is
            # replicated -- its regions are parallel across instances.
            async_node.replicated = True
            cycle_start = self.spawn_chain.index(info.marker)
            self.sk.recursive_markers.update(self.spawn_chain[cycle_start:])
            return
        self.build_task(info, async_node)

    def _handle_template(
        self, state: "_WalkState", name: str, node: ast.Call, barrier: int
    ) -> None:
        site = self._site(state.info, node)
        cursor = state.cursor
        spec, keyword_name = _TEMPLATES[name]
        bodies: List[Optional[ast.expr]] = []
        consumed: List[ast.expr] = []
        if spec == "*":
            bodies = list(node.args[1:])
            consumed = list(node.args[1:])
        elif isinstance(spec, str) and spec.startswith("list:"):
            index = int(spec.split(":", 1)[1])
            stages = self._argument(node, index, keyword_name)
            if isinstance(stages, (ast.List, ast.Tuple)):
                bodies = list(stages.elts)
            else:
                bodies = [None]
            if stages is not None:
                consumed = [stages]
        else:
            body = self._argument(node, spec, keyword_name)
            bodies = [body, body]  # data parallel: leaf vs leaf
            if body is not None:
                consumed = [body]
        for index, arg in enumerate(node.args):
            if index == 0 or arg in consumed:
                continue
            self._scan_expr(state, arg, barrier)
        for keyword in node.keywords:
            if keyword.value in consumed:
                continue
            self._scan_expr(state, keyword.value, barrier)
        if name == "parallel_pipeline":
            # Stages run wave-by-wave: one finish per stage, each stage
            # instantiated twice (item-vs-item parallelism within a wave).
            for stage in bodies:
                cursor.finish_enter(site)
                for _ in range(2):
                    self._spawn_body(state, stage, site)
                cursor.finish_exit()
            return
        cursor.finish_enter(site)
        for body in bodies:
            self._spawn_body(state, body, site)
        cursor.finish_exit()

    def _inline_call(
        self, state: "_WalkState", func: ast.expr, node: ast.Call, barrier: int
    ) -> None:
        """A helper receiving the context runs in the caller's task: inline."""
        site = self._site(state.info, node)
        name = self._callee_name(func)
        info = self._resolve_callee(state, func)
        if info is None:
            self.sk.note(
                "ctx-escape", site, f"context passed to unresolvable callee {name!r}"
            )
            return
        if self.inline_chain.count(info.marker) >= _RECURSIVE_UNROLL:
            self._recursive_cutoff(state, info, name, site)
            return
        ctx_param = info.first_param()
        if ctx_param is None:
            self.sk.note("ctx-escape", site, f"callee {name!r} has no parameters")
            return
        self._merge_suppressions(info)
        self.inline_chain.append(info.marker)
        try:
            inner = _WalkState(info, state.cursor, {ctx_param})
            self._walk_block(inner, info.body_statements(), barrier)
            state.early_exits.extend(inner.early_exits)
        finally:
            self.inline_chain.pop()

    def _recursive_cutoff(
        self, state: "_WalkState", info: _FunctionInfo, name: str, site: str
    ) -> None:
        """Stop unrolling a recursive helper, consulting its summary.

        The helper has already been walked :data:`_RECURSIVE_UNROLL`
        times on this chain, so every same-step access pair it can form
        exists with its true locksets.  Three cases remain for the
        deeper iterations:

        * a **step-local** summary (straight-line ctx accesses only)
          repeats triples the unrolling already emitted -- nothing to
          add, and the skeleton stays exact;
        * a **resolved** summary bounds the deeper effects: emit its
          access patterns in the current step/lockset (may-accesses) and
          localize the imprecision to exactly those patterns;
        * anything else (ctx escapes or unresolved calls below) leaves
          the blast radius unknown: an unlocalized note poisons the
          whole program, as before.
        """
        summary = self._summary_for(info.marker)
        if summary is not None and summary.step_local:
            return
        cursor = state.cursor
        patterns: Tuple[AccessPattern, ...] = ()
        if summary is not None:
            for pattern in sorted(
                summary.patterns, key=lambda p: repr((p.kind, p.location, p.access_type))
            ):
                cursor.access(pattern.kind, pattern.location, pattern.access_type, site)
            if summary.resolved:
                patterns = tuple(summary.patterns)
        self.sk.note(
            "recursive-inline",
            site,
            f"recursive helper {name!r}: unrolled {_RECURSIVE_UNROLL}x, deeper "
            f"iterations approximated by its summary",
            patterns=patterns,
        )

    def _callee_name(self, func: ast.expr) -> str:
        parts: List[str] = []
        current = func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
        else:
            parts.append("<expr>")
        return ".".join(reversed(parts))

    def _resolve_callee(
        self, state: "_WalkState", func: ast.expr
    ) -> Optional[_FunctionInfo]:
        if isinstance(func, ast.Name):
            return self._resolve_name(state, func.id)
        resolved = _resolve_attribute(func, state.info.env)
        if callable(resolved):
            return _info_for_callable(resolved)
        return None

    # -- small helpers -----------------------------------------------------

    def _handle_assign(self, state: "_WalkState", stmt: ast.Assign, barrier: int) -> None:
        value = stmt.value
        if (
            isinstance(value, ast.Name)
            and value.id in state.ctx_names
            and all(isinstance(target, ast.Name) for target in stmt.targets)
        ):
            for target in stmt.targets:
                state.ctx_names.add(target.id)  # ctx alias
            return
        self._scan_expr(state, value, barrier)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                state.ctx_names.discard(target.id)  # rebound away from ctx
            else:
                self._scan_expr(state, target, barrier, store=True)

    def _ctx_method(self, state: "_WalkState", node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in state.ctx_names
        ):
            return node.func.attr
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in state.ctx_names
        ):
            return node.attr
        return None

    def _is_ctx(self, state: "_WalkState", node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in state.ctx_names

    def _references_ctx(self, state: "_WalkState", node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id in state.ctx_names
            for sub in ast.walk(node)
        )

    def _argument(
        self, node: ast.Call, index: Any, keyword_name: Optional[str]
    ) -> Optional[ast.expr]:
        if isinstance(index, int) and len(node.args) > index:
            return node.args[index]
        if keyword_name is not None:
            for keyword in node.keywords:
                if keyword.arg == keyword_name:
                    return keyword.value
        return None

    def _lock_base(self, state: "_WalkState", node: ast.Call, site: str) -> str:
        name_arg = self._argument(node, 0, "name")
        if name_arg is not None:
            constant, value = _literal(name_arg)
            if constant:
                return str(value)
        self.sk.note(
            "dynamic-lock-name",
            site,
            "lock name is not a compile-time constant; tracked per scope",
        )
        return f"?lock@{site}"

    def _resolve_body(
        self, state: "_WalkState", node: ast.expr
    ) -> Optional[_FunctionInfo]:
        if isinstance(node, ast.Name):
            return self._resolve_name(state, node.id)
        if isinstance(node, ast.Lambda):
            return state.info.child(node, state.info.lambda_marker(node))
        if isinstance(node, ast.Attribute):
            resolved = _resolve_attribute(node, state.info.env)
            if callable(resolved):
                return _info_for_callable(resolved)
        return None

    def _resolve_name(self, state: "_WalkState", name: str) -> Optional[_FunctionInfo]:
        if name in state.local_defs:
            return state.local_defs[name]
        target = state.info.env.get(name)
        if callable(target):
            return _info_for_callable(target)
        return None


class _WalkState:
    """Per-inlined-function walking state sharing one task cursor."""

    __slots__ = ("info", "cursor", "ctx_names", "local_defs", "early_exits")

    def __init__(
        self, info: _FunctionInfo, cursor: _TaskCursor, ctx_names: set
    ) -> None:
        self.info = info
        self.cursor = cursor
        self.ctx_names = set(ctx_names)
        self.local_defs: Dict[str, _FunctionInfo] = {}
        #: (constructs-at-exit, site) of conditional returns/breaks.
        self.early_exits: List[Tuple[int, str]] = []


def skeleton_from_function(
    func: Callable[..., Any], budget: int = _DEFAULT_BUDGET
) -> StaticSkeleton:
    """Best-effort static skeleton of a task body function.

    Builds the interprocedural call graph first (helpers, spawned
    bodies, template bodies, through closures / module globals /
    attribute chains), records its ``static.callgraph.*`` stats on the
    skeleton, and hands the graph to the walker so recursive helpers can
    be cut off with bottom-up summaries instead of a blanket
    approximation note.
    """
    marker = f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"
    skeleton = StaticSkeleton(source=marker)
    info = _info_for_callable(func)
    if info is None:
        skeleton.note("unresolved-task", "<root>", f"{marker}: source unavailable")
        return skeleton
    graph = build_callgraph(info)
    skeleton.callgraph_stats = graph.stats()
    builder = _AstSkeletonBuilder(skeleton, budget=budget, graph=graph)
    try:
        builder.build_task(info, skeleton.root)
    except _BudgetExceeded:
        skeleton.note(
            "budget-exceeded",
            "<root>",
            f"analysis budget of {budget} AST nodes exceeded",
        )
    return skeleton
