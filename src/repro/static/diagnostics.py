"""Lint diagnostics: stable codes, severities, and rendering.

Every finding of the static lint pass (:mod:`repro.static.lint`) is a
:class:`Diagnostic` with a stable ``SAVnnn`` code so tooling can filter
and CI can gate on severities.  The catalog (:data:`RULES`) is the single
source of truth; ``docs/api.md`` renders it.

Code ranges
-----------
``SAV0xx``
    Candidate unserializable triples (the paper's Figure 4 taxonomy
    applied statically).
``SAV1xx``
    Structural rules: constructs that void the analysis' precision or
    smell like synchronization mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

#: Severity levels, in decreasing order of gravity.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: Candidate-triple rules (SAV0xx).
CANDIDATE_EXACT = "SAV001"
CANDIDATE_POSSIBLE = "SAV002"

#: Structural rules (SAV1xx).
UNRESOLVED_TASK = "SAV101"
NONCONSTANT_LOCATION = "SAV102"
CTX_ESCAPE = "SAV103"
LOCK_IMBALANCE = "SAV104"
DYNAMIC_LOCK_NAME = "SAV105"
UNJOINED_SPAWN = "SAV106"
CONDITIONAL_SYNC = "SAV107"
ANALYSIS_LIMIT = "SAV108"

#: The rule catalog: code -> (default severity, one-line summary).
RULES: Dict[str, Tuple[str, str]] = {
    CANDIDATE_EXACT: (
        ERROR,
        "statically-unserializable triple on an exact location "
        "(Fig. 4 pattern, parallel steps, disjoint locksets)",
    ),
    CANDIDATE_POSSIBLE: (
        WARNING,
        "possible unserializable triple through imprecise (prefix/unknown) "
        "location patterns",
    ),
    UNRESOLVED_TASK: (
        WARNING,
        "spawned task body could not be resolved statically",
    ),
    NONCONSTANT_LOCATION: (
        WARNING,
        "non-constant location expression degrades the access set to a "
        "prefix/unknown pattern",
    ),
    CTX_ESCAPE: (
        WARNING,
        "task context escapes the ctx access discipline (aliased into a "
        "container or passed to an unresolvable callee)",
    ),
    LOCK_IMBALANCE: (
        WARNING,
        "unbalanced lock scope (acquire without release, release without "
        "acquire, or re-acquiring a held lock)",
    ),
    DYNAMIC_LOCK_NAME: (
        INFO,
        "non-constant lock name; critical sections are tracked per lexical "
        "scope only",
    ),
    UNJOINED_SPAWN: (
        INFO,
        "spawn joined only by the implicit end-of-task drain (no explicit "
        "sync or finish scope)",
    ),
    CONDITIONAL_SYNC: (
        INFO,
        "sync under a condition is ignored for parallelism "
        "(over-approximated as absent)",
    ),
    ANALYSIS_LIMIT: (
        WARNING,
        "unsupported construct or analysis budget exceeded; the skeleton "
        "is approximate",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``site`` is a human-readable source anchor (``file:line`` for the AST
    front end, a spec path for the spec front end); ``location`` and
    ``pattern`` are populated for candidate-triple diagnostics.
    """

    code: str
    severity: str
    message: str
    site: Optional[str] = None
    location: Optional[Hashable] = None
    pattern: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def describe(self) -> str:
        anchor = f" at {self.site}" if self.site else ""
        return f"{self.code} [{self.severity}]{anchor}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.site:
            data["site"] = self.site
        if self.location is not None:
            data["location"] = repr(self.location)
        if self.pattern:
            data["pattern"] = self.pattern
        return data


def make_diagnostic(
    code: str,
    message: str,
    site: Optional[str] = None,
    location: Optional[Hashable] = None,
    pattern: Optional[str] = None,
    severity: Optional[str] = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting the severity from :data:`RULES`."""
    if severity is None:
        severity = RULES[code][0]
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        site=site,
        location=location,
        pattern=pattern,
    )


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Severity-major, then code, then site -- stable render order."""
    return sorted(
        diagnostics,
        key=lambda d: (
            _SEVERITY_RANK.get(d.severity, 99),
            d.code,
            d.site or "",
            d.message,
        ),
    )
