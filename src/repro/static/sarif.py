"""SARIF 2.1.0 export for lint reports (``repro lint --sarif``).

One :class:`~repro.static.lint.LintReport` becomes one SARIF run whose
driver is ``repro-lint``: the full :data:`~repro.static.diagnostics.RULES`
catalog lands in ``tool.driver.rules`` (so viewers can show rule help
even for codes with no results), every active diagnostic becomes a
result, and diagnostics silenced by ``# repro: ignore`` comments are
emitted with an ``inSource`` suppression rather than dropped -- exactly
how code-scanning UIs expect suppressed findings to arrive.

Only the stable subset of SARIF is produced: ruleId / level / message /
one physical location per result.  Sites of the AST front end
(``file:line``) map to ``physicalLocation``; spec-front-end sites (spec
paths like ``task.0:access``) carry no usable file, so they land in the
message-bearing ``logicalLocations`` instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.static.diagnostics import ERROR, INFO, RULES, WARNING, Diagnostic

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severity -> SARIF result level.
_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "note"}


def _rules() -> List[Dict[str, Any]]:
    rules = []
    for code in sorted(RULES):
        severity, summary = RULES[code]
        rules.append(
            {
                "id": code,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {
                    "level": _LEVELS.get(severity, "warning")
                },
            }
        )
    return rules


def _split_site(site: Optional[str]) -> Tuple[Optional[str], Optional[int]]:
    """``file.py:12`` -> (``file.py``, 12); anything else -> (None, None)."""
    if not site or ":" not in site:
        return None, None
    path, _, line = site.rpartition(":")
    if not path or not line.isdigit():
        return None, None
    return path, int(line)


def _result(diagnostic: Diagnostic, suppressed: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS.get(diagnostic.severity, "warning"),
        "message": {"text": diagnostic.message},
    }
    path, line = _split_site(diagnostic.site)
    if path is not None:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                    "region": {"startLine": line},
                }
            }
        ]
    elif diagnostic.site:
        result["locations"] = [
            {
                "logicalLocations": [
                    {"fullyQualifiedName": diagnostic.site}
                ]
            }
        ]
    if diagnostic.location is not None:
        result.setdefault("properties", {})["location"] = repr(
            diagnostic.location
        )
    if diagnostic.pattern:
        result.setdefault("properties", {})["pattern"] = diagnostic.pattern
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def report_to_sarif(report: Any) -> Dict[str, Any]:
    """Render one :class:`~repro.static.lint.LintReport` as a SARIF log."""
    results = [_result(d, suppressed=False) for d in report.diagnostics]
    results += [_result(d, suppressed=True) for d in report.suppressed]
    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro",
                "rules": _rules(),
            }
        },
        "results": results,
        "properties": {
            "target": report.target,
            "prefilter": {
                "proven": sorted(repr(loc) for loc in report.serial_locations),
                "poisoned": sorted(
                    repr(loc) for loc in report.poisoned_locations
                ),
            },
        },
    }
    stats = report.callgraph_stats()
    if stats is not None:
        run["properties"]["callgraph"] = stats
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def reports_to_sarif(reports: List[Any]) -> Dict[str, Any]:
    """Many lint reports -> one SARIF log with one run per report."""
    logs = [report_to_sarif(report) for report in reports]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [log["runs"][0] for log in logs],
    }
