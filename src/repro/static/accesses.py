"""Static over-approximation of a program's shared-memory accesses.

Two front ends produce a :class:`StaticAccessSet`:

:func:`analyze_spec`
    Exact analysis of a :mod:`repro.trace.generator` spec tree -- specs
    are straight-line access scripts, so the access set is computable
    precisely (every listed access, no more, no less).

:func:`analyze_function`
    Best-effort AST analysis of ordinary task bodies.  It walks the
    function (and, transitively, every locally-resolvable function passed
    to ``ctx.spawn`` / the parallel algorithm templates), collecting
    ``ctx.read`` / ``ctx.write`` / ``ctx.add`` / ``ctx.update`` call
    sites.  Location expressions are abstracted to three precision
    levels:

    * a fully constant expression -> an exact location;
    * a tuple whose first element is constant -> a *prefix* pattern
      (``("grid", i)`` with dynamic ``i`` becomes prefix ``"grid"``);
    * anything else -> the *unknown* pattern (matches any location).

    The result is a sound over-approximation for programs whose accesses
    all go through the analyzed context parameter -- exactly the
    discipline the instrumented runtime enforces anyway.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.report import READ, WRITE

Location = Hashable

#: Pattern kinds, in decreasing precision.
EXACT = "exact"
PREFIX = "prefix"
UNKNOWN = "unknown"

#: ctx methods that read / write / both.
_READ_METHODS = {"read"}
_WRITE_METHODS = {"write"}
_RMW_METHODS = {"add", "update"}
#: ctx methods whose first argument is a spawned task body.
_SPAWN_METHODS = {"spawn"}


@dataclass(frozen=True)
class AccessPattern:
    """One statically-derived access: precision level, location, type."""

    kind: str                 # EXACT | PREFIX | UNKNOWN
    location: Location        # exact location, or the prefix string
    access_type: str          # READ or WRITE

    def matches(self, location: Location) -> bool:
        """Does a concrete runtime location fall under this pattern?"""
        if self.kind == UNKNOWN:
            return True
        if self.kind == EXACT:
            return location == self.location
        return isinstance(location, tuple) and bool(location) and location[0] == self.location

    def describe(self) -> str:
        letter = "W" if self.access_type == WRITE else "R"
        if self.kind == EXACT:
            return f"{letter}({self.location!r})"
        if self.kind == PREFIX:
            return f"{letter}(({self.location!r}, *))"
        return f"{letter}(?)"


class StaticAccessSet:
    """The over-approximated access set of a program."""

    def __init__(self) -> None:
        self.patterns: Set[AccessPattern] = set()
        #: Names of spawned bodies the analysis could not resolve.
        self.unresolved_tasks: List[str] = []

    # -- population ------------------------------------------------------

    def add(self, kind: str, location: Location, access_type: str) -> None:
        self.patterns.add(AccessPattern(kind, location, access_type))

    def merge(self, other: "StaticAccessSet") -> None:
        self.patterns |= other.patterns
        self.unresolved_tasks += other.unresolved_tasks

    # -- queries ----------------------------------------------------------

    @property
    def is_precise(self) -> bool:
        """True when every pattern is exact and every task was resolved."""
        return not self.unresolved_tasks and all(
            p.kind == EXACT for p in self.patterns
        )

    def exact_locations(self, access_type: Optional[str] = None) -> Set[Location]:
        """Exact locations (optionally of one access type)."""
        return {
            p.location
            for p in self.patterns
            if p.kind == EXACT
            and (access_type is None or p.access_type == access_type)
        }

    def may_access(self, location: Location, access_type: str) -> bool:
        """Could the program access *location* with *access_type*?"""
        return any(
            p.access_type == access_type and p.matches(location)
            for p in self.patterns
        )

    def describe(self) -> str:
        lines = [f"{len(self.patterns)} static access pattern(s):"]
        lines += sorted(p.describe() for p in self.patterns)
        if self.unresolved_tasks:
            lines.append(f"unresolved task bodies: {self.unresolved_tasks}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.patterns)


# ---------------------------------------------------------------------------
# Spec front end (exact)
# ---------------------------------------------------------------------------


def analyze_spec(spec: Tuple[Any, ...]) -> StaticAccessSet:
    """Exact access set of a generator spec tree."""
    result = StaticAccessSet()

    def visit(items: Sequence[Tuple[Any, ...]]) -> None:
        for item in items:
            tag = item[0]
            if tag == "access":
                _, location, access_type = item
                result.add(EXACT, location, access_type)
            elif tag == "locked":
                visit(item[2])
            elif tag in ("spawn", "finish"):
                visit(item[1])
            elif tag == "sync":
                continue
            else:
                raise ValueError(f"unknown spec item {tag!r}")

    if spec and spec[0] == "task":
        visit(spec[1])
    else:
        visit(spec)  # bare item list
    return result


# ---------------------------------------------------------------------------
# AST front end (best effort)
# ---------------------------------------------------------------------------


def _literal(node: ast.expr) -> Tuple[bool, Any]:
    """(is_constant, value) for a location expression."""
    try:
        return True, ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return False, None


def _call_argument(
    node: ast.Call, index: int, keyword: Optional[str]
) -> Optional[ast.expr]:
    """Positional *index* of a call, falling back to keyword *keyword*.

    The runtime API accepts its arguments by keyword too
    (``ctx.write(location="x", value=1)``, ``ctx.spawn(body=f)``), so the
    analysis must look at ``node.keywords`` as well as ``node.args``.
    """
    if len(node.args) > index:
        return node.args[index]
    if keyword is not None:
        for entry in node.keywords:
            if entry.arg == keyword:
                return entry.value
    return None


def _location_pattern(node: ast.expr) -> Tuple[str, Any]:
    """Abstract a location expression to (kind, value)."""
    constant, value = _literal(node)
    if constant:
        return EXACT, value
    if isinstance(node, ast.Tuple) and node.elts:
        head_constant, head = _literal(node.elts[0])
        if head_constant:
            return PREFIX, head
    return UNKNOWN, None


class _BodyAnalyzer(ast.NodeVisitor):
    """Collects accesses and spawned bodies from one function's AST."""

    def __init__(self, ctx_names: Set[str], result: StaticAccessSet) -> None:
        self.ctx_names = set(ctx_names)
        self.result = result
        #: function names passed to spawn/parallel templates
        self.spawned_names: List[str] = []
        #: nested function definitions by name (for local resolution)
        self.local_functions: Dict[str, ast.AST] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.local_functions[node.name] = node
        # Nested defs are analyzed only when spawned/invoked (their first
        # parameter is then treated as a context).
        # Still walk them for *direct* uses of the outer ctx (closures).
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Lambdas used as bodies: first parameter is a context.
        if node.args.args:
            inner_ctx = node.args.args[0].arg
            self.ctx_names.add(inner_ctx)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            method = func.attr
            if owner in self.ctx_names:
                self._handle_ctx_call(method, node)
        elif isinstance(func, ast.Name) and func.id in (
            "parallel_for",
            "parallel_reduce",
            "parallel_invoke",
            "parallel_pipeline",
        ):
            self._handle_template_call(func.id, node)
        self.generic_visit(node)

    def _handle_ctx_call(self, method: str, node: ast.Call) -> None:
        if method in _READ_METHODS | _WRITE_METHODS | _RMW_METHODS:
            location = _call_argument(node, 0, "location")
            if location is None:
                return
            kind, value = _location_pattern(location)
            if method not in _WRITE_METHODS:
                self.result.add(kind, value, READ)
            if method not in _READ_METHODS:
                self.result.add(kind, value, WRITE)
        elif method in _SPAWN_METHODS:
            target = _call_argument(node, 0, "body")
            if target is None:
                return
            if isinstance(target, ast.Name):
                self.spawned_names.append(target.id)
            elif isinstance(target, ast.Lambda):
                self.visit_Lambda(target)
            else:
                self.result.unresolved_tasks.append(ast.dump(target)[:40])

    def _handle_template_call(self, name: str, node: ast.Call) -> None:
        # The body argument position per template: for/reduce take it as
        # the 4th positional (ctx, start, stop, body) or the ``body`` /
        # ``map_body`` keyword, invoke takes every positional after ctx,
        # pipeline takes a list of stages (3rd positional or ``stages``).
        candidates: List[ast.expr] = []
        if name in ("parallel_for", "parallel_reduce"):
            keyword = "body" if name == "parallel_for" else "map_body"
            body = _call_argument(node, 3, keyword)
            if body is not None:
                candidates.append(body)
        elif name == "parallel_invoke":
            candidates.extend(node.args[1:])
        elif name == "parallel_pipeline":
            stages = _call_argument(node, 2, "stages")
            if isinstance(stages, (ast.List, ast.Tuple)):
                candidates.extend(stages.elts)
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                self.spawned_names.append(candidate.id)
            elif isinstance(candidate, ast.Lambda):
                self.visit_Lambda(candidate)
            else:
                self.result.unresolved_tasks.append(ast.dump(candidate)[:40])


def _function_ast(func: Callable[..., Any]) -> Optional[ast.AST]:
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError):
        return None
    tree = ast.parse(source)
    return tree.body[0] if tree.body else None


def analyze_function(
    func: Callable[..., Any],
    _visited: Optional[Set[str]] = None,
) -> StaticAccessSet:
    """Best-effort access set of a task body and its spawned children.

    Children are resolved through the defining module's globals and
    through nested ``def``s; anything else (bound methods, dynamically
    chosen bodies) is recorded in ``unresolved_tasks``, which voids the
    precision claim but keeps the result a useful lower bound plus a
    warning.
    """
    result = StaticAccessSet()
    visited = _visited if _visited is not None else set()
    marker = f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"
    if marker in visited:
        return result
    visited.add(marker)

    node = _function_ast(func)
    if node is None:
        result.unresolved_tasks.append(marker)
        return result
    args = getattr(node, "args", None)
    if args is None or not args.args:
        result.unresolved_tasks.append(marker)
        return result
    ctx_name = args.args[0].arg
    analyzer = _BodyAnalyzer({ctx_name}, result)
    analyzer.visit(node)
    # The visitor registers the root def itself, so a self-spawn resolves
    # locally; the node marker below keeps that from recursing forever.
    visited.add(f"<local:{id(node)}>")

    module_globals = getattr(func, "__globals__", {})
    _resolve_spawned(analyzer, module_globals, result, visited)
    return result


def _resolve_spawned(
    analyzer: _BodyAnalyzer,
    env_globals: Dict[str, Any],
    result: StaticAccessSet,
    visited: Set[str],
) -> None:
    """Fold every spawned body into *result*: nested ``def``s recurse to
    any depth (grandchildren included), everything else resolves through
    the defining module's globals."""
    for name in analyzer.spawned_names:
        local_node = analyzer.local_functions.get(name)
        if local_node is not None:
            _analyze_local_def(local_node, env_globals, result, visited)
            continue
        target = env_globals.get(name)
        if callable(target):
            result.merge(analyze_function(target, visited))
        else:
            result.unresolved_tasks.append(name)


def _analyze_local_def(
    node: ast.AST,
    env_globals: Dict[str, Any],
    result: StaticAccessSet,
    visited: Set[str],
) -> None:
    """Analyze one nested ``def`` spawned as a task body."""
    marker = f"<local:{id(node)}>"
    if marker in visited:
        return
    visited.add(marker)
    args = getattr(node, "args", None)
    if args is None or not args.args:
        result.unresolved_tasks.append(getattr(node, "name", "<nested>"))
        return
    child_result = StaticAccessSet()
    child_analyzer = _BodyAnalyzer({args.args[0].arg}, child_result)
    child_analyzer.visit(node)
    result.merge(child_result)
    _resolve_spawned(child_analyzer, env_globals, result, visited)
