"""Trace-coverage validation of the completeness precondition.

The checker is complete for a given input only when the observed trace
contains every shared access any schedule could perform.  Given a
:class:`~repro.static.accesses.StaticAccessSet` (the over-approximation)
and a recorded :class:`~repro.trace.trace.Trace` (what actually ran), this
module classifies each static pattern:

* **covered** -- some trace access matches the pattern with the right
  access type;
* **missing** -- an exact pattern with no matching trace access: the run
  took a branch that skipped it, so a different schedule might perform it
  and the single-trace guarantee is void for its location;
* **imprecise** -- prefix/unknown patterns can only be checked weakly
  (some access with a matching prefix); they are reported separately so
  the user knows the analysis could not prove full coverage.

Conversely, a trace access matching *no* static pattern indicates the
static front end under-approximated (it should be impossible for the
exact spec front end, and signals unresolved task bodies for the AST
front end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Set, Tuple

from repro.report import WRITE
from repro.static.accesses import EXACT, AccessPattern, StaticAccessSet
from repro.trace.trace import Trace

Location = Hashable

#: Scratch-location prefixes minted by the runtime's algorithm templates
#: (:mod:`repro.runtime.algorithms`).  They are deterministic plumbing of
#: the templates themselves, not program state, so coverage checking
#: ignores them.
RESERVED_PREFIXES = ("__reduce__", "__pipe__")


def _is_reserved(location: Location) -> bool:
    return (
        isinstance(location, tuple)
        and bool(location)
        and location[0] in RESERVED_PREFIXES
    )


@dataclass
class CoverageReport:
    """Outcome of checking a trace against a static access set."""

    covered: List[AccessPattern] = field(default_factory=list)
    missing: List[AccessPattern] = field(default_factory=list)
    imprecise: List[AccessPattern] = field(default_factory=list)
    #: (location, access_type) pairs observed but not statically predicted.
    unpredicted: List[Tuple[Location, str]] = field(default_factory=list)
    unresolved_tasks: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Does the single-trace completeness guarantee stand?

        Requires every exact pattern covered, no unpredicted accesses, no
        unresolved tasks, and no imprecise patterns (which we cannot
        prove covered).
        """
        return not (
            self.missing
            or self.unpredicted
            or self.unresolved_tasks
            or self.imprecise
        )

    @property
    def suspect_locations(self) -> Set[Location]:
        """Locations whose verdicts should be treated as incomplete."""
        locations: Set[Location] = set()
        for pattern in self.missing:
            if pattern.kind == EXACT:
                locations.add(pattern.location)
        return locations

    def describe(self) -> str:
        lines = [
            f"coverage: {len(self.covered)} covered, {len(self.missing)} missing, "
            f"{len(self.imprecise)} imprecise, {len(self.unpredicted)} unpredicted"
        ]
        for pattern in self.missing:
            lines.append(f"  MISSING   {pattern.describe()}")
        for pattern in self.imprecise:
            lines.append(f"  IMPRECISE {pattern.describe()}")
        for location, access_type in self.unpredicted:
            letter = "W" if access_type == WRITE else "R"
            lines.append(f"  UNPREDICTED {letter}({location!r})")
        if self.unresolved_tasks:
            lines.append(f"  UNRESOLVED TASKS: {self.unresolved_tasks}")
        verdict = "guarantee STANDS" if self.complete else "guarantee VOID"
        lines.append(f"single-trace completeness {verdict}")
        return "\n".join(lines)


def check_trace_coverage(
    static: StaticAccessSet, trace: Trace
) -> CoverageReport:
    """Classify *static*'s patterns against the accesses in *trace*."""
    report = CoverageReport(unresolved_tasks=list(static.unresolved_tasks))
    observed: Set[Tuple[Location, str]] = {
        (event.location, event.access_type)
        for event in trace.memory_events()
        if not _is_reserved(event.location)
    }
    for pattern in sorted(
        static.patterns, key=lambda p: (p.kind, str(p.location), p.access_type)
    ):
        if pattern.kind == EXACT:
            if (pattern.location, pattern.access_type) in observed:
                report.covered.append(pattern)
            else:
                report.missing.append(pattern)
        else:
            # Weak check only: some observed access matches the pattern.
            if any(
                pattern.matches(location) and access_type == pattern.access_type
                for location, access_type in observed
            ):
                report.imprecise.append(pattern)
            else:
                report.missing.append(pattern)
    for location, access_type in sorted(observed, key=str):
        if not static.may_access(location, access_type):
            report.unpredicted.append((location, access_type))
    return report
