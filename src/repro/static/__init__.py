"""Static access-set over-approximation (the paper's future work).

The optimized checker is complete *"provided the execution trace observed
by the dynamic analysis contains all shared memory operations that can
possibly occur in other interleavings for a given input"* (Section 3.1),
and the conclusion proposes: *"Static analysis can likely be used to
create an over-approximation of such a set of accesses, which we plan to
explore in the future."*

This package explores it:

* :mod:`repro.static.accesses` -- computes an over-approximation of the
  shared accesses a program can perform, either **exactly** from a
  generator spec tree (the :mod:`repro.trace.generator` format) or
  **best-effort** from the Python AST of task bodies (constant locations
  are resolved; computed locations degrade to prefix or unknown
  patterns);
* :mod:`repro.static.coverage` -- validates the completeness
  precondition: every statically-possible access must appear (in some
  order) in the observed trace.  A clean coverage report means the
  checker's "all schedules for this input" guarantee stands; missing
  accesses pinpoint input-dependent branches the observed execution did
  not take;
* :mod:`repro.static.structure` / :mod:`repro.static.mhp` /
  :mod:`repro.static.locksets` -- the static series-parallel skeleton,
  may-happen-in-parallel via the DPST LCA rule applied to it, and
  versioned static locksets (Section 3.3 replayed over lexical scopes);
* :mod:`repro.static.lint` / :mod:`repro.static.diagnostics` -- the
  ``repro lint`` pass: candidate unserializable triples per Figure 4
  found without running the program, structural ``SAVnnn`` diagnostics,
  and per-location schedule-serial proofs that feed the sharded
  checker's ``--static-prefilter``;
* :mod:`repro.static.callgraph` / :mod:`repro.static.summaries` -- the
  interprocedural layer: the call graph reachable from a task body
  (name/attribute resolution through closures and module globals, SCC
  condensation) and bottom-up per-function effect summaries with a
  fixpoint inside SCCs, so helpers and bounded recursion analyze
  exactly;
* :mod:`repro.static.sarif` / :mod:`repro.static.baseline` -- the CI
  frontend: SARIF 2.1.0 export and known-findings baselines for
  fail-only-on-new gating.
"""

from repro.static.accesses import (
    AccessPattern,
    StaticAccessSet,
    analyze_function,
    analyze_spec,
)
from repro.static.baseline import (
    BASELINE_SCHEMA,
    BaselineError,
    compare_to_baseline,
    update_baseline,
)
from repro.static.callgraph import (
    CallGraph,
    CallGraphStats,
    FunctionInfo,
    build_callgraph,
)
from repro.static.coverage import CoverageReport, check_trace_coverage
from repro.static.diagnostics import RULES, Diagnostic
from repro.static.lint import (
    LintReport,
    StaticCandidate,
    lint_function,
    lint_program,
    lint_skeleton,
    lint_spec,
)
from repro.static.mhp import MHPIndex
from repro.static.sarif import report_to_sarif, reports_to_sarif
from repro.static.structure import (
    StaticSkeleton,
    skeleton_from_function,
    skeleton_from_spec,
)
from repro.static.summaries import FunctionSummary, compute_summaries

__all__ = [
    "AccessPattern",
    "StaticAccessSet",
    "analyze_function",
    "analyze_spec",
    "BASELINE_SCHEMA",
    "BaselineError",
    "compare_to_baseline",
    "update_baseline",
    "CallGraph",
    "CallGraphStats",
    "FunctionInfo",
    "build_callgraph",
    "FunctionSummary",
    "compute_summaries",
    "CoverageReport",
    "check_trace_coverage",
    "Diagnostic",
    "RULES",
    "LintReport",
    "StaticCandidate",
    "lint_function",
    "lint_program",
    "lint_skeleton",
    "lint_spec",
    "MHPIndex",
    "report_to_sarif",
    "reports_to_sarif",
    "StaticSkeleton",
    "skeleton_from_function",
    "skeleton_from_spec",
]
