"""Static access-set over-approximation (the paper's future work).

The optimized checker is complete *"provided the execution trace observed
by the dynamic analysis contains all shared memory operations that can
possibly occur in other interleavings for a given input"* (Section 3.1),
and the conclusion proposes: *"Static analysis can likely be used to
create an over-approximation of such a set of accesses, which we plan to
explore in the future."*

This package explores it:

* :mod:`repro.static.accesses` -- computes an over-approximation of the
  shared accesses a program can perform, either **exactly** from a
  generator spec tree (the :mod:`repro.trace.generator` format) or
  **best-effort** from the Python AST of task bodies (constant locations
  are resolved; computed locations degrade to prefix or unknown
  patterns);
* :mod:`repro.static.coverage` -- validates the completeness
  precondition: every statically-possible access must appear (in some
  order) in the observed trace.  A clean coverage report means the
  checker's "all schedules for this input" guarantee stands; missing
  accesses pinpoint input-dependent branches the observed execution did
  not take.
"""

from repro.static.accesses import (
    AccessPattern,
    StaticAccessSet,
    analyze_function,
    analyze_spec,
)
from repro.static.coverage import CoverageReport, check_trace_coverage

__all__ = [
    "AccessPattern",
    "StaticAccessSet",
    "analyze_function",
    "analyze_spec",
    "CoverageReport",
    "check_trace_coverage",
]
