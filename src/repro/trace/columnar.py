"""v3 columnar trace format: struct-packed parallel arrays per event field.

The streaming JSONL format (v2) made traces larger than RAM checkable,
but left the sharded pipeline decode-bound: every worker pays a JSON
parse per line it keeps, and a regex scan per line it drops.  The v3
format stores events as *columns* instead of rows, so readers slice the
fields they need with bulk :mod:`struct` unpacks and route whole frames
without touching JSON at all.

On-disk layout::

    MAGIC                     8-byte format signature (sniffable prefix)
    header block              u32 length + JSON {"format", "version", "dpst"}
    frame*                    u8 flags | u32 n_events | u32 payload_len | payload
    footer block              u32 length + JSON (interned tables, frame index)
    trailer                   u64 footer offset + 8-byte tail magic

Each frame's payload holds up to ``frame_events`` events as parallel
arrays, concatenated column-by-column:

========  ======  =====================================================
column    type    content
========  ======  =====================================================
``type``  u8      event-type tag (:data:`EVENT_TAGS` order)
``seq``   i64     global observation order
``f0-f4`` i32     type-specific fields (task/step ids, table indexes)
========  ======  =====================================================

Variable-width values never appear in the columns: locations, lock
names, and locksets are interned once into footer tables and referenced
by index.  The footer also carries each interned location's
:func:`~repro.trace.serialize.location_shard_key`, so a shard worker
filters a frame by comparing small ints -- no location decode, no JSON,
no regex.  The DPST lives in the *header* (as in v2) because every
checker needs the complete tree before the first event replays.

Frames are optionally zlib-compressed (``compress=True``, the default);
the flag travels per frame, so mixed files are legal.

Writers follow the crash-safe discipline of the shard checkpoint store:
the header is built *before* any file is opened, all bytes go to a
temporary sibling, and :meth:`ColumnarTraceWriter.close` publishes the
finished file with :func:`os.replace` -- an interrupted write never
leaves a half-trace at the target path.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dpst.base import DPSTBase
from repro.errors import TraceError
from repro.report import READ, WRITE
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.trace.serialize import (
    JSONL_FORMAT,
    decode_location,
    dpst_from_dict,
    dpst_to_dict,
    encode_location,
    location_shard_key,
)
from repro.trace.trace import Trace

#: Byte prefix of every v3 file.  Sniffing is a fixed-bytes comparison --
#: deliberately *not* derived from any JSON rendering, so the v2 sniffing
#: trap (exact-separator dependence) cannot be rebuilt here.
COLUMNAR_MAGIC = b"RPTRC3\x00\n"

#: Tail signature closing the trailer; its absence means a torn write.
_TAIL_MAGIC = b"RPT3TAIL"

COLUMNAR_VERSION = 3

#: Events per frame; bounds writer and reader memory to O(frame).
DEFAULT_FRAME_EVENTS = 4096

#: Event classes in tag order; a tag is an index into this tuple.
EVENT_TAGS: Tuple[type, ...] = (
    TaskSpawnEvent,
    TaskBeginEvent,
    TaskEndEvent,
    SyncEvent,
    MemoryEvent,
    AcquireEvent,
    ReleaseEvent,
)
_TAG_OF = {cls: tag for tag, cls in enumerate(EVENT_TAGS)}
_MEMORY_TAG = _TAG_OF[MemoryEvent]

_BLOCK_LEN = struct.Struct("<I")
_FRAME_HEADER = struct.Struct("<BII")  # flags, n_events, payload_len
_TRAILER_OFFSET = struct.Struct("<Q")
_TRAILER_SIZE = _TRAILER_OFFSET.size + len(_TAIL_MAGIC)
_FLAG_COMPRESSED = 0x01

#: Per-event payload bytes: 1 (type) + 8 (seq) + 5 * 4 (f0..f4).
_ROW_BYTES = 1 + 8 + 5 * 4


def is_columnar_trace(path: str) -> bool:
    """Does *path* start with the v3 magic prefix?"""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(COLUMNAR_MAGIC)) == COLUMNAR_MAGIC
    except OSError:
        return False


def _dump_block(payload: Dict[str, Any]) -> bytes:
    raw = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _BLOCK_LEN.pack(len(raw)) + raw


def _read_block(handle, path: str, what: str) -> Dict[str, Any]:
    """Read one length-prefixed JSON block, wrapping failures in
    :class:`TraceError` (the path always lands in the message)."""
    head = handle.read(_BLOCK_LEN.size)
    if len(head) != _BLOCK_LEN.size:
        raise TraceError(f"truncated columnar trace {path!r}: no {what} block")
    (length,) = _BLOCK_LEN.unpack(head)
    raw = handle.read(length)
    if len(raw) != length:
        raise TraceError(
            f"truncated columnar trace {path!r}: {what} block cut short"
        )
    try:
        data = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceError(
            f"cannot parse {what} of columnar trace {path!r}: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise TraceError(
            f"malformed {what} of columnar trace {path!r}: "
            f"expected an object, got {type(data).__name__}"
        )
    return data


class ColumnarTraceWriter:
    """Streaming columnar (v3) trace writer.

    Mirrors :class:`~repro.trace.serialize.TraceWriter`: supply the DPST
    up front, append events one at a time (buffered into frames of
    ``frame_events``), and ``close()`` -- or use as a context manager,
    which *discards* the temporary file if the body raised, so failed
    recordings never publish a truncated trace.
    """

    def __init__(
        self,
        path: str,
        dpst: Optional[DPSTBase] = None,
        frame_events: int = DEFAULT_FRAME_EVENTS,
        compress: bool = True,
    ) -> None:
        if frame_events < 1:
            raise TraceError(
                f"frame_events must be positive, got {frame_events}"
            )
        self.path = os.fspath(path)
        self.frame_events = frame_events
        self.compress = bool(compress)
        #: Number of events written so far.
        self.count = 0
        # Header bytes are built *before* any file is opened: a DPST that
        # fails to flatten raises here with nothing on disk.
        header = _dump_block(
            {
                "format": JSONL_FORMAT,
                "version": COLUMNAR_VERSION,
                "dpst": None if dpst is None else dpst_to_dict(dpst),
            }
        )
        # Interned tables.  Locations key on repr (== 1 / 1.0 / True hash
        # alike but must intern separately; repr is injective over the
        # serializable location vocabulary and matches location_shard_key).
        self._location_ids: Dict[str, int] = {}
        self._location_values: List[Any] = []
        self._lock_ids: Dict[str, int] = {}
        self._lock_names: List[str] = []
        self._lockset_ids: Dict[Tuple[str, ...], int] = {}
        self._lockset_rows: List[List[int]] = []
        # Current frame buffers (parallel arrays).
        self._types = bytearray()
        self._seqs: List[int] = []
        self._cols: List[List[int]] = [[], [], [], [], []]
        self._frames: List[List[int]] = []  # [offset, n_events]
        self._tmp_path: Optional[str] = f"{self.path}.tmp.{os.getpid()}"
        self._handle = open(self._tmp_path, "wb")
        self._handle.write(COLUMNAR_MAGIC)
        self._handle.write(header)

    # -- interning ---------------------------------------------------------

    def _location_id(self, location: Any) -> int:
        key = repr(location)
        ident = self._location_ids.get(key)
        if ident is None:
            encode_location(location)  # reject unserializable values now
            ident = len(self._location_values)
            self._location_ids[key] = ident
            self._location_values.append(location)
        return ident

    def _lock_id(self, name: str) -> int:
        ident = self._lock_ids.get(name)
        if ident is None:
            ident = len(self._lock_names)
            self._lock_ids[name] = ident
            self._lock_names.append(name)
        return ident

    def _lockset_id(self, lockset: Tuple[str, ...]) -> int:
        key = tuple(lockset)
        ident = self._lockset_ids.get(key)
        if ident is None:
            ident = len(self._lockset_rows)
            self._lockset_ids[key] = ident
            self._lockset_rows.append([self._lock_id(name) for name in key])
        return ident

    # -- writing -----------------------------------------------------------

    def write(self, event: object) -> None:
        """Append one event."""
        if self._handle is None:
            raise TraceError(f"ColumnarTraceWriter for {self.path!r} is closed")
        tag = _TAG_OF.get(type(event))
        if tag is None:
            raise TraceError(f"unknown event type {type(event).__name__!r}")
        f = [0, 0, 0, 0, 0]
        if tag == _MEMORY_TAG:
            f[0] = event.task
            f[1] = event.step
            f[2] = self._location_id(event.location)
            f[3] = 1 if event.access_type == WRITE else 0
            f[4] = self._lockset_id(event.lockset)
        elif isinstance(event, TaskSpawnEvent):
            f[0], f[1], f[2] = event.parent, event.child, event.async_node
        elif isinstance(event, (TaskBeginEvent, TaskEndEvent)):
            f[0] = event.task
        elif isinstance(event, SyncEvent):
            f[0], f[1] = event.task, event.finish_node
        else:  # Acquire / Release
            f[0], f[1] = event.task, event.step
            f[2] = self._lock_id(event.name)
            f[3] = self._lock_id(event.versioned_name)
        self._types.append(tag)
        self._seqs.append(event.seq)
        for column, value in zip(self._cols, f):
            column.append(value)
        self.count += 1
        if len(self._seqs) >= self.frame_events:
            self._flush_frame()

    def write_all(self, events: Iterable[object]) -> None:
        """Append every event of *events* (any iterable)."""
        for event in events:
            self.write(event)

    def _flush_frame(self) -> None:
        n = len(self._seqs)
        if not n:
            return
        parts = [bytes(self._types), struct.pack(f"<{n}q", *self._seqs)]
        parts.extend(
            struct.pack(f"<{n}i", *column) for column in self._cols
        )
        payload = b"".join(parts)
        flags = 0
        if self.compress:
            packed = zlib.compress(payload)
            if len(packed) < len(payload):
                payload = packed
                flags |= _FLAG_COMPRESSED
        self._frames.append([self._handle.tell(), n])
        self._handle.write(_FRAME_HEADER.pack(flags, n, len(payload)))
        self._handle.write(payload)
        self._types = bytearray()
        self._seqs = []
        self._cols = [[], [], [], [], []]

    def close(self) -> None:
        """Flush, write footer + trailer, and publish the file (idempotent).

        Publication is atomic: the bytes move from the temporary sibling
        to :attr:`path` with :func:`os.replace`, so readers only ever see
        a complete trace or no trace at all.
        """
        if self._handle is None:
            return
        self._flush_frame()
        footer_offset = self._handle.tell()
        self._handle.write(
            _dump_block(
                {
                    "locations": [
                        encode_location(loc) for loc in self._location_values
                    ],
                    "location_sk": [
                        location_shard_key(loc)
                        for loc in self._location_values
                    ],
                    "locks": self._lock_names,
                    "locksets": self._lockset_rows,
                    "frames": self._frames,
                    "events": self.count,
                }
            )
        )
        self._handle.write(_TRAILER_OFFSET.pack(footer_offset) + _TAIL_MAGIC)
        self._handle.close()
        self._handle = None
        os.replace(self._tmp_path, self.path)
        self._tmp_path = None

    def discard(self) -> None:
        """Abandon the write: close and delete the temporary file
        without touching :attr:`path` (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._tmp_path is not None:
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass
            self._tmp_path = None

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        if exc_type is not None:
            self.discard()
        else:
            self.close()


class ColumnarTraceReader:
    """Streaming reader over one v3 columnar trace file.

    Construction parses the header (DPST) and the footer (interned
    tables + frame index); :meth:`events` / :meth:`memory_events` then
    stream frames with a fresh tracked handle per pass, exactly like
    :class:`~repro.trace.serialize.TraceReader` -- which wraps this class
    for v3 files, so most callers never see it directly.

    Lenient mode (``strict=False``): a frame that fails to decode is
    skipped as a unit and its event count (known from the frame index)
    lands on :attr:`lines_skipped`; the header, footer, and trailer must
    always decode (the DPST and the tables live there).
    """

    def __init__(self, path: str, strict: bool = True) -> None:
        self.path = os.fspath(path)
        self.strict = bool(strict)
        #: Events lost to undecodable frames (lenient mode only).
        self.lines_skipped = 0
        self._closed = False
        self._live_handles: set = set()
        self.version = COLUMNAR_VERSION
        with open(self.path, "rb") as handle:
            if handle.read(len(COLUMNAR_MAGIC)) != COLUMNAR_MAGIC:
                raise TraceError(f"{self.path!r} is not a columnar trace")
            header = _read_block(handle, self.path, "header")
            if (
                header.get("format") != JSONL_FORMAT
                or header.get("version") != COLUMNAR_VERSION
            ):
                raise TraceError(
                    f"unsupported columnar trace header in {self.path!r}: "
                    f"{header!r}"
                )
            raw_dpst = header.get("dpst")
            self.dpst: Optional[DPSTBase] = (
                None if raw_dpst is None else dpst_from_dict(raw_dpst)
            )
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size < _TRAILER_SIZE:
                raise TraceError(
                    f"truncated columnar trace {self.path!r}: no trailer"
                )
            handle.seek(size - _TRAILER_SIZE)
            trailer = handle.read(_TRAILER_SIZE)
            if trailer[_TRAILER_OFFSET.size:] != _TAIL_MAGIC:
                raise TraceError(
                    f"truncated or corrupt columnar trace {self.path!r}: "
                    "trailer signature missing (interrupted write?)"
                )
            (footer_offset,) = _TRAILER_OFFSET.unpack(
                trailer[: _TRAILER_OFFSET.size]
            )
            if footer_offset >= size:
                raise TraceError(
                    f"corrupt columnar trace {self.path!r}: footer offset "
                    f"{footer_offset} beyond file size {size}"
                )
            handle.seek(footer_offset)
            footer = _read_block(handle, self.path, "footer")
        try:
            self._locations = [
                decode_location(row) for row in footer["locations"]
            ]
            self._location_sk = [int(sk) for sk in footer["location_sk"]]
            self._lock_table = [str(name) for name in footer["locks"]]
            self._locksets = [
                tuple(self._lock_table[index] for index in row)
                for row in footer["locksets"]
            ]
            self._frames = [
                (int(offset), int(n)) for offset, n in footer["frames"]
            ]
            self.count = int(footer["events"])
        except (KeyError, TypeError, ValueError, IndexError, TraceError) as exc:
            raise TraceError(
                f"malformed footer of columnar trace {self.path!r}: {exc}"
            ) from exc

    # -- lifecycle ---------------------------------------------------------

    def _open_stream(self):
        if self._closed:
            raise TraceError(
                f"ColumnarTraceReader for {self.path!r} is closed"
            )
        handle = open(self.path, "rb")
        self._live_handles.add(handle)
        return handle

    def _release(self, handle) -> None:
        self._live_handles.discard(handle)
        if not handle.closed:
            handle.close()

    def close(self) -> None:
        """Close every handle still open from streaming passes."""
        self._closed = True
        for handle in list(self._live_handles):
            self._release(handle)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ColumnarTraceReader":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- frame decode ------------------------------------------------------

    def _frame_payload(self, handle, offset: int, n: int) -> bytes:
        handle.seek(offset)
        head = handle.read(_FRAME_HEADER.size)
        if len(head) != _FRAME_HEADER.size:
            raise TraceError(
                f"truncated columnar trace {self.path!r}: frame at "
                f"offset {offset} cut short"
            )
        flags, n_events, payload_len = _FRAME_HEADER.unpack(head)
        payload = handle.read(payload_len)
        if len(payload) != payload_len or n_events != n:
            raise TraceError(
                f"corrupt frame at offset {offset} in {self.path!r}"
            )
        if flags & _FLAG_COMPRESSED:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise TraceError(
                    f"corrupt compressed frame at offset {offset} in "
                    f"{self.path!r}: {exc}"
                ) from exc
        if len(payload) != n * _ROW_BYTES:
            raise TraceError(
                f"corrupt frame at offset {offset} in {self.path!r}: "
                f"expected {n * _ROW_BYTES} column bytes, "
                f"got {len(payload)}"
            )
        return payload

    @staticmethod
    def _columns(payload: bytes, n: int):
        """Slice one frame payload into its parallel arrays."""
        types = payload[:n]
        seqs = struct.unpack_from(f"<{n}q", payload, n)
        base = n + 8 * n
        cols = [
            struct.unpack_from(f"<{n}i", payload, base + k * 4 * n)
            for k in range(5)
        ]
        return types, seqs, cols

    def _build_event(self, tag: int, seq: int, cols, index: int) -> object:
        f0 = cols[0][index]
        f1 = cols[1][index]
        f2 = cols[2][index]
        if tag == _MEMORY_TAG:
            return MemoryEvent(
                seq,
                f0,
                f1,
                self._locations[f2],
                WRITE if cols[3][index] else READ,
                self._locksets[cols[4][index]],
            )
        if tag == 0:
            return TaskSpawnEvent(seq, f0, f1, f2)
        if tag == 1:
            return TaskBeginEvent(seq, f0)
        if tag == 2:
            return TaskEndEvent(seq, f0)
        if tag == 3:
            return SyncEvent(seq, f0, f1)
        if tag == 5:
            return AcquireEvent(
                seq, f0, f1, self._lock_table[f2], self._lock_table[cols[3][index]]
            )
        if tag == 6:
            return ReleaseEvent(
                seq, f0, f1, self._lock_table[f2], self._lock_table[cols[3][index]]
            )
        raise TraceError(f"unknown event tag {tag} in {self.path!r}")

    # -- streaming views ---------------------------------------------------

    def events(self) -> Iterator[object]:
        """Yield every event in file order (a fresh pass per call)."""
        handle = self._open_stream()
        try:
            for offset, n in self._frames:
                try:
                    payload = self._frame_payload(handle, offset, n)
                    types, seqs, cols = self._columns(payload, n)
                except (TraceError, struct.error, OSError):
                    if self.strict:
                        raise
                    self.lines_skipped += n
                    continue
                for index in range(n):
                    try:
                        event = self._build_event(
                            types[index], seqs[index], cols, index
                        )
                    except (TraceError, IndexError):
                        if self.strict:
                            raise
                        self.lines_skipped += 1
                        continue
                    yield event
        finally:
            self._release(handle)

    def __iter__(self) -> Iterator[object]:
        return self.events()

    def memory_events(
        self, shard: Optional[int] = None, jobs: Optional[int] = None
    ) -> Iterator[MemoryEvent]:
        """Yield the memory accesses, optionally one shard's worth.

        The shard filter compares the footer's per-location shard keys
        against interned location *ids* straight out of the column, so a
        foreign-shard frame costs one bulk unpack and a few integer
        comparisons -- no location decode, no JSON, no event objects.
        """
        filtering = shard is not None and jobs is not None and jobs > 1
        sk = self._location_sk
        handle = self._open_stream()
        try:
            for offset, n in self._frames:
                try:
                    payload = self._frame_payload(handle, offset, n)
                except (TraceError, struct.error, OSError):
                    if self.strict:
                        raise
                    self.lines_skipped += n
                    continue
                types = payload[:n]
                if _MEMORY_TAG not in types:
                    continue
                base = n + 8 * n
                locs = struct.unpack_from(f"<{n}i", payload, base + 2 * 4 * n)
                try:
                    if filtering:
                        selected = [
                            i
                            for i in range(n)
                            if types[i] == _MEMORY_TAG
                            and sk[locs[i]] % jobs == shard
                        ]
                    else:
                        selected = [
                            i for i in range(n) if types[i] == _MEMORY_TAG
                        ]
                except IndexError:
                    if self.strict:
                        raise TraceError(
                            f"corrupt frame at offset {offset} in "
                            f"{self.path!r}: location id out of range"
                        )
                    self.lines_skipped += n
                    continue
                if not selected:
                    continue
                seqs = struct.unpack_from(f"<{n}q", payload, n)
                tasks = struct.unpack_from(f"<{n}i", payload, base)
                steps = struct.unpack_from(f"<{n}i", payload, base + 4 * n)
                writes = struct.unpack_from(
                    f"<{n}i", payload, base + 3 * 4 * n
                )
                sets = struct.unpack_from(f"<{n}i", payload, base + 4 * 4 * n)
                for i in selected:
                    try:
                        event = MemoryEvent(
                            seqs[i],
                            tasks[i],
                            steps[i],
                            self._locations[locs[i]],
                            WRITE if writes[i] else READ,
                            self._locksets[sets[i]],
                        )
                    except IndexError:
                        if self.strict:
                            raise TraceError(
                                f"corrupt frame at offset {offset} in "
                                f"{self.path!r}: table index out of range"
                            )
                        self.lines_skipped += 1
                        continue
                    yield event
        finally:
            self._release(handle)

    def read(self) -> Trace:
        """Materialize the full :class:`Trace` (events + DPST)."""
        return Trace(list(self.events()), dpst=self.dpst)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<ColumnarTraceReader {self.path!r} v{self.version}>"


def dump_trace_columnar(
    trace: Trace,
    path: str,
    frame_events: int = DEFAULT_FRAME_EVENTS,
    compress: bool = True,
) -> None:
    """Write *trace* to *path* in the columnar v3 format."""
    with ColumnarTraceWriter(
        path, dpst=trace.dpst, frame_events=frame_events, compress=compress
    ) as writer:
        writer.write_all(trace.events)
