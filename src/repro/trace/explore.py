"""Exhaustive interleaving exploration: the ground-truth oracle.

The paper's claim is that one observed trace suffices to detect every
atomicity violation that *any* schedule of the program (for that input)
can exhibit.  This module provides two independent oracles to validate
that claim on small programs:

:func:`explore_violation_locations`
    Enumerates every legal schedule of a recorded trace -- respecting the
    series-parallel constraints of the DPST, per-step program order, and
    lock mutual exclusion -- and scans each schedule for *realized*
    unserializable triples (an access physically interleaving between two
    same-step accesses with conflicts on both sides).  Exponential, but
    exact.

:func:`analytic_violation_locations`
    Decides realizability of each candidate triple directly from the
    structure: an interleaver ``q`` fits between same-step accesses
    ``p``/``r`` iff ``q``'s step is logically parallel and the base locks
    held continuously across ``p..r`` (the versioned intersection of their
    locksets) are disjoint from ``q``'s base locks.  Polynomial.

Property tests assert that the two oracles agree with each other and with
the checkers on randomly generated programs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.checker.annotations import AtomicAnnotations
from repro.dpst import relation
from repro.dpst.base import DPSTBase
from repro.errors import TraceError
from repro.runtime.events import AcquireEvent, MemoryEvent, ReleaseEvent
from repro.trace.trace import Trace

Location = Hashable


def _base_name(versioned: str) -> str:
    """Strip the version suffix: ``L#3`` -> ``L``."""
    return versioned.split("#", 1)[0]


def _base_names(lockset: Sequence[str]) -> FrozenSet[str]:
    return frozenset(_base_name(name) for name in lockset)


def _conflicts(a: MemoryEvent, b: MemoryEvent) -> bool:
    """Same metadata key is assumed; conflict = at least one write."""
    return a.is_write or b.is_write


class InterleavingExplorer:
    """Enumerates the legal schedules of one recorded execution.

    Scheduling model: each step node owns the ordered sequence of its
    events (memory accesses and lock operations).  A step may issue its
    next event when every step that *precedes* it in the series-parallel
    order has fully completed, and -- for an acquire -- when the base lock
    is free.  Parallel steps interleave at event granularity.

    Parameters
    ----------
    trace:
        A trace with its DPST attached.
    max_schedules:
        Abort enumeration beyond this many complete schedules (the
        ``truncated`` attribute records whether the bound was hit).
    """

    def __init__(
        self,
        trace: Trace,
        max_schedules: int = 10_000,
        max_expansions: Optional[int] = None,
    ) -> None:
        if trace.dpst is None:
            raise TraceError("exploration requires the trace's DPST")
        self.trace = trace
        self.dpst: DPSTBase = trace.dpst
        self.max_schedules = max_schedules
        #: DFS node budget: lock-heavy traces can branch far more than
        #: they produce distinct memory schedules, so the search itself
        #: must be bounded too.
        self.max_expansions = (
            max_expansions if max_expansions is not None else max_schedules * 100
        )
        self.truncated = False
        self._sequences = self._collect_sequences()
        self._steps = sorted(self._sequences)
        self._preds = self._collect_predecessors()

    # -- setup --------------------------------------------------------------

    def _collect_sequences(self) -> Dict[int, List[object]]:
        sequences: Dict[int, List[object]] = defaultdict(list)
        for event in self.trace.events:
            if isinstance(event, (MemoryEvent, AcquireEvent, ReleaseEvent)):
                sequences[event.step].append(event)
        return dict(sequences)

    def _collect_predecessors(self) -> Dict[int, List[int]]:
        steps = sorted(self._sequences)
        preds: Dict[int, List[int]] = {step: [] for step in steps}
        for a in steps:
            for b in steps:
                if a != b and relation.precedes(self.dpst, a, b):
                    preds[b].append(a)
        return preds

    # -- enumeration ------------------------------------------------------------

    def schedules(self) -> List[List[MemoryEvent]]:
        """Every legal complete schedule, as memory-event sequences.

        Distinct lock-operation interleavings that produce the same memory
        order appear once (deduplicated).
        """
        self.truncated = False
        sequences = self._sequences
        steps = self._steps
        preds = self._preds
        counts: Dict[int, int] = {step: 0 for step in steps}
        lock_holder: Dict[str, Optional[int]] = {}
        out: List[List[MemoryEvent]] = []
        seen: Set[Tuple[int, ...]] = set()
        current: List[MemoryEvent] = []
        expansions = [0]

        def step_done(step: int) -> bool:
            return counts[step] >= len(sequences[step])

        def enabled(step: int) -> bool:
            if step_done(step):
                return False
            for pred in preds[step]:
                if not step_done(pred):
                    return False
            event = sequences[step][counts[step]]
            if isinstance(event, AcquireEvent):
                return lock_holder.get(event.name) is None
            return True

        def dfs() -> None:
            if self.truncated:
                return
            expansions[0] += 1
            if expansions[0] > self.max_expansions:
                self.truncated = True
                return
            candidates = [step for step in steps if enabled(step)]
            # Eager-release pruning: performing an enabled release first
            # never removes reachable memory orders (a release only
            # *enables* other steps), so branching on it is pure waste.
            for step in candidates:
                if isinstance(sequences[step][counts[step]], ReleaseEvent):
                    candidates = [step]
                    break
            if not candidates:
                if all(step_done(step) for step in steps):
                    key = tuple(event.seq for event in current)
                    if key not in seen:
                        seen.add(key)
                        out.append(list(current))
                        if len(out) >= self.max_schedules:
                            self.truncated = True
                return
            for step in candidates:
                event = sequences[step][counts[step]]
                counts[step] += 1
                pushed = False
                if isinstance(event, AcquireEvent):
                    lock_holder[event.name] = event.task
                elif isinstance(event, ReleaseEvent):
                    lock_holder[event.name] = None
                else:
                    current.append(event)
                    pushed = True
                dfs()
                counts[step] -= 1
                if isinstance(event, AcquireEvent):
                    lock_holder[event.name] = None
                elif isinstance(event, ReleaseEvent):
                    lock_holder[event.name] = event.task
                if pushed:
                    current.pop()

        dfs()
        return out

    # -- verdicts -----------------------------------------------------------------

    def violation_locations(
        self, annotations: Optional[AtomicAnnotations] = None
    ) -> Set[Location]:
        """Metadata keys exhibiting a violation in at least one schedule."""
        annotations = annotations or AtomicAnnotations()
        found: Set[Location] = set()
        for schedule in self.schedules():
            found |= realized_violation_keys(schedule, annotations)
        return found


def realized_violation_keys(
    schedule: Sequence[MemoryEvent],
    annotations: Optional[AtomicAnnotations] = None,
) -> Set[Location]:
    """Keys with a *realized* unserializable triple in this concrete schedule.

    A triple is realized when an access ``q`` by a different step sits
    between two accesses ``p``/``r`` of one step on the same key, with
    conflicts ``(p,q)`` and ``(q,r)``.
    """
    annotations = annotations or AtomicAnnotations()
    per_key: Dict[Location, List[MemoryEvent]] = defaultdict(list)
    for event in schedule:
        if annotations.is_checked(event.location):
            per_key[annotations.metadata_key(event.location)].append(event)
    found: Set[Location] = set()
    for key, events in per_key.items():
        size = len(events)
        for i in range(size):
            p = events[i]
            for l in range(i + 1, size):
                r = events[l]
                if r.step != p.step:
                    continue
                for m in range(i + 1, l):
                    q = events[m]
                    if q.step == p.step:
                        continue
                    if _conflicts(p, q) and _conflicts(q, r):
                        found.add(key)
                        break
                else:
                    continue
                break
            if key in found:
                break
    return found


def analytic_violation_locations(
    trace: Trace,
    annotations: Optional[AtomicAnnotations] = None,
) -> Set[Location]:
    """Keys with a triple realizable in *some* schedule, decided structurally.

    For every same-step pair ``(p, r)`` (program order) and every access
    ``q`` by a logically parallel step on the same key, the triple is
    realizable iff ``(p,q)`` and ``(q,r)`` conflict and the base locks held
    continuously across ``p..r`` -- the versioned lockset intersection --
    are disjoint from ``q``'s base locks (mutual exclusion is the only
    thing that can keep ``q`` out of the window).
    """
    if trace.dpst is None:
        raise TraceError("analytic oracle requires the trace's DPST")
    annotations = annotations or AtomicAnnotations()
    dpst = trace.dpst
    per_key: Dict[Location, List[MemoryEvent]] = defaultdict(list)
    for event in trace.memory_events():
        if annotations.is_checked(event.location):
            per_key[annotations.metadata_key(event.location)].append(event)
    found: Set[Location] = set()
    parallel_cache: Dict[Tuple[int, int], bool] = {}

    def parallel(a: int, b: int) -> bool:
        key = (a, b) if a < b else (b, a)
        verdict = parallel_cache.get(key)
        if verdict is None:
            verdict = relation.parallel(dpst, key[0], key[1])
            parallel_cache[key] = verdict
        return verdict

    for key, events in per_key.items():
        by_step: Dict[int, List[MemoryEvent]] = defaultdict(list)
        for event in events:
            by_step[event.step].append(event)
        for step, own in by_step.items():
            if len(own) < 2 or key in found:
                continue
            for i in range(len(own)):
                for l in range(i + 1, len(own)):
                    p, r = own[i], own[l]
                    held_throughout = _base_names(
                        frozenset(p.lockset) & frozenset(r.lockset)
                    )
                    for other_step, other_events in by_step.items():
                        if other_step == step or not parallel(step, other_step):
                            continue
                        for q in other_events:
                            if not (_conflicts(p, q) and _conflicts(q, r)):
                                continue
                            if held_throughout & _base_names(q.lockset):
                                continue
                            found.add(key)
                            break
                        if key in found:
                            break
                    if key in found:
                        break
                if key in found:
                    break
    return found


def explore_violation_locations(
    trace: Trace,
    annotations: Optional[AtomicAnnotations] = None,
    max_schedules: int = 10_000,
) -> Set[Location]:
    """Convenience wrapper over :class:`InterleavingExplorer`."""
    explorer = InterleavingExplorer(trace, max_schedules=max_schedules)
    return explorer.violation_locations(annotations)
