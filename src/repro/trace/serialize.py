"""Trace (de)serialization: save an execution, replay it anywhere.

The paper's artifact workflows (and ours) need executions to be portable:
record once, then replay through different checkers, permute orders, or
archive as regression goldens.  This module round-trips a
:class:`~repro.trace.trace.Trace` *including its DPST* through plain
JSON-compatible dictionaries.

Three on-disk formats are supported:

* **v1 (monolithic JSON)** -- one JSON object holding every event, written
  by :func:`dump_trace` with ``format="json"``.  Simple, but the whole
  trace must fit in memory to read or write it.
* **v2 (streaming JSONL)** -- a one-line header
  ``{"format": "repro-trace", "version": 2, "dpst": ...}`` followed
  by one event per line.  :class:`TraceWriter` appends events with bounded
  buffering and :class:`TraceReader` yields them as a generator, so traces
  larger than RAM can be produced and checked.  The DPST lives in the
  header because every checker needs the *complete* tree before the first
  event is replayed.
* **v3 (binary columnar)** -- struct-packed parallel arrays per event
  field with interned location/lock tables and optional zlib frames; the
  sharded pipeline's fast path.  See :mod:`repro.trace.columnar`.
  :class:`TraceReader` transparently wraps v3 files, so downstream code
  is format-agnostic.

:func:`load_trace` / :func:`open_trace` sniff the format, so callers never
care which variant a file uses: v3 is detected by a magic byte prefix and
v2 by *parsing* the first line's JSON (never by matching an exact byte
rendering, which would break on compact separators or reordered keys).

Location encoding: locations are hashable Python values (strings, ints,
or tuples thereof).  JSON has no tuples, so locations are wrapped as
``{"t": [...]}`` for tuples and ``{"v": scalar}`` otherwise, recursively —
lossless for the location vocabulary the runtime produces.
"""

from __future__ import annotations

import io
import json
import os
import re
import zlib
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional

from repro.dpst import ArrayDPST, NodeKind, ROOT_ID
from repro.dpst.base import DPSTBase
from repro.errors import TraceError
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.trace.trace import Trace

Location = Hashable

_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        TaskSpawnEvent,
        TaskBeginEvent,
        TaskEndEvent,
        SyncEvent,
        MemoryEvent,
        AcquireEvent,
        ReleaseEvent,
    )
}


def encode_location(location: Location) -> Dict[str, Any]:
    """Encode a location value as a JSON-safe tagged dict."""
    if isinstance(location, tuple):
        return {"t": [encode_location(item) for item in location]}
    if location is None or isinstance(location, (str, int, float, bool)):
        return {"v": location}
    raise TraceError(f"unserializable location {location!r}")


def location_shard_key(location: Location) -> int:
    """Process-stable integer key of *location* for shard partitioning.

    CRC-32 of the location's ``repr`` rather than builtin ``hash``: string
    hashing is randomized per process (PYTHONHASHSEED), and the sharded
    driver's worker processes must all agree on the partition.  The v2
    writer stamps this key on every memory-event line (``"sk"``) so readers
    can route a line to its shard without decoding the JSON.
    """
    return zlib.crc32(repr(location).encode("utf-8"))


def decode_location(encoded: Dict[str, Any]) -> Location:
    """Inverse of :func:`encode_location`."""
    if "t" in encoded:
        return tuple(decode_location(item) for item in encoded["t"])
    if "v" in encoded:
        return encoded["v"]
    raise TraceError(f"malformed encoded location {encoded!r}")


def dpst_to_dict(tree: DPSTBase) -> Dict[str, Any]:
    """Flatten a DPST to its defining arrays (kind + parent per node)."""
    return {
        "layout": tree.layout_name,
        "kinds": [int(tree.kind(node)) for node in tree.nodes()],
        "parents": [tree.parent(node) for node in tree.nodes()],
    }


def dpst_from_dict(data: Dict[str, Any]) -> DPSTBase:
    """Rebuild a DPST (always as the array layout) from its arrays."""
    kinds = data["kinds"]
    parents = data["parents"]
    if not kinds or NodeKind(kinds[ROOT_ID]) is not NodeKind.FINISH:
        raise TraceError("serialized DPST must start with a finish root")
    tree = ArrayDPST()
    for node in range(1, len(kinds)):
        created = tree.add_node(parents[node], NodeKind(kinds[node]))
        if created != node:
            raise TraceError("serialized DPST nodes must be in insertion order")
    return tree


def event_to_dict(event: object) -> Dict[str, Any]:
    """Encode one event as a tagged dict."""
    row: Dict[str, Any] = {"type": type(event).__name__}
    for name in event.__dataclass_fields__:  # type: ignore[attr-defined]
        value = getattr(event, name)
        if name == "location":
            row[name] = encode_location(value)
        elif name == "lockset":
            row[name] = list(value)
        else:
            row[name] = value
    return row


def event_from_dict(row: Dict[str, Any]) -> object:
    """Inverse of :func:`event_to_dict`."""
    kind = row.get("type")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise TraceError(f"unknown event type {kind!r}")
    kwargs = {k: v for k, v in row.items() if k not in ("type", "sk")}
    if "location" in kwargs:
        kwargs["location"] = decode_location(kwargs["location"])
    if "lockset" in kwargs:
        kwargs["lockset"] = tuple(kwargs["lockset"])
    return cls(**kwargs)


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Encode a whole trace (events + DPST) as one JSON-safe dict."""
    return {
        "version": 1,
        "events": [event_to_dict(event) for event in trace.events],
        "dpst": None if trace.dpst is None else dpst_to_dict(trace.dpst),
    }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    """Inverse of :func:`trace_to_dict`."""
    if data.get("version") != 1:
        raise TraceError(f"unsupported trace version {data.get('version')!r}")
    events = [event_from_dict(row) for row in data["events"]]
    dpst = None if data.get("dpst") is None else dpst_from_dict(data["dpst"])
    return Trace(events, dpst=dpst)


# ---------------------------------------------------------------------------
# v2: streaming JSONL
# ---------------------------------------------------------------------------

JSONL_FORMAT = "repro-trace"
JSONL_VERSION = 2

#: Events buffered between writes / sniff window for format detection.
DEFAULT_CHUNK_SIZE = 4096

#: Shard-key stamp at the tail of a v2 memory-event line (bytes: the
#: sharded readers scan raw lines in binary mode).
_SK_TAIL = re.compile(rb'"sk": (\d+)\}\s*$')


class TraceWriter:
    """Streaming JSONL trace writer (v2 format).

    Writes the header line at construction, then appends one JSON line per
    event.  Lines are buffered and flushed every ``chunk_size`` events, so
    the writer holds O(chunk_size) events regardless of trace length.
    Usable as a context manager::

        with TraceWriter("run.jsonl", dpst=trace.dpst) as writer:
            for event in events:
                writer.write(event)

    The DPST must be supplied up front (it sits in the header so readers
    can rebuild the tree before streaming any event); pass ``None`` for
    DPST-free traces.

    Crash safety: all bytes go to a temporary sibling of :attr:`path`;
    :meth:`close` publishes the finished file with :func:`os.replace`.  A
    write that dies mid-stream (or exits a ``with`` block on an exception,
    which calls :meth:`discard`) never leaves a half-trace at the target.
    """

    def __init__(
        self,
        path: str,
        dpst: Optional[DPSTBase] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise TraceError(f"chunk_size must be positive, got {chunk_size}")
        self.path = os.fspath(path)
        self.chunk_size = chunk_size
        #: Number of events written so far.
        self.count = 0
        self._buffer: List[str] = []
        # The header is rendered *before* any file is opened: a DPST that
        # fails to flatten raises with nothing on disk and no open handle.
        header = json.dumps(
            {
                "format": JSONL_FORMAT,
                "version": JSONL_VERSION,
                "dpst": None if dpst is None else dpst_to_dict(dpst),
            }
        )
        self._tmp_path: Optional[str] = f"{self.path}.tmp.{os.getpid()}"
        self._handle: Optional[io.TextIOWrapper] = open(
            self._tmp_path, "w", encoding="utf-8"
        )
        self._handle.write(header + "\n")

    def write(self, event: object) -> None:
        """Append one event."""
        if self._handle is None:
            raise TraceError(f"TraceWriter for {self.path!r} is closed")
        row = event_to_dict(event)
        if isinstance(event, MemoryEvent):
            # Stamped last so readers can shard-filter the raw line tail
            # without decoding the JSON (see TraceReader.memory_events).
            row["sk"] = location_shard_key(event.location)
        self._buffer.append(json.dumps(row))
        self.count += 1
        if len(self._buffer) >= self.chunk_size:
            self._flush()

    def write_all(self, events: Iterable[object]) -> None:
        """Append every event of *events* (any iterable)."""
        for event in events:
            self.write(event)

    def _flush(self) -> None:
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer = []

    def close(self) -> None:
        """Flush buffered events and publish the file (idempotent).

        Publication is atomic: the temporary sibling moves to
        :attr:`path` via :func:`os.replace`, so readers only ever see a
        complete trace or no trace at all.
        """
        if self._handle is not None:
            self._flush()
            self._handle.close()
            self._handle = None
            os.replace(self._tmp_path, self.path)
            self._tmp_path = None

    def discard(self) -> None:
        """Abandon the write: delete the temporary file without touching
        :attr:`path` (idempotent; a no-op after :meth:`close`)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._tmp_path is not None:
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass
            self._tmp_path = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        if exc_type is not None:
            self.discard()
        else:
            self.close()


#: Sentinel yielded internally for lines the lenient reader skipped.
_SKIPPED = object()


class TraceReader:
    """Streaming reader over a serialized trace file (v1, v2, or v3).

    Construction parses only the header (v2), the header + footer tables
    (v3, which it wraps transparently via
    :class:`repro.trace.columnar.ColumnarTraceReader`), or the whole file
    (v1 has no incremental structure); :meth:`events` then yields decoded
    events as a generator.  Each call to :meth:`events` opens a fresh
    handle, so a reader supports any number of passes -- exactly what the
    sharded pipeline's workers need when each filters out its own shard.

    Lifecycle: the reader tracks every handle its streaming passes open,
    and :meth:`close` (or use as a context manager) closes any that an
    abandoned generator left behind -- so a checker raising mid-replay
    never leaks a file descriptor.

    Lenient mode (``strict=False``): undecodable or truncated JSONL event
    lines are *counted and skipped* (:attr:`lines_skipped`) instead of
    raising mid-stream -- never silently; callers surface the count as
    the ``trace.lines_skipped`` metric.  The header must always decode
    (the DPST lives there), and v1 monolithic JSON has no line structure
    to salvage, so both still raise.  Soundness caveat: a skipped line is
    a memory access the checker never sees, so a lenient run can miss
    violations on the affected locations; it can never invent them.
    """

    def __init__(self, path: str, strict: bool = True) -> None:
        self.path = os.fspath(path)
        #: ``False`` skips (and counts) undecodable event lines.
        self.strict = bool(strict)
        self._lines_skipped = 0
        self._closed = False
        self._live_handles: set = set()
        self._v1_trace: Optional[Trace] = None
        self._v3 = None
        # Imported lazily: columnar.py builds on this module's primitives.
        from repro.trace.columnar import ColumnarTraceReader, is_columnar_trace

        if is_columnar_trace(self.path):
            self._v3 = ColumnarTraceReader(self.path, strict=self.strict)
            self.version = self._v3.version
            self.dpst: Optional[DPSTBase] = self._v3.dpst
        elif is_jsonl_trace(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                first = handle.readline()
            try:
                header = json.loads(first)
            except ValueError as exc:
                raise TraceError(
                    f"cannot parse trace header of {self.path!r}: {exc}"
                ) from exc
            version = header.get("version")
            if header.get("format") != JSONL_FORMAT or version != JSONL_VERSION:
                raise TraceError(
                    f"unsupported trace header in {self.path!r}: {header!r}"
                )
            self.version = version
            raw_dpst = header.get("dpst")
            self.dpst = None if raw_dpst is None else dpst_from_dict(raw_dpst)
        else:
            # v1 fallback: monolithic JSON, decoded eagerly.  Anything that
            # is not JSON at all (empty file, truncated header, binary
            # garbage) lands here too, so decode failures surface as
            # TraceError with the path -- not a bare json.JSONDecodeError.
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (ValueError, UnicodeDecodeError) as exc:
                raise TraceError(
                    f"cannot parse {self.path!r} as a trace: not a v1 JSON, "
                    f"v2 JSONL, or v3 columnar trace file ({exc})"
                ) from exc
            self._v1_trace = trace_from_dict(data)
            self.version = 1
            self.dpst = self._v1_trace.dpst

    @property
    def lines_skipped(self) -> int:
        """Undecodable lines (v2) or frame events (v3) skipped so far,
        cumulative across passes (lenient mode only)."""
        if self._v3 is not None:
            return self._v3.lines_skipped
        return self._lines_skipped

    # -- lifecycle ---------------------------------------------------------

    def _open_stream(self, binary: bool = False):
        """Open (and track) one streaming pass over the file."""
        if self._closed:
            raise TraceError(f"TraceReader for {self.path!r} is closed")
        if binary:
            handle = open(self.path, "rb")
        else:
            handle = open(
                self.path,
                "r",
                encoding="utf-8",
                errors="strict" if self.strict else "replace",
            )
        self._live_handles.add(handle)
        return handle

    def _release(self, handle) -> None:
        self._live_handles.discard(handle)
        if not handle.closed:
            handle.close()

    def close(self) -> None:
        """Close every handle still open from streaming passes (idempotent).

        Generators abandoned mid-stream (a checker raised during replay)
        keep their file handle until garbage collection; ``close`` frees
        them deterministically.  Further passes raise :class:`TraceError`.
        """
        self._closed = True
        if self._v3 is not None:
            self._v3.close()
        for handle in list(self._live_handles):
            self._release(handle)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- streaming views ---------------------------------------------------

    def _decode_line(self, line) -> object:
        """Decode one event line; in lenient mode bad lines become
        :data:`_SKIPPED` (and are counted) instead of raising."""
        if self.strict:
            return event_from_dict(json.loads(line))
        try:
            return event_from_dict(json.loads(line))
        except (ValueError, TypeError, KeyError, TraceError):
            self._lines_skipped += 1
            return _SKIPPED

    def events(self) -> Iterator[object]:
        """Yield every event in file order (a fresh pass per call)."""
        if self._closed:
            raise TraceError(f"TraceReader for {self.path!r} is closed")
        if self._v3 is not None:
            yield from self._v3.events()
            return
        if self._v1_trace is not None:
            yield from self._v1_trace.events
            return
        handle = self._open_stream()
        try:
            handle.readline()  # header
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = self._decode_line(line)
                if event is not _SKIPPED:
                    yield event
        finally:
            self._release(handle)

    def __iter__(self) -> Iterator[object]:
        return self.events()

    def memory_events(
        self, shard: Optional[int] = None, jobs: Optional[int] = None
    ) -> Iterator[MemoryEvent]:
        """Yield just the memory accesses, in file order.

        With ``shard``/``jobs``, yield only events whose location falls in
        that shard (``location_shard_key(location) % jobs == shard``).  On
        v2 files the filter reads the ``"sk"`` stamp off each raw line's
        tail, so foreign-shard lines are skipped *without* JSON decoding --
        this is what lets N streaming workers split the parse cost of one
        file instead of each paying it in full.  Lines without a stamp
        (v1 files, externally produced v2 files) fall back to decode-then-
        filter, so the result is identical either way.  On v3 files the
        filter runs over the columnar frames directly (see
        :meth:`repro.trace.columnar.ColumnarTraceReader.memory_events`).
        """
        if self._v3 is not None:
            if self._closed:
                raise TraceError(f"TraceReader for {self.path!r} is closed")
            yield from self._v3.memory_events(shard=shard, jobs=jobs)
            return
        if shard is None or jobs is None or jobs <= 1:
            for event in self.events():
                if isinstance(event, MemoryEvent):
                    yield event
            return
        if self._v1_trace is not None:
            for event in self._v1_trace.events:
                if (
                    isinstance(event, MemoryEvent)
                    and location_shard_key(event.location) % jobs == shard
                ):
                    yield event
            return
        # Binary mode: foreign-shard lines are dropped after a bounded
        # bytes scan, without UTF-8 decoding or JSON parsing them.
        handle = self._open_stream(binary=True)
        try:
            handle.readline()  # header
            for line in handle:
                # The stamp sits in the last ~20 bytes; bound the scan.
                match = _SK_TAIL.search(line, max(0, len(line) - 32))
                if match is not None:
                    if int(match.group(1)) % jobs != shard:
                        continue
                    event = self._decode_line(line)
                    if event is not _SKIPPED:
                        yield event
                else:
                    if not line.strip():
                        continue
                    event = self._decode_line(line)
                    if (
                        event is not _SKIPPED
                        and isinstance(event, MemoryEvent)
                        and location_shard_key(event.location) % jobs == shard
                    ):
                        yield event
        finally:
            self._release(handle)

    def read(self) -> Trace:
        """Materialize the full :class:`Trace` (events + DPST) in memory."""
        if self._v3 is not None:
            return self._v3.read()
        if self._v1_trace is not None:
            return self._v1_trace
        return Trace(list(self.events()), dpst=self.dpst)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<TraceReader {self.path!r} v{self.version}>"


#: Sniff window for format detection: enough for any realistic first line
#: short of a header whose DPST alone tops a mebibyte.
_SNIFF_BYTES = 1 << 20

#: Prefix fallback for first lines larger than the sniff window.  Only our
#: own writer produces such headers, and it always leads with the format
#: key; tolerating arbitrary whitespace keeps compact separators working.
_HEADER_PREFIX = re.compile(
    rb'\{\s*"format"\s*:\s*"' + re.escape(JSONL_FORMAT.encode()) + rb'"'
)


def is_jsonl_trace(path: str) -> bool:
    """Does *path* hold a v2 JSONL trace (vs. v1 monolithic / v3 columnar)?

    Decides by *parsing* the first line's JSON (bounded read) and checking
    its ``format`` field -- never by matching an exact byte rendering, so
    v2 files written with compact separators, reordered keys, or extra
    whitespace are all recognized.  Detection works regardless of file
    extension and never reads a multi-GB v1 file just to decide.
    """
    from repro.trace.columnar import COLUMNAR_MAGIC

    try:
        with open(path, "rb") as handle:
            head = handle.read(_SNIFF_BYTES)
    except OSError:
        return False
    if head.startswith(COLUMNAR_MAGIC):
        return False
    stripped = head.lstrip()
    if not stripped.startswith(b"{"):
        return False
    newline = stripped.find(b"\n")
    if newline >= 0:
        first = stripped[:newline]
    elif len(head) < _SNIFF_BYTES:
        first = stripped  # whole file in hand: single-line candidate
    else:
        # First line exceeds the window (huge header DPST, or a one-line
        # multi-GB v1 file we must not read in full): a bounded prefix
        # scan decides.
        return _HEADER_PREFIX.match(stripped) is not None
    try:
        header = json.loads(first.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return False
    return isinstance(header, dict) and header.get("format") == JSONL_FORMAT


def open_trace(path: str, strict: bool = True) -> TraceReader:
    """Open *path* (either format) as a streaming :class:`TraceReader`.

    ``strict=False`` turns on lenient ingestion: undecodable JSONL event
    lines are counted on ``reader.lines_skipped`` and skipped instead of
    raising mid-stream.
    """
    return TraceReader(path, strict=strict)


def dump_trace_jsonl(
    trace: Trace, path: str, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> None:
    """Write *trace* to *path* in the streaming v2 JSONL format."""
    with TraceWriter(path, dpst=trace.dpst, chunk_size=chunk_size) as writer:
        writer.write_all(trace.events)


# ---------------------------------------------------------------------------
# Front doors
# ---------------------------------------------------------------------------


def dump_trace(trace: Trace, path: str, format: str = "auto") -> None:
    """Write a trace to *path*.

    ``format="auto"`` (default) picks v2 JSONL for ``.jsonl`` / ``.ndjson``
    paths, binary columnar v3 for ``.trc`` / ``.v3`` paths, and the legacy
    v1 monolithic JSON otherwise; ``"jsonl"``, ``"columnar"``, and
    ``"json"`` force a variant.
    """
    if format == "auto":
        suffix = os.path.splitext(os.fspath(path))[1].lower()
        if suffix in (".jsonl", ".ndjson"):
            format = "jsonl"
        elif suffix in (".trc", ".v3"):
            format = "columnar"
        else:
            format = "json"
    if format == "jsonl":
        dump_trace_jsonl(trace, path)
    elif format == "columnar":
        from repro.trace.columnar import dump_trace_columnar

        dump_trace_columnar(trace, path)
    elif format == "json":
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace_to_dict(trace), handle)
    else:
        raise TraceError(
            f"unknown trace format {format!r} "
            "(expected 'auto', 'json', 'jsonl' or 'columnar')"
        )


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`dump_trace` (either format)."""
    return TraceReader(path).read()
