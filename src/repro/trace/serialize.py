"""Trace (de)serialization: save an execution, replay it anywhere.

The paper's artifact workflows (and ours) need executions to be portable:
record once, then replay through different checkers, permute orders, or
archive as regression goldens.  This module round-trips a
:class:`~repro.trace.trace.Trace` *including its DPST* through plain
JSON-compatible dictionaries.

Location encoding: locations are hashable Python values (strings, ints,
or tuples thereof).  JSON has no tuples, so locations are wrapped as
``{"t": [...]}`` for tuples and ``{"v": scalar}`` otherwise, recursively —
lossless for the location vocabulary the runtime produces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List, Optional

from repro.dpst import ArrayDPST, NodeKind, ROOT_ID
from repro.dpst.base import DPSTBase
from repro.errors import TraceError
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.trace.trace import Trace

Location = Hashable

_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        TaskSpawnEvent,
        TaskBeginEvent,
        TaskEndEvent,
        SyncEvent,
        MemoryEvent,
        AcquireEvent,
        ReleaseEvent,
    )
}


def encode_location(location: Location) -> Dict[str, Any]:
    """Encode a location value as a JSON-safe tagged dict."""
    if isinstance(location, tuple):
        return {"t": [encode_location(item) for item in location]}
    if location is None or isinstance(location, (str, int, float, bool)):
        return {"v": location}
    raise TraceError(f"unserializable location {location!r}")


def decode_location(encoded: Dict[str, Any]) -> Location:
    """Inverse of :func:`encode_location`."""
    if "t" in encoded:
        return tuple(decode_location(item) for item in encoded["t"])
    if "v" in encoded:
        return encoded["v"]
    raise TraceError(f"malformed encoded location {encoded!r}")


def dpst_to_dict(tree: DPSTBase) -> Dict[str, Any]:
    """Flatten a DPST to its defining arrays (kind + parent per node)."""
    return {
        "layout": tree.layout_name,
        "kinds": [int(tree.kind(node)) for node in tree.nodes()],
        "parents": [tree.parent(node) for node in tree.nodes()],
    }


def dpst_from_dict(data: Dict[str, Any]) -> DPSTBase:
    """Rebuild a DPST (always as the array layout) from its arrays."""
    kinds = data["kinds"]
    parents = data["parents"]
    if not kinds or NodeKind(kinds[ROOT_ID]) is not NodeKind.FINISH:
        raise TraceError("serialized DPST must start with a finish root")
    tree = ArrayDPST()
    for node in range(1, len(kinds)):
        created = tree.add_node(parents[node], NodeKind(kinds[node]))
        if created != node:
            raise TraceError("serialized DPST nodes must be in insertion order")
    return tree


def event_to_dict(event: object) -> Dict[str, Any]:
    """Encode one event as a tagged dict."""
    row: Dict[str, Any] = {"type": type(event).__name__}
    for name in event.__dataclass_fields__:  # type: ignore[attr-defined]
        value = getattr(event, name)
        if name == "location":
            row[name] = encode_location(value)
        elif name == "lockset":
            row[name] = list(value)
        else:
            row[name] = value
    return row


def event_from_dict(row: Dict[str, Any]) -> object:
    """Inverse of :func:`event_to_dict`."""
    kind = row.get("type")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise TraceError(f"unknown event type {kind!r}")
    kwargs = {k: v for k, v in row.items() if k != "type"}
    if "location" in kwargs:
        kwargs["location"] = decode_location(kwargs["location"])
    if "lockset" in kwargs:
        kwargs["lockset"] = tuple(kwargs["lockset"])
    return cls(**kwargs)


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Encode a whole trace (events + DPST) as one JSON-safe dict."""
    return {
        "version": 1,
        "events": [event_to_dict(event) for event in trace.events],
        "dpst": None if trace.dpst is None else dpst_to_dict(trace.dpst),
    }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    """Inverse of :func:`trace_to_dict`."""
    if data.get("version") != 1:
        raise TraceError(f"unsupported trace version {data.get('version')!r}")
    events = [event_from_dict(row) for row in data["events"]]
    dpst = None if data.get("dpst") is None else dpst_from_dict(data["dpst"])
    return Trace(events, dpst=dpst)


def dump_trace(trace: Trace, path: str) -> None:
    """Write a trace to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_dict(trace), handle)


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`dump_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_dict(json.load(handle))
