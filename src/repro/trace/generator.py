"""Random task-parallel program / trace generator (paper Section 4).

The paper's evaluation mentions "a trace generator that takes the number
of tasks and memory accesses as parameter and generates execution traces",
used to demonstrate that the prototype detects all atomicity violations
for a given input from a *single* trace.  This module reproduces that tool
as a seeded generator of random :class:`~repro.runtime.program.TaskProgram`
instances: running a generated program under any executor yields an
execution trace of the configured shape, and the same program can be
re-run under other schedules to cross-check schedule insensitivity.

Shape controls (:class:`GeneratorConfig`): number of tasks, accesses per
task, number of shared locations, write ratio, nesting depth, sync
placement, explicit finish blocks, and locking.  ``consistent_locking``
assigns each location a fixed lock (or none) that every access respects --
the locking discipline under which the paper's lock rule is complete
(see DESIGN.md); switching it off produces adversarial programs with
ad-hoc critical sections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checker.annotations import AtomicAnnotations
from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext

# Spec node shapes (plain tuples so specs are printable and hashable):
#   ("access", location, "read" | "write")
#   ("locked", lock_name, (inner access specs...))
#   ("spawn", (child spec...))
#   ("sync",)
#   ("finish", (inner spec...))
Spec = Tuple[Any, ...]


@dataclass
class GeneratorConfig:
    """Knobs of the random program generator.

    ``tasks`` bounds the total number of spawned tasks (the root task is
    not counted); ``accesses_per_task`` draws each task's access count from
    ``[1, accesses_per_task]``; ``locations`` shared scalars named
    ``("g", i)`` are accessed uniformly.
    """

    tasks: int = 4
    accesses_per_task: int = 4
    locations: int = 2
    write_probability: float = 0.5
    #: Maximum spawn nesting depth (1 = flat fork-join).
    max_depth: int = 2
    #: Probability that a task performs a sync between spawning children.
    sync_probability: float = 0.3
    #: Probability that a group of children is wrapped in an explicit finish.
    finish_probability: float = 0.2
    #: Number of distinct program locks (0 disables locking).
    locks: int = 0
    #: Probability that an access (or run of accesses) is inside a lock.
    lock_probability: float = 0.5
    #: When true, each location is protected by one fixed lock (or none),
    #: and every access to it honours that lock.
    consistent_locking: bool = True
    seed: int = 0


class TraceGenerator:
    """Generates random task-parallel programs from a :class:`GeneratorConfig`."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()

    # -- spec generation ------------------------------------------------------

    def generate_spec(self, seed: Optional[int] = None) -> Spec:
        """The root task's spec tree, deterministic in the seed."""
        config = self.config
        rng = random.Random(config.seed if seed is None else seed)
        budget = [config.tasks]
        location_lock = self._assign_locks(rng)
        root = self._gen_task(rng, budget, depth=0, location_lock=location_lock)
        return ("task", tuple(root))

    def _assign_locks(self, rng: random.Random) -> Dict[Tuple[str, int], Optional[str]]:
        """Per-location lock assignment for consistent-locking mode."""
        assignment: Dict[Tuple[str, int], Optional[str]] = {}
        config = self.config
        for index in range(config.locations):
            location = ("g", index)
            if config.locks > 0 and rng.random() < config.lock_probability:
                assignment[location] = f"L{rng.randrange(config.locks)}"
            else:
                assignment[location] = None
        return assignment

    def _gen_task(
        self,
        rng: random.Random,
        budget: List[int],
        depth: int,
        location_lock: Dict[Tuple[str, int], Optional[str]],
    ) -> List[Spec]:
        """One task's body: interleaved accesses, spawns, syncs."""
        config = self.config
        body: List[Spec] = []
        accesses = rng.randint(1, max(1, config.accesses_per_task))
        actions = ["access"] * accesses
        if depth < config.max_depth:
            # Interleave spawn opportunities among the accesses.
            spawn_slots = rng.randint(0, 3)
            actions += ["spawn"] * spawn_slots
        rng.shuffle(actions)
        spawned_since_sync = False
        group: List[Spec] = []

        def flush_group() -> None:
            nonlocal group
            if group:
                body.extend(group)
                group = []

        for action in actions:
            if action == "access":
                group.append(self._gen_access(rng, location_lock))
                flush_group()
            elif action == "spawn" and budget[0] > 0:
                budget[0] -= 1
                child = self._gen_task(rng, budget, depth + 1, location_lock)
                wrap_finish = rng.random() < config.finish_probability
                spawn_spec: Spec = ("spawn", tuple(child))
                if wrap_finish:
                    body.append(("finish", (spawn_spec,)))
                else:
                    body.append(spawn_spec)
                    spawned_since_sync = True
                if spawned_since_sync and rng.random() < config.sync_probability:
                    body.append(("sync",))
                    spawned_since_sync = False
        flush_group()
        return body

    def _gen_access(
        self,
        rng: random.Random,
        location_lock: Dict[Tuple[str, int], Optional[str]],
    ) -> Spec:
        config = self.config
        location = ("g", rng.randrange(max(1, config.locations)))
        access_type = "write" if rng.random() < config.write_probability else "read"
        access: Spec = ("access", location, access_type)
        if config.consistent_locking:
            lock = location_lock.get(location)
            if lock is not None:
                return ("locked", lock, (access,))
            return access
        if config.locks > 0 and rng.random() < config.lock_probability:
            lock = f"L{rng.randrange(config.locks)}"
            return ("locked", lock, (access,))
        return access

    # -- spec execution ------------------------------------------------------------

    def program_from_spec(self, spec: Spec, name: str = "generated") -> TaskProgram:
        """Wrap a spec tree in a runnable :class:`TaskProgram`."""
        if spec[0] != "task":
            raise ValueError(f"root spec must be a task, got {spec[0]!r}")
        root_items = spec[1]

        def body(ctx: TaskContext) -> None:
            _run_items(ctx, root_items)

        initial = {("g", i): 0 for i in range(self.config.locations)}
        return TaskProgram(
            body,
            name=name,
            initial_memory=initial,
            annotations=AtomicAnnotations(),
        )

    def generate_program(self, seed: Optional[int] = None) -> TaskProgram:
        """Generate a random runnable program."""
        actual_seed = self.config.seed if seed is None else seed
        spec = self.generate_spec(actual_seed)
        return self.program_from_spec(spec, name=f"generated(seed={actual_seed})")

    def generate_trace(self, seed: Optional[int] = None, executor=None):
        """Generate a program, run it, and return the recorded trace."""
        from repro.runtime.program import run_program

        program = self.generate_program(seed)
        result = run_program(program, executor=executor, record_trace=True)
        return result.trace


def _run_items(ctx: TaskContext, items: Sequence[Spec]) -> None:
    """Interpret a spec item list against the TaskContext API."""
    for item in items:
        kind = item[0]
        if kind == "access":
            _, location, access_type = item
            if access_type == "read":
                ctx.read(location)
            else:
                ctx.write(location, ctx.task_id)
        elif kind == "locked":
            _, lock_name, inner = item
            with ctx.lock(lock_name):
                _run_items(ctx, inner)
        elif kind == "spawn":
            _, child_items = item
            ctx.spawn(_child_body, child_items)
        elif kind == "sync":
            ctx.sync()
        elif kind == "finish":
            _, inner = item
            with ctx.finish():
                _run_items(ctx, inner)
        else:
            raise ValueError(f"unknown spec item {kind!r}")


def _child_body(ctx: TaskContext, items: Sequence[Spec]) -> None:
    _run_items(ctx, items)
