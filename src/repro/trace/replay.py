"""Offline replay of traces through checkers.

The checkers are runtime observers, but they only consume memory events
plus the DPST -- so any recorded (or generated, or permuted) trace can be
fed to them without re-executing a program.  Replay is what lets the test
suite demonstrate the paper's schedule-insensitivity claim: permuting the
legal order of a trace's events never changes the optimized checker's
verdict, while it very much changes Velodrome's.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.checker.annotations import AtomicAnnotations
from repro.dpst.base import DPSTBase
from repro.dpst.engines import make_engine
from repro.errors import TraceError
from repro.report import ViolationReport
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.runtime.executor import RunContext
from repro.runtime.observer import RuntimeObserver
from repro.runtime.shadow import ShadowMemory
from repro.runtime.locks import LockTable
from repro.trace.trace import Trace


def _make_context(
    dpst: Optional[DPSTBase],
    annotations: Optional[AtomicAnnotations],
    lca_cache: bool = True,
    parallel_engine: str = "lca",
    recorder=None,
) -> RunContext:
    if dpst is None:
        engine = None
    else:
        # Registry resolution: raises UnknownEngineError (a CheckerError
        # and ValueError) naming the valid engines.
        engine = make_engine(parallel_engine, dpst, cache=lca_cache)
    return RunContext(
        dpst=dpst,
        engine=engine,
        shadow=ShadowMemory(),
        locks=LockTable(),
        annotations=annotations or AtomicAnnotations(),
        parallel_engine=parallel_engine,
        recorder=recorder,
    )


def replay_memory_events(
    events: Iterable[MemoryEvent],
    checker: RuntimeObserver,
    dpst: Optional[DPSTBase] = None,
    annotations: Optional[AtomicAnnotations] = None,
    lca_cache: bool = True,
    parallel_engine: str = "lca",
    recorder=None,
) -> ViolationReport:
    """Feed *events* (in the given order) to *checker*; return its report.

    *dpst* is required for checkers that issue parallelism queries (the
    basic and optimized checkers); Velodrome replays happily without one
    because the events already carry their step ids.  *events* may be any
    iterable, including a streaming generator over a trace file that never
    materializes the full event list.

    *recorder* is an optional :class:`repro.obs.Recorder`.  When enabled,
    the replay runs under a ``"replay"`` span, counts the events routed,
    and flushes the checker's and engine's accumulated counters at the
    end.  When disabled (or ``None``) the per-event loop is exactly the
    historical one -- observability costs nothing it does not use.
    """
    needs_tree = getattr(checker, "requires_lca", checker.requires_dpst)
    if needs_tree and dpst is None:
        raise TraceError(
            f"{type(checker).__name__} needs the producing DPST to replay"
        )
    context = _make_context(dpst, annotations, lca_cache, parallel_engine, recorder)
    if recorder is not None and recorder.enabled:
        from repro.obs import (
            SPAN_REPLAY,
            flush_engine_stats,
            flush_observer_metrics,
        )

        checker.on_run_begin(context)
        routed = 0
        with recorder.span(SPAN_REPLAY):
            for event in events:
                checker.on_memory(event)
                routed += 1
        checker.on_run_end(context)
        recorder.count("trace.events.routed", routed)
        flush_observer_metrics(recorder, checker)
        flush_engine_stats(recorder, context.engine)
    else:
        checker.on_run_begin(context)
        for event in events:
            checker.on_memory(event)
        checker.on_run_end(context)
    report = getattr(checker, "report", None)
    if not isinstance(report, ViolationReport):
        raise TraceError(f"{type(checker).__name__} exposes no report")
    return report


def replay_events(
    events: Iterable[object],
    checker: RuntimeObserver,
    dpst: Optional[DPSTBase] = None,
    annotations: Optional[AtomicAnnotations] = None,
    lca_cache: bool = True,
    parallel_engine: str = "lca",
    recorder=None,
) -> ViolationReport:
    """Feed a *full* event stream -- memory, task, sync, lock -- to *checker*.

    :func:`replay_memory_events` is the right call for plain checkers,
    which only consume memory events.  Streaming checkers additionally
    want the task lifecycle: a ``TaskEndEvent`` proves a task's local
    metadata dead, letting the windowed compaction sweep reclaim it (see
    :class:`repro.checker.streaming.StreamingChecker`).  Each event is
    dispatched to the matching observer hook; unknown event types are
    ignored.  ``trace.events.routed`` still counts memory events only, so
    the counter stays comparable with memory-only replays.
    """
    needs_tree = getattr(checker, "requires_lca", checker.requires_dpst)
    if needs_tree and dpst is None:
        raise TraceError(
            f"{type(checker).__name__} needs the producing DPST to replay"
        )
    context = _make_context(dpst, annotations, lca_cache, parallel_engine, recorder)

    def drive() -> int:
        routed = 0
        on_memory = checker.on_memory
        for event in events:
            if isinstance(event, MemoryEvent):
                on_memory(event)
                routed += 1
            elif isinstance(event, TaskEndEvent):
                checker.on_task_end(event)
            elif isinstance(event, TaskSpawnEvent):
                checker.on_task_spawn(event)
            elif isinstance(event, TaskBeginEvent):
                checker.on_task_begin(event)
            elif isinstance(event, SyncEvent):
                checker.on_sync(event)
            elif isinstance(event, AcquireEvent):
                checker.on_acquire(event)
            elif isinstance(event, ReleaseEvent):
                checker.on_release(event)
        return routed

    if recorder is not None and recorder.enabled:
        from repro.obs import (
            SPAN_REPLAY,
            flush_engine_stats,
            flush_observer_metrics,
        )

        checker.on_run_begin(context)
        with recorder.span(SPAN_REPLAY):
            routed = drive()
        checker.on_run_end(context)
        recorder.count("trace.events.routed", routed)
        flush_observer_metrics(recorder, checker)
        flush_engine_stats(recorder, context.engine)
    else:
        checker.on_run_begin(context)
        drive()
        checker.on_run_end(context)
    report = getattr(checker, "report", None)
    if not isinstance(report, ViolationReport):
        raise TraceError(f"{type(checker).__name__} exposes no report")
    return report


def replay_trace(
    trace: Trace,
    checker: RuntimeObserver,
    annotations: Optional[AtomicAnnotations] = None,
    lca_cache: bool = True,
    parallel_engine: str = "lca",
    recorder=None,
) -> ViolationReport:
    """Replay a full :class:`Trace` through *checker*.

    Only memory events are significant to the checkers (locksets ride on
    the events themselves); task and lock events are skipped.
    """
    return replay_memory_events(
        trace.memory_events(),
        checker,
        dpst=trace.dpst,
        annotations=annotations,
        lca_cache=lca_cache,
        parallel_engine=parallel_engine,
        recorder=recorder,
    )
