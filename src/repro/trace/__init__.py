"""Traces: recording, generation, replay, and interleaving exploration.

* :class:`~repro.trace.trace.Trace` -- an ordered list of runtime events,
  optionally paired with the DPST of the execution that produced it;
* :mod:`~repro.trace.replay` -- feed a recorded trace to any checker
  offline, including permuted variants;
* :mod:`~repro.trace.generator` -- the paper's "trace generator that takes
  the number of tasks and memory accesses as parameter": produces random
  task-parallel programs/traces with controlled shape;
* :mod:`~repro.trace.explore` -- ground truth: exhaustively enumerate the
  legal schedules of a recorded execution (respecting series-parallel
  structure and lock mutual exclusion) and report which locations exhibit
  an atomicity violation in *some* schedule.  The paper's checker is
  validated against this oracle: it must find, from one trace, everything
  the explorer finds across all traces.
"""

from repro.trace.trace import Trace
from repro.trace.replay import replay_trace, replay_memory_events, replay_events
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.explore import (
    InterleavingExplorer,
    analytic_violation_locations,
    explore_violation_locations,
)
from repro.trace.serialize import (
    TraceReader,
    TraceWriter,
    dump_trace,
    dump_trace_jsonl,
    load_trace,
    open_trace,
)
from repro.trace.columnar import (
    ColumnarTraceReader,
    ColumnarTraceWriter,
    dump_trace_columnar,
    is_columnar_trace,
)
from repro.trace.visualize import (
    render_step_table,
    render_timeline,
    render_violation_context,
)

__all__ = [
    "Trace",
    "replay_trace",
    "replay_memory_events",
    "replay_events",
    "GeneratorConfig",
    "TraceGenerator",
    "InterleavingExplorer",
    "analytic_violation_locations",
    "explore_violation_locations",
    "TraceReader",
    "TraceWriter",
    "ColumnarTraceReader",
    "ColumnarTraceWriter",
    "dump_trace",
    "dump_trace_jsonl",
    "dump_trace_columnar",
    "is_columnar_trace",
    "load_trace",
    "open_trace",
    "render_step_table",
    "render_timeline",
    "render_violation_context",
]
