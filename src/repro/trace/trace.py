"""The :class:`Trace` container.

A trace is the ordered list of events observed during one execution,
optionally carrying the DPST that execution built (required for replay
through the DPST-based checkers and for interleaving exploration).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set

from repro.dpst.base import DPSTBase
from repro.errors import TraceError
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)

Location = Hashable

_EVENT_TYPES = (
    TaskSpawnEvent,
    TaskBeginEvent,
    TaskEndEvent,
    SyncEvent,
    MemoryEvent,
    AcquireEvent,
    ReleaseEvent,
)


class Trace:
    """An ordered sequence of runtime events.

    Parameters
    ----------
    events:
        The events, in observation order.
    dpst:
        The DPST of the producing execution, when available.
    """

    def __init__(
        self,
        events: Sequence[object],
        dpst: Optional[DPSTBase] = None,
    ) -> None:
        self.events: List[object] = list(events)
        self.dpst = dpst

    # -- views --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[object]:
        return iter(self.events)

    def memory_events(self) -> List[MemoryEvent]:
        """Just the memory accesses, in trace order."""
        return [e for e in self.events if isinstance(e, MemoryEvent)]

    def lock_events(self) -> List[object]:
        """Acquire/release events, in trace order."""
        return [e for e in self.events if isinstance(e, (AcquireEvent, ReleaseEvent))]

    def task_ids(self) -> List[int]:
        """Distinct task ids appearing in the trace, sorted."""
        tasks: Set[int] = set()
        for event in self.events:
            task = getattr(event, "task", None)
            if task is not None:
                tasks.add(task)
            if isinstance(event, TaskSpawnEvent):
                tasks.add(event.parent)
                tasks.add(event.child)
        return sorted(tasks)

    def locations(self) -> List[Location]:
        """Distinct locations accessed, in first-access order."""
        seen: Dict[Location, None] = {}
        for event in self.memory_events():
            seen.setdefault(event.location)
        return list(seen)

    def step_ids(self) -> List[int]:
        """Distinct step nodes that performed accesses, sorted."""
        return sorted({e.step for e in self.memory_events()})

    def events_by_step(self) -> Dict[int, List[MemoryEvent]]:
        """Memory events grouped by step node, each list in trace order."""
        grouped: Dict[int, List[MemoryEvent]] = defaultdict(list)
        for event in self.memory_events():
            grouped[event.step].append(event)
        return dict(grouped)

    def events_for_location(self, location: Location) -> List[MemoryEvent]:
        """Memory events touching *location*, in trace order."""
        return [e for e in self.memory_events() if e.location == location]

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Consistency checks; raises :class:`TraceError` on failure.

        * events carry monotonically increasing ``seq`` numbers;
        * every step referenced by a memory event is a step node of the
          attached DPST (when one is attached);
        * per-task memory events never share a step with another task.
        """
        last_seq = -1
        for event in self.events:
            seq = getattr(event, "seq", None)
            if seq is None:
                raise TraceError(f"event without seq: {event!r}")
            if seq <= last_seq:
                raise TraceError(
                    f"non-monotonic seq {seq} after {last_seq}: {event!r}"
                )
            last_seq = seq
        step_owner: Dict[int, int] = {}
        for event in self.memory_events():
            owner = step_owner.setdefault(event.step, event.task)
            if owner != event.task:
                raise TraceError(
                    f"step {event.step} used by tasks {owner} and {event.task}"
                )
        if self.dpst is not None:
            for event in self.memory_events():
                if event.step < 0 or event.step >= len(self.dpst):
                    raise TraceError(f"unknown step node {event.step}")
                if not self.dpst.is_step(event.step):
                    raise TraceError(f"node {event.step} is not a step node")

    # -- export ----------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        """Serialize events to plain dictionaries (for logging/goldens)."""
        rows: List[Dict[str, object]] = []
        for event in self.events:
            row: Dict[str, object] = {"type": type(event).__name__}
            for name in event.__dataclass_fields__:  # type: ignore[attr-defined]
                row[name] = getattr(event, name)
            rows.append(row)
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Trace events={len(self.events)} memory={len(self.memory_events())}>"
