"""Human-readable renderings of traces and violations.

Debugging a concurrency report usually starts with two questions: *what
did each task do, in what order?* and *where exactly is the triple?*
This module renders both as plain text:

* :func:`render_timeline` -- one lane per task, one column per event, in
  global observation order::

      task 0 | W(X)  s     s     .     .     .     .  R(X)
      task 1 | .     .     .  R(X)  W(X)     .     .     .
      task 2 | .     .     .     .     .  W(X)     .     .

* :func:`render_step_table` -- per step node: owning task, access count,
  distinct locations;
* :func:`render_violation_context` -- the timeline filtered to one
  violation's location, with the triple's three accesses marked.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.report import AtomicityViolation
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.trace.trace import Trace


def _cell_for(event: object) -> Tuple[Optional[int], str]:
    """(lane task id, cell text) for one event; None lane = skip."""
    if isinstance(event, MemoryEvent):
        letter = "W" if event.is_write else "R"
        return event.task, f"{letter}({event.location!r})"
    if isinstance(event, AcquireEvent):
        return event.task, f"+{event.versioned_name}"
    if isinstance(event, ReleaseEvent):
        return event.task, f"-{event.versioned_name}"
    if isinstance(event, TaskSpawnEvent):
        return event.parent, f"spawn:{event.child}"
    if isinstance(event, SyncEvent):
        return event.task, "sync"
    if isinstance(event, TaskBeginEvent):
        return event.task, "begin"
    if isinstance(event, TaskEndEvent):
        return event.task, "end"
    return None, ""


def render_timeline(
    trace: Trace,
    include_task_events: bool = False,
    max_columns: int = 60,
    marks: Optional[Dict[int, str]] = None,
) -> str:
    """Render the trace as per-task lanes (one column per event).

    ``marks`` maps event ``seq`` numbers to a marker string appended to
    that cell (used by :func:`render_violation_context` to flag A1/A2/A3).
    Long traces are truncated to ``max_columns`` events with an ellipsis
    note.
    """
    marks = marks or {}
    events: List[object] = []
    for event in trace.events:
        if isinstance(event, (MemoryEvent, AcquireEvent, ReleaseEvent)):
            events.append(event)
        elif include_task_events:
            events.append(event)
    truncated = len(events) > max_columns
    events = events[:max_columns]

    lanes: Dict[int, List[str]] = defaultdict(lambda: [""] * len(events))
    for column, event in enumerate(events):
        task, text = _cell_for(event)
        if task is None:
            continue
        seq = getattr(event, "seq", None)
        if seq in marks:
            text += marks[seq]
        lanes[task][column] = text

    if not lanes:
        return "(empty trace)"
    widths = [
        max((len(lanes[task][column]) for task in lanes), default=1) or 1
        for column in range(len(events))
    ]
    lines = []
    for task in sorted(lanes):
        cells = [
            (lanes[task][column] or ".").rjust(widths[column])
            for column in range(len(events))
        ]
        lines.append(f"task {task} | " + "  ".join(cells))
    if truncated:
        lines.append(f"... ({max_columns} of more events shown)")
    return "\n".join(lines)


def render_step_table(trace: Trace) -> str:
    """Per-step summary: owner task, access count, locations."""
    from repro.bench.reporting import render_table

    per_step: Dict[int, List[MemoryEvent]] = defaultdict(list)
    for event in trace.memory_events():
        per_step[event.step].append(event)
    rows = []
    for step in sorted(per_step):
        events = per_step[step]
        locations: Dict[object, None] = {}
        for event in events:
            locations.setdefault(event.location)
        rows.append(
            [
                f"S{step}",
                str(events[0].task),
                str(len(events)),
                ", ".join(repr(loc) for loc in list(locations)[:4])
                + (" ..." if len(locations) > 4 else ""),
            ]
        )
    return render_table(
        ["step", "task", "accesses", "locations"], rows, title="step nodes"
    )


def render_violation_context(
    trace: Trace, violation: AtomicityViolation, max_columns: int = 60
) -> str:
    """The timeline restricted to the violation's metadata location(s),
    with the triple's accesses marked ``<A1>``/``<A2>``/``<A3>``.

    Matching is by (step, access type, location): the first unclaimed
    trace event matching each triple member gets the mark.
    """
    wanted = {violation.first.location, violation.second.location,
              violation.third.location}
    filtered = [
        event for event in trace.memory_events() if event.location in wanted
    ]
    marks: Dict[int, str] = {}
    for label, access in (("<A1>", violation.first), ("<A2>", violation.second),
                          ("<A3>", violation.third)):
        for event in filtered:
            if event.seq in marks:
                continue
            if (
                event.step == access.step
                and event.access_type == access.access_type
                and event.location == access.location
            ):
                marks[event.seq] = label
                break
    sub_trace = Trace(filtered, dpst=trace.dpst)
    header = violation.describe()
    timeline = render_timeline(sub_trace, max_columns=max_columns, marks=marks)
    return header + "\n\n" + timeline
