"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause.  The
subclasses distinguish the three layers of the system:

* :class:`DPSTError` -- structural misuse of the dynamic program structure
  tree (inserting under a step node, querying unknown nodes, ...).
* :class:`RuntimeUsageError` -- misuse of the task-parallel runtime API
  (releasing a lock that is not held, ``sync`` outside a task, reading an
  uninitialised location when strict mode is on, ...).
* :class:`CheckerError` -- internal consistency failures inside a checker.
* :class:`TraceError` -- malformed traces handed to replay / exploration.

None of these are raised to *report an atomicity violation*; violations are
ordinary data (see :mod:`repro.report`) because a dynamic analysis must keep
running after finding one.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class DPSTError(ReproError):
    """Structural misuse of a dynamic program structure tree."""


class RuntimeUsageError(ReproError):
    """Misuse of the task-parallel runtime API by a client program."""


class CheckerError(ReproError):
    """Internal consistency failure inside an atomicity checker."""


class TraceError(ReproError):
    """A recorded trace is malformed or inconsistent with its DPST."""


class WorkloadError(ReproError):
    """A benchmark workload was configured with invalid parameters."""
