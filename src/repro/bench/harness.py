"""Shared measurement harness for the benchmark modules.

Runs a workload under a named configuration and collects wall-clock time
plus the run characteristics Table 1 needs.  Configurations:

* ``baseline``  -- no observers, no DPST (the uninstrumented program);
* ``optimized`` -- the paper's checker;
* ``velodrome`` -- the reimplemented baseline checker;
* ``basic``     -- the unbounded-history checker (ablation).

``dpst_layout`` and ``lca_cache`` select the Figure 14 / LCA-cache
ablation variants.  Timings follow the paper's method: several repetitions
per configuration, averaged.
"""

from __future__ import annotations

import gc
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.checker import make_checker
from repro.runtime.program import RunResult, TaskProgram, run_program
from repro.workloads import WorkloadSpec


@dataclass
class Measurement:
    """Aggregated result of repeated runs of one configuration."""

    workload: str
    config: str
    elapsed: float                  # mean seconds per run
    runs: List[float] = field(default_factory=list)
    locations: int = 0
    dpst_nodes: int = 0
    lca_queries: int = 0
    lca_unique: int = 0
    memory_events: int = 0
    tasks: int = 0
    violations: int = 0

    @property
    def unique_lca_percent(self) -> Optional[float]:
        if self.lca_queries == 0:
            return None
        return 100.0 * self.lca_unique / self.lca_queries


def run_once(
    program: TaskProgram,
    config: str,
    dpst_layout: str = "array",
    lca_cache: bool = True,
) -> RunResult:
    """One run of *program* under *config*; see module docstring."""
    if config == "baseline":
        return run_program(program, build_dpst=False)
    checker = make_checker(config)
    return run_program(
        program,
        observers=[checker],
        dpst_layout=dpst_layout,
        lca_cache=lca_cache,
        collect_stats=True,
    )


def measure(
    spec: WorkloadSpec,
    config: str,
    scale: Optional[int] = None,
    repeats: int = 3,
    dpst_layout: str = "array",
    lca_cache: bool = True,
) -> Measurement:
    """Run *spec* ``repeats`` times under *config* and aggregate.

    The paper runs each benchmark five times and averages; the default
    here is three to keep the full matrix fast on a laptop.
    """
    actual_scale = spec.bench_scale if scale is None else scale
    # Warm-up run: first executions pay import/JIT-cache/allocator costs
    # that would otherwise show up as noise in per-config ratios.
    run_once(spec.build(actual_scale), config, dpst_layout=dpst_layout, lca_cache=lca_cache)
    timings: List[float] = []
    last: Optional[RunResult] = None
    # Timed region runs with the cyclic GC off (timeit's approach): a
    # collection pause landing inside one sub-millisecond run otherwise
    # dominates the per-config ratio, especially at repeats=1.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            program = spec.build(actual_scale)
            last = run_once(program, config, dpst_layout=dpst_layout, lca_cache=lca_cache)
            timings.append(last.elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    assert last is not None
    result = Measurement(
        workload=spec.name,
        config=config,
        elapsed=sorted(timings)[len(timings) // 2],  # median: robust to GC spikes
        runs=timings,
        locations=last.shadow.unique_locations,
        violations=len(last.report()),
    )
    if last.stats is not None:
        result.dpst_nodes = last.stats.dpst_nodes or 0
        result.lca_queries = last.stats.lca_queries or 0
        result.lca_unique = last.stats.lca_unique or 0
        result.memory_events = last.stats.memory_events
        result.tasks = last.stats.tasks
    elif last.dpst is not None:
        result.dpst_nodes = len(last.dpst)
    return result


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, as the paper uses for average slowdowns."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))
