"""Figure 14: array-based DPST vs linked DPST.

The paper's layout optimization overlays the DPST in a flat array of nodes
with parent indices instead of separately allocated linked nodes, reducing
checking overhead from 5.1x to 4.2x (biggest wins on LCA-query-heavy
applications).  This harness measures the optimized checker under both
layouts relative to the uninstrumented baseline.

Run: ``python -m repro.bench.fig14 [scale [repeats]]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.bench.harness import geometric_mean, measure
from repro.bench.reporting import render_bars, render_table
from repro.workloads import all_workloads


@dataclass
class LayoutRow:
    """Per-workload slowdowns of the two DPST layouts."""

    workload: str
    baseline: float
    array: float
    linked: float

    @property
    def array_slowdown(self) -> float:
        return self.array / self.baseline if self.baseline > 0 else 0.0

    @property
    def linked_slowdown(self) -> float:
        return self.linked / self.baseline if self.baseline > 0 else 0.0


def collect(scale: Optional[int] = None, repeats: int = 3) -> List[LayoutRow]:
    """Measure baseline and both DPST layouts for every workload."""
    rows: List[LayoutRow] = []
    for spec in all_workloads():
        base = measure(spec, "baseline", scale=scale, repeats=repeats)
        array = measure(
            spec, "optimized", scale=scale, repeats=repeats, dpst_layout="array"
        )
        linked = measure(
            spec, "optimized", scale=scale, repeats=repeats, dpst_layout="linked"
        )
        rows.append(
            LayoutRow(
                workload=spec.name,
                baseline=base.elapsed,
                array=array.elapsed,
                linked=linked.elapsed,
            )
        )
    return rows


def render(rows: List[LayoutRow]) -> str:
    """Render the Figure 14 reproduction: table plus ASCII bars."""
    table_rows = [
        [
            r.workload,
            f"{r.baseline * 1000:.1f}ms",
            f"{r.array_slowdown:.2f}x",
            f"{r.linked_slowdown:.2f}x",
        ]
        for r in rows
    ]
    geo_array = geometric_mean([r.array_slowdown for r in rows])
    geo_linked = geometric_mean([r.linked_slowdown for r in rows])
    table_rows.append(["geomean", "", f"{geo_array:.2f}x", f"{geo_linked:.2f}x"])
    table = render_table(
        ["Benchmark", "baseline", "array-DPST", "linked-DPST"],
        table_rows,
        title=(
            "Figure 14: array vs linked DPST slowdown "
            "(paper: 4.2x array / 5.1x linked geomean)"
        ),
    )
    bars = render_bars(
        [
            (
                r.workload,
                [
                    ("array-DPST ", r.array_slowdown),
                    ("linked-DPST", r.linked_slowdown),
                ],
            )
            for r in rows
        ]
        + [("geomean", [("array-DPST ", geo_array), ("linked-DPST", geo_linked)])],
        unit="x",
    )
    return table + "\n\n" + bars


def main(argv: Optional[List[str]] = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    scale = int(args[0]) if len(args) > 0 else None
    repeats = int(args[1]) if len(args) > 1 else 3
    print(render(collect(scale=scale, repeats=repeats)))


if __name__ == "__main__":
    main()
