"""Benchmark harnesses regenerating the paper's evaluation artifacts.

One module per table/figure (see DESIGN.md experiment index):

* :mod:`repro.bench.table1` -- benchmark characteristics (locations, DPST
  nodes, LCA queries, % unique LCA queries);
* :mod:`repro.bench.fig13`  -- checking overhead of the optimized checker
  vs the Velodrome baseline, per benchmark plus geometric mean;
* :mod:`repro.bench.fig14`  -- array-based vs linked DPST layouts;
* :mod:`repro.bench.ablation` -- extra ablations called out in DESIGN.md:
  LCA caching on/off and fixed vs unbounded metadata.

Each module is runnable (``python -m repro.bench.table1``) and exposes the
row-building functions the pytest benchmarks reuse.
"""

from repro.bench.harness import Measurement, measure, run_once

__all__ = ["Measurement", "measure", "run_once"]
