"""Table 1: benchmark characteristics under the optimized checker.

For every workload: the number of unique dynamic memory locations, the
number of DPST nodes, the number of LCA (parallelism) queries, and the
percentage of unique LCA queries.  The paper's absolute counts come from
full-size inputs on a 16-core Xeon; this reproduction runs laptop-scale
inputs, so compare *relative shape*: blackscholes issues zero LCA queries,
kmeans/raycast have the highest unique fractions, swaptions has the
largest DPST relative to its accesses.

Run: ``python -m repro.bench.table1 [scale]``.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.bench.harness import Measurement, measure
from repro.bench.reporting import format_count, render_table
from repro.workloads import all_workloads


def collect(scale: Optional[int] = None, repeats: int = 1) -> List[Measurement]:
    """Measure every workload once under the optimized checker."""
    return [
        measure(spec, "optimized", scale=scale, repeats=repeats)
        for spec in all_workloads()
    ]


def render(measurements: List[Measurement], include_paper: bool = True) -> str:
    """Render the Table 1 reproduction (optionally with the paper's row)."""
    headers = ["Benchmark", "Locations", "DPST nodes", "LCA queries", "% unique"]
    if include_paper:
        headers += ["paper locs", "paper nodes", "paper LCAs", "paper %"]
    specs = {spec.name: spec for spec in all_workloads()}
    rows = []
    for m in measurements:
        unique = m.unique_lca_percent
        row = [
            m.workload,
            format_count(m.locations),
            format_count(m.dpst_nodes),
            format_count(m.lca_queries),
            "-NA-" if unique is None else f"{unique:.2f}",
        ]
        if include_paper:
            paper = specs[m.workload].paper
            row += [
                format_count(paper.locations),
                format_count(paper.nodes),
                format_count(paper.lcas),
                "-NA-" if paper.unique_pct is None else f"{paper.unique_pct:.2f}",
            ]
        rows.append(row)
    return render_table(
        headers,
        rows,
        title="Table 1: benchmark characteristics (reproduction vs paper)",
    )


def main(argv: Optional[List[str]] = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    scale = int(args[0]) if args else None
    print(render(collect(scale=scale)))


if __name__ == "__main__":
    main()
