"""One-shot experiment report: every table/figure in a single run.

``python -m repro.bench.report [scale [repeats]]`` regenerates the whole
evaluation -- Table 1, Figures 13 and 14, both ablations, the suite and
failure-injection detection summaries -- and prints one self-contained
text report (the source material for EXPERIMENTS.md).  Use ``-o FILE`` to
also write it to disk.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench import ablation, fig13, fig14, table1
from repro.bench.reporting import render_table


def detection_summary() -> str:
    """Run the 36-program suite + failure injection; summarize verdicts."""
    from repro.checker import OptAtomicityChecker
    from repro.runtime import run_program
    from repro.suite import all_cases
    from repro.workloads.buggy import all_variants, location_head

    suite_ok = 0
    suite_bad: List[str] = []
    for case in all_cases():
        checker = OptAtomicityChecker()
        run_program(case.build(), observers=[checker])
        if set(checker.report.locations()) == set(case.expected):
            suite_ok += 1
        else:
            suite_bad.append(case.name)

    rows = []
    for variant in all_variants():
        checker = OptAtomicityChecker(mode="thorough")
        run_program(variant.build(1), observers=[checker])
        implicated = {location_head(l) for l in checker.report.locations()}
        precise = implicated <= set(variant.location_heads) and bool(implicated)
        rows.append(
            [
                variant.name,
                variant.base_workload,
                ",".join(sorted(implicated)),
                "ok" if precise else "IMPRECISE",
            ]
        )
    lines = [
        f"violation suite: {suite_ok}/36 exact"
        + (f" (mismatches: {suite_bad})" if suite_bad else ""),
        "",
        render_table(
            ["injected bug", "kernel", "implicated", "verdict"],
            rows,
            title="failure injection (thorough mode)",
        ),
    ]
    return "\n".join(lines)


def build_report(scale: Optional[int] = None, repeats: int = 3) -> str:
    """Assemble the full experiment report as one string."""
    started = time.perf_counter()
    sections = [
        "=" * 72,
        "repro -- full experiment report "
        f"(scale={scale if scale is not None else 'default'}, repeats={repeats})",
        "=" * 72,
        "",
        "## Detection",
        "",
        detection_summary(),
        "",
        "## Table 1",
        "",
        table1.render(table1.collect(scale=scale, repeats=1)),
        "",
        "## Figure 13",
        "",
        fig13.render(fig13.collect(scale=scale, repeats=repeats)),
        "",
        "## Figure 14",
        "",
        fig14.render(fig14.collect(scale=scale, repeats=repeats)),
        "",
        "## Ablation: LCA cache",
        "",
        ablation.render_lca_cache(ablation.collect_lca_cache(scale=scale, repeats=repeats)),
        "",
        "## Ablation: metadata",
        "",
        ablation.render_metadata(ablation.collect_metadata(scale=scale)),
        "",
        f"(report generated in {time.perf_counter() - started:.1f}s)",
    ]
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description="full experiment report")
    parser.add_argument("scale", nargs="?", type=int, default=None)
    parser.add_argument("repeats", nargs="?", type=int, default=3)
    parser.add_argument("-o", "--output", default=None, help="also write to file")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    report = build_report(scale=args.scale, repeats=args.repeats)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")


if __name__ == "__main__":
    main()
