"""Ablations called out in DESIGN.md (beyond the paper's own figures).

* ``lca_cache`` -- the LCA memoization the prototype uses ("we cache the
  frequently accessed LCA queries"): optimized checker with the memo table
  on vs off.  Table 1's unique-percentage column predicts the win: high
  unique fractions (kmeans, raycast) benefit the least.
* ``metadata`` -- the fixed 12+2-entry metadata of the optimized checker
  vs the unbounded access history of the basic checker, comparing both
  runtime and stored metadata entries.

Run: ``python -m repro.bench.ablation [lca_cache|metadata] [scale]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.bench.harness import geometric_mean, measure
from repro.bench.reporting import render_table
from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.runtime.program import run_program
from repro.workloads import all_workloads


@dataclass
class CacheRow:
    workload: str
    cached: float
    uncached: float
    unique_pct: Optional[float]

    @property
    def speedup(self) -> float:
        return self.uncached / self.cached if self.cached > 0 else 0.0


def collect_lca_cache(scale: Optional[int] = None, repeats: int = 3) -> List[CacheRow]:
    """Optimized checker with the LCA memo on vs off."""
    rows: List[CacheRow] = []
    for spec in all_workloads():
        cached = measure(spec, "optimized", scale=scale, repeats=repeats, lca_cache=True)
        uncached = measure(
            spec, "optimized", scale=scale, repeats=repeats, lca_cache=False
        )
        rows.append(
            CacheRow(
                workload=spec.name,
                cached=cached.elapsed,
                uncached=uncached.elapsed,
                unique_pct=cached.unique_lca_percent,
            )
        )
    return rows


def render_lca_cache(rows: List[CacheRow]) -> str:
    table_rows = [
        [
            r.workload,
            f"{r.cached * 1000:.1f}ms",
            f"{r.uncached * 1000:.1f}ms",
            f"{r.speedup:.2f}x",
            "-NA-" if r.unique_pct is None else f"{r.unique_pct:.1f}",
        ]
        for r in rows
    ]
    geo = geometric_mean([r.speedup for r in rows if r.speedup > 0])
    table_rows.append(["geomean", "", "", f"{geo:.2f}x", ""])
    return render_table(
        ["Benchmark", "cached", "uncached", "cache speedup", "% unique"],
        table_rows,
        title="Ablation: LCA-query caching (high % unique -> small speedup)",
    )


@dataclass
class MetadataRow:
    workload: str
    optimized_time: float
    basic_time: float
    optimized_entries: int
    optimized_max_per_location: int
    basic_entries: int
    accesses: int


def collect_metadata(scale: Optional[int] = None) -> List[MetadataRow]:
    """Fixed-size (optimized) vs unbounded (basic) metadata."""
    rows: List[MetadataRow] = []
    for spec in all_workloads():
        actual = spec.bench_scale if scale is None else scale
        opt = OptAtomicityChecker()
        result_opt = run_program(
            spec.build(actual), observers=[opt], collect_stats=True
        )
        basic = BasicAtomicityChecker()
        result_basic = run_program(spec.build(actual), observers=[basic])
        rows.append(
            MetadataRow(
                workload=spec.name,
                optimized_time=result_opt.elapsed,
                basic_time=result_basic.elapsed,
                optimized_entries=opt.total_global_entries(),
                optimized_max_per_location=opt.max_entries_per_location(),
                basic_entries=basic.total_history_entries(),
                accesses=result_opt.stats.memory_events if result_opt.stats else 0,
            )
        )
    return rows


def render_metadata(rows: List[MetadataRow]) -> str:
    table_rows = [
        [
            r.workload,
            f"{r.optimized_time * 1000:.1f}ms",
            f"{r.basic_time * 1000:.1f}ms",
            str(r.optimized_entries),
            str(r.optimized_max_per_location),
            str(r.basic_entries),
            str(r.accesses),
        ]
        for r in rows
    ]
    return render_table(
        [
            "Benchmark",
            "opt time",
            "basic time",
            "opt entries",
            "opt max/loc",
            "basic entries",
            "accesses",
        ],
        table_rows,
        title=(
            "Ablation: fixed 12-entry global metadata vs unbounded history "
            "(basic entries == dynamic accesses; opt max/loc <= 12)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    which = args[0] if args else "lca_cache"
    scale = int(args[1]) if len(args) > 1 else None
    if which == "lca_cache":
        print(render_lca_cache(collect_lca_cache(scale=scale)))
    elif which == "metadata":
        print(render_metadata(collect_metadata(scale=scale)))
    else:
        raise SystemExit(f"unknown ablation {which!r}")


if __name__ == "__main__":
    main()
