"""Text rendering for benchmark tables and bar "figures".

The paper's artifacts are one table and two bar charts; these helpers
render the same rows as aligned text tables plus ASCII bar charts so the
harness output can be compared side by side with the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def format_count(value: Optional[float]) -> str:
    """Human format matching Table 1's style: 9.87M, 638,282, 0, -NA-."""
    if value is None:
        return "-NA-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table with a header rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(
    series: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
    unit: str = "x",
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render grouped horizontal bars.

    *series* is ``[(group_label, [(bar_label, value), ...]), ...]`` -- one
    group per benchmark with one bar per configuration, like the paper's
    Figure 13/14 pairs of bars.
    """
    peak = max(
        (value for _, bars in series for _, value in bars if value > 0), default=1.0
    )
    label_width = max(
        (len(label) for _, bars in series for label, _ in bars), default=0
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for group, bars in series:
        lines.append(group)
        for label, value in bars:
            filled = int(round(width * value / peak)) if peak > 0 else 0
            bar = "#" * max(filled, 1 if value > 0 else 0)
            lines.append(f"  {label.ljust(label_width)} {bar} {value:.2f}{unit}")
    return "\n".join(lines)
