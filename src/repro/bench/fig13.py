"""Figure 13: checking overhead -- optimized checker vs Velodrome.

For every workload, the execution-time slowdown of (a) the optimized
atomicity checker and (b) the reimplemented Velodrome baseline, each
relative to the uninstrumented program, plus the geometric-mean row.  The
paper reports 4.2x (ours) vs 4.6x (Velodrome) on their C++ prototype; the
absolute Python numbers differ, but the comparison the figure makes --
our checker's overhead is in the same range as or below Velodrome's,
while additionally covering all schedules -- is what this harness checks.

Run: ``python -m repro.bench.fig13 [scale [repeats]]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.bench.harness import geometric_mean, measure
from repro.bench.reporting import render_bars, render_table
from repro.workloads import all_workloads


@dataclass
class OverheadRow:
    """Per-workload slowdowns relative to the uninstrumented baseline."""

    workload: str
    baseline: float
    optimized: float
    velodrome: float

    @property
    def optimized_slowdown(self) -> float:
        return self.optimized / self.baseline if self.baseline > 0 else 0.0

    @property
    def velodrome_slowdown(self) -> float:
        return self.velodrome / self.baseline if self.baseline > 0 else 0.0


def collect(scale: Optional[int] = None, repeats: int = 3) -> List[OverheadRow]:
    """Measure baseline/optimized/velodrome for every workload."""
    rows: List[OverheadRow] = []
    for spec in all_workloads():
        base = measure(spec, "baseline", scale=scale, repeats=repeats)
        optimized = measure(spec, "optimized", scale=scale, repeats=repeats)
        velodrome = measure(spec, "velodrome", scale=scale, repeats=repeats)
        rows.append(
            OverheadRow(
                workload=spec.name,
                baseline=base.elapsed,
                optimized=optimized.elapsed,
                velodrome=velodrome.elapsed,
            )
        )
    return rows


def render(rows: List[OverheadRow]) -> str:
    """Render the Figure 13 reproduction: table plus ASCII bars."""
    table_rows = [
        [
            r.workload,
            f"{r.baseline * 1000:.1f}ms",
            f"{r.optimized_slowdown:.2f}x",
            f"{r.velodrome_slowdown:.2f}x",
        ]
        for r in rows
    ]
    geo_opt = geometric_mean([r.optimized_slowdown for r in rows])
    geo_vel = geometric_mean([r.velodrome_slowdown for r in rows])
    table_rows.append(["geomean", "", f"{geo_opt:.2f}x", f"{geo_vel:.2f}x"])
    table = render_table(
        ["Benchmark", "baseline", "our checker", "velodrome"],
        table_rows,
        title=(
            "Figure 13: slowdown vs uninstrumented baseline "
            "(paper: 4.2x ours / 4.6x Velodrome geomean)"
        ),
    )
    bars = render_bars(
        [
            (
                r.workload,
                [
                    ("ours     ", r.optimized_slowdown),
                    ("velodrome", r.velodrome_slowdown),
                ],
            )
            for r in rows
        ]
        + [("geomean", [("ours     ", geo_opt), ("velodrome", geo_vel)])],
        unit="x",
    )
    return table + "\n\n" + bars


def main(argv: Optional[List[str]] = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    scale = int(args[0]) if len(args) > 0 else None
    repeats = int(args[1]) if len(args) > 1 else 3
    print(render(collect(scale=scale, repeats=repeats)))


if __name__ == "__main__":
    main()
