"""Atomicity-violation reports.

A checker never raises on a violation -- dynamic analyses must keep running
so that a single execution can surface *every* error.  Instead each checker
accumulates :class:`AtomicityViolation` records into a
:class:`ViolationReport`, which supports deduplication, filtering and
human-readable rendering.

The key object is the *unserializable triple* ``(A1, A2, A3)`` of the paper's
Figure 4: ``A1`` and ``A3`` are performed by the same step node of one task
and ``A2`` is performed by a step node of a logically parallel task.  The
triple witnesses a schedule in which ``A2`` interleaves between ``A1`` and
``A3`` and the resulting trace is not conflict serializable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

#: Version stamp of the report JSON layout (shard checkpoints, tooling).
REPORT_SCHEMA = "repro-report/1"

#: Access types.  Kept as plain strings for cheap comparisons and readable
#: reprs; the two legal values are re-exported as constants.
READ = "read"
WRITE = "write"

Location = Hashable


def _short(access_type: str) -> str:
    """Return the single-letter rendering of an access type."""
    return "W" if access_type == WRITE else "R"


@dataclass(frozen=True)
class AccessInfo:
    """One memory access as it appears in a violation report.

    Attributes
    ----------
    step:
        Identifier of the DPST step node that performed the access.
    access_type:
        :data:`READ` or :data:`WRITE`.
    location:
        The shared memory location accessed.
    task:
        Identifier of the task whose step performed the access, if known.
    lockset:
        The (versioned) set of lock names held at the access, if tracked.
    """

    step: int
    access_type: str
    location: Location
    task: Optional[int] = None
    lockset: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Render the access as e.g. ``W(x) by step 4 [task 2] {L}``."""
        parts = [f"{_short(self.access_type)}({self.location!r}) by step {self.step}"]
        if self.task is not None:
            parts.append(f"[task {self.task}]")
        if self.lockset:
            parts.append("{" + ", ".join(sorted(self.lockset)) + "}")
        return " ".join(parts)


@dataclass(frozen=True)
class AtomicityViolation:
    """An unserializable triple detected by a checker.

    ``first`` and ``third`` are the two accesses performed by the same step
    node; ``second`` is the interleaving access from a logically parallel
    step.  ``pattern`` is the three-letter code such as ``"RWR"`` (Fig. 4),
    and ``checker`` names the analysis that produced the report.
    """

    location: Location
    first: AccessInfo
    second: AccessInfo
    third: AccessInfo
    pattern: str
    checker: str = ""

    @property
    def key(self) -> Tuple[Location, int, int, int, str]:
        """Deduplication key: location, the three steps and the pattern."""
        return (
            self.location,
            self.first.step,
            self.second.step,
            self.third.step,
            self.pattern,
        )

    def describe(self) -> str:
        """Render a multi-line human-readable description."""
        lines = [
            f"Atomicity violation on location {self.location!r} "
            f"(pattern {self.pattern})"
        ]
        lines.append(f"  A1: {self.first.describe()}")
        lines.append(f"  A2: {self.second.describe()}  <-- interleaving parallel access")
        lines.append(f"  A3: {self.third.describe()}")
        if self.checker:
            lines.append(f"  reported by: {self.checker}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TraceCycleViolation:
    """A Velodrome-style violation: a cycle in the transactional HB graph.

    Velodrome reports a violation when the transaction (here: step node)
    graph of the *observed trace* acquires a cycle.  The report carries the
    transactions on the cycle and the location whose access closed it.
    """

    location: Location
    cycle: Tuple[int, ...]
    closing_access: AccessInfo
    checker: str = "velodrome"

    @property
    def key(self) -> Tuple[Location, Tuple[int, ...]]:
        return (self.location, tuple(sorted(self.cycle)))

    def describe(self) -> str:
        chain = " -> ".join(str(node) for node in self.cycle)
        return (
            f"Trace atomicity violation on location {self.location!r}: "
            f"transaction cycle {chain} closed by {self.closing_access.describe()}"
        )


class ViolationReport:
    """An append-only, deduplicating collection of violations.

    Checkers call :meth:`add` freely; duplicates (same location, steps and
    pattern) are recorded once.  The report behaves like a sequence of the
    distinct violations in first-seen order.
    """

    def __init__(self) -> None:
        self._violations: List[AtomicityViolation] = []
        self._cycles: List[TraceCycleViolation] = []
        self._seen: Dict[object, int] = {}
        #: Total number of ``add`` calls, including duplicates.  Useful for
        #: tests asserting how chatty a checker is.
        self.raw_count = 0

    # -- population ------------------------------------------------------

    def add(self, violation: AtomicityViolation) -> bool:
        """Record *violation*; return ``True`` iff it was not seen before."""
        self.raw_count += 1
        key = ("triple", violation.key)
        if key in self._seen:
            return False
        self._seen[key] = len(self._violations)
        self._violations.append(violation)
        return True

    def add_cycle(self, violation: TraceCycleViolation) -> bool:
        """Record a Velodrome cycle violation; return ``True`` if new."""
        self.raw_count += 1
        key = ("cycle", violation.key)
        if key in self._seen:
            return False
        self._seen[key] = len(self._cycles)
        self._cycles.append(violation)
        return True

    def extend(self, other: "ViolationReport") -> None:
        """Merge another report into this one (deduplicating).

        ``raw_count`` accumulates *other*'s full raw count -- the number
        of ``add`` calls its checker made, duplicates included -- not the
        number of distinct records copied over.  Chattiness statistics
        therefore survive any chain of ``extend``/``merge`` calls
        unchanged, even when shards report duplicate violations.
        """
        raw_before = self.raw_count
        for violation in other._violations:
            self.add(violation)
        for cycle in other._cycles:
            self.add_cycle(cycle)
        # The add() calls above counted each *distinct* record once;
        # restore the true total so duplicates are neither dropped nor
        # double-counted.
        self.raw_count = raw_before + other.raw_count

    @classmethod
    def merge(cls, reports: Iterable["ViolationReport"]) -> "ViolationReport":
        """Merge *reports* into a fresh deduplicated report.

        The workhorse of the sharded pipeline: per-shard reports are
        disjoint by location, so merging is pure concatenation, but the
        deduplication keys still guard against overlapping inputs.
        ``raw_count`` sums the inputs' raw counts (see :meth:`extend`).
        """
        merged = cls()
        for report in reports:
            merged.extend(report)
        return merged

    # -- queries ----------------------------------------------------------

    @property
    def violations(self) -> List[AtomicityViolation]:
        """The distinct triple violations, in first-seen order."""
        return list(self._violations)

    @property
    def cycles(self) -> List[TraceCycleViolation]:
        """The distinct trace-cycle violations, in first-seen order."""
        return list(self._cycles)

    def __len__(self) -> int:
        return len(self._violations) + len(self._cycles)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[object]:
        yield from self._violations
        yield from self._cycles

    def locations(self) -> List[Location]:
        """Distinct locations implicated in any violation, stable order."""
        seen: Dict[Location, None] = {}
        for violation in self._violations:
            seen.setdefault(violation.location)
        for cycle in self._cycles:
            seen.setdefault(cycle.location)
        return list(seen)

    def for_location(self, location: Location) -> List[AtomicityViolation]:
        """Triple violations reported against *location*."""
        return [v for v in self._violations if v.location == location]

    def patterns(self) -> List[str]:
        """Sorted distinct Fig. 4 pattern codes present in the report."""
        return sorted({v.pattern for v in self._violations})

    # -- rendering ---------------------------------------------------------

    def describe(self) -> str:
        """Render the whole report; ``"no violations"`` when empty."""
        if not self:
            return "no violations"
        blocks: List[str] = []
        for violation in self._violations:
            blocks.append(violation.describe())
        for cycle in self._cycles:
            blocks.append(cycle.describe())
        header = f"{len(self)} distinct violation(s):"
        return "\n".join([header, *blocks])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<ViolationReport {len(self)} violation(s)>"


def merge_reports(reports: Iterable[ViolationReport]) -> ViolationReport:
    """Merge many reports into a fresh deduplicated one.

    Functional alias of :meth:`ViolationReport.merge`.
    """
    return ViolationReport.merge(reports)


# ---------------------------------------------------------------------------
# Normalization (equivalence comparisons)
# ---------------------------------------------------------------------------
#
# Two reports produced by different pipeline configurations (engines,
# sharding, prefilter, replay) must be comparable without depending on
# first-seen order, dict iteration order, or the mutual orderability of
# heterogeneous location values.  The canonical forms below are what the
# equivalence tests and the differential fuzzing oracle
# (:mod:`repro.fuzz.oracle`) compare.


def location_key(location: Location) -> str:
    """A totally-ordered, type-stable key for any location value."""
    return repr(location)


def normalize_report(report: ViolationReport) -> Tuple[Tuple[Any, ...], Tuple[Any, ...]]:
    """The canonical order-independent form of *report*.

    Returns ``(triples, cycles)`` where ``triples`` is the sorted tuple of
    ``(location_key, pattern, first_step, second_step, third_step)`` rows
    and ``cycles`` the sorted tuple of ``(location_key, sorted_cycle)``
    rows.  Two reports over the *same* trace are equivalent iff their
    normal forms are equal, regardless of the order violations were found
    in or which pipeline configuration found them.
    """
    triples = tuple(
        sorted(
            (
                location_key(v.location),
                v.pattern,
                v.first.step,
                v.second.step,
                v.third.step,
            )
            for v in report.violations
        )
    )
    cycles = tuple(
        sorted(
            (location_key(c.location), tuple(sorted(c.cycle)))
            for c in report.cycles
        )
    )
    return (triples, cycles)


def normalize_locations(locations: Iterable[Location]) -> Tuple[str, ...]:
    """Sorted distinct :func:`location_key` values of a location iterable.

    For comparing a report's implicated locations against analyses that
    produce bare location sets (the analytic oracle, the interleaving
    explorer) on equal, totally-ordered footing.
    """
    return tuple(sorted({location_key(loc) for loc in locations}))


def normalized_locations(report: ViolationReport) -> Tuple[str, ...]:
    """Sorted distinct :func:`location_key` values implicated in *report*.

    The right granularity for comparing analyses that agree on *where*
    violations exist but legitimately differ in which witness triples they
    surface (e.g. the basic checker vs the optimized checker).
    """
    return normalize_locations(report.locations())


# ---------------------------------------------------------------------------
# JSON round-trip (shard checkpoints, external tooling)
# ---------------------------------------------------------------------------
#
# Locations are arbitrary hashable values (strings, ints, tuples ...);
# they reuse the trace serializer's tagged encoding so a report restored
# from JSON deduplicates and merges exactly like the original.  The
# imports are lazy to keep repro.report dependency-free at import time.


def _access_to_dict(access: AccessInfo) -> Dict[str, Any]:
    from repro.trace.serialize import encode_location

    return {
        "step": access.step,
        "access_type": access.access_type,
        "location": encode_location(access.location),
        "task": access.task,
        "lockset": list(access.lockset),
    }


def _access_from_dict(data: Dict[str, Any]) -> AccessInfo:
    from repro.trace.serialize import decode_location

    return AccessInfo(
        step=int(data["step"]),
        access_type=data["access_type"],
        location=decode_location(data["location"]),
        task=data.get("task"),
        lockset=tuple(data.get("lockset", ())),
    )


def report_to_dict(report: ViolationReport) -> Dict[str, Any]:
    """Encode *report* as one JSON-safe dict (schema ``repro-report/1``).

    First-seen order, ``raw_count`` and both violation kinds survive, so
    ``report_from_dict(report_to_dict(r))`` renders and merges exactly
    like ``r`` -- the property shard checkpoints rely on.
    """
    from repro.trace.serialize import encode_location

    return {
        "schema": REPORT_SCHEMA,
        "raw_count": report.raw_count,
        "violations": [
            {
                "location": encode_location(v.location),
                "first": _access_to_dict(v.first),
                "second": _access_to_dict(v.second),
                "third": _access_to_dict(v.third),
                "pattern": v.pattern,
                "checker": v.checker,
            }
            for v in report.violations
        ],
        "cycles": [
            {
                "location": encode_location(c.location),
                "cycle": list(c.cycle),
                "closing_access": _access_to_dict(c.closing_access),
                "checker": c.checker,
            }
            for c in report.cycles
        ],
    }


def report_from_dict(data: Dict[str, Any]) -> ViolationReport:
    """Inverse of :func:`report_to_dict`."""
    from repro.trace.serialize import decode_location

    if not isinstance(data, dict) or data.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"not a serialized ViolationReport: {type(data).__name__} "
            f"with schema {data.get('schema')!r}"
            if isinstance(data, dict)
            else f"not a serialized ViolationReport: {type(data).__name__}"
        )
    report = ViolationReport()
    for row in data.get("violations", []):
        report.add(
            AtomicityViolation(
                location=decode_location(row["location"]),
                first=_access_from_dict(row["first"]),
                second=_access_from_dict(row["second"]),
                third=_access_from_dict(row["third"]),
                pattern=row["pattern"],
                checker=row.get("checker", ""),
            )
        )
    for row in data.get("cycles", []):
        report.add_cycle(
            TraceCycleViolation(
                location=decode_location(row["location"]),
                cycle=tuple(row["cycle"]),
                closing_access=_access_from_dict(row["closing_access"]),
                checker=row.get("checker", "velodrome"),
            )
        )
    # The add() calls counted each distinct record once; restore the
    # recorded chattiness.
    report.raw_count = int(data.get("raw_count", report.raw_count))
    return report
