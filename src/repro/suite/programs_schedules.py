"""Suite category ``schedules``: violations invisible in the observed trace.

These programs execute, under the default serial executor, schedules in
which the offending accesses never actually interleave -- Velodrome-style
trace checking sees nothing -- yet a different legal schedule exhibits the
violation.  The optimized checker must report them from the one serial
trace (the paper's headline capability).
"""

from __future__ import annotations

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.suite import SuiteCase, register


# -- 1. The paper's Figure 1 running example ---------------------------------


def _fig1_t2(ctx: TaskContext) -> None:
    a = ctx.read("X")      # statement 6
    a = a + 1              # statement 7 (task-local)
    ctx.write("X", a)      # statement 8


def _fig1_t3(ctx: TaskContext) -> None:
    ctx.write("X", ctx.read("Y"))  # X = Y
    ctx.add("Y", 1)                # Y = Y + 1


def _fig1_main(ctx: TaskContext) -> None:
    ctx.write("X", 10)     # statement 1 (step S11)
    ctx.spawn(_fig1_t2)    # statement 2
    ctx.add("Y", 1)        # step S12 (between the spawns, as in Fig. 2)
    ctx.spawn(_fig1_t3)
    ctx.sync()


def _build_fig1() -> TaskProgram:
    return TaskProgram(
        _fig1_main,
        name="paper_figure1",
        initial_memory={"X": 0, "Y": 0},
    )


register(
    SuiteCase(
        name="sched_paper_figure1",
        category="schedules",
        description=(
            "The paper's running example (Fig. 1/5): T2's read-write pair on "
            "X with T3's parallel write forms an RWW triple even though the "
            "observed trace executes each step atomically."
        ),
        build=_build_fig1,
        expected=frozenset({"X"}),
    )
)


# -- 2/3. Pair-first and interleaver-first serial orders ------------------------


def _rmw_task(ctx: TaskContext) -> None:
    value = ctx.read("X")
    ctx.write("X", value + 1)


def _write_task(ctx: TaskContext) -> None:
    ctx.write("X", 100)


def _build_pair_first() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_rmw_task)     # runs to completion first (child-first)
        ctx.spawn(_write_task)   # interleaver appears later in the trace
        ctx.sync()

    return TaskProgram(main, name="pair_first", initial_memory={"X": 0})


def _build_interleaver_first() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_write_task)   # interleaver completes before the pair
        ctx.spawn(_rmw_task)
        ctx.sync()

    return TaskProgram(main, name="interleaver_first", initial_memory={"X": 0})


register(
    SuiteCase(
        name="sched_pair_first",
        category="schedules",
        description=(
            "Read-modify-write pair completes before the interleaving write "
            "appears in the serial trace; the violation exists only in other "
            "schedules."
        ),
        build=_build_pair_first,
        expected=frozenset({"X"}),
    )
)

register(
    SuiteCase(
        name="sched_interleaver_first",
        category="schedules",
        description=(
            "The interleaving write appears in the trace before the pair; "
            "exercises the Figure 8 first-access-by-current-task checks."
        ),
        build=_build_interleaver_first,
        expected=frozenset({"X"}),
    )
)


# -- 4. Violation between cousin tasks across nesting levels ----------------------


def _grandchild(ctx: TaskContext) -> None:
    value = ctx.read("X")
    ctx.write("X", value * 2)


def _child_spawner(ctx: TaskContext) -> None:
    ctx.spawn(_grandchild)
    ctx.sync()


def _build_cousins() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_child_spawner)   # pair lives two levels down
        ctx.spawn(_write_task)      # interleaver is a direct child
        ctx.sync()

    return TaskProgram(main, name="cousins", initial_memory={"X": 0})


register(
    SuiteCase(
        name="sched_cousin_tasks",
        category="schedules",
        description=(
            "The read-write pair lives in a grandchild task, the interleaving "
            "write in an uncle task; parallelism crosses two DPST levels."
        ),
        build=_build_cousins,
        expected=frozenset({"X"}),
    )
)
