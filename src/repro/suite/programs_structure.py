"""Suite category ``structure``: step-boundary and ordering subtleties.

The atomic region of the paper's specification is the *step node* -- a
maximal run of instructions without task-management constructs.  A spawn
or sync therefore *ends* the region: accesses on either side of a spawn
belong to different steps and never form a two-access pattern.  These
programs pin that semantics down.
"""

from __future__ import annotations

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.suite import SuiteCase, register


def _writer(ctx: TaskContext) -> None:
    ctx.write("X", 100)


def _rmw(ctx: TaskContext) -> None:
    value = ctx.read("X")
    ctx.write("X", value + 1)


# -- 1. A spawn splits the parent's pair: safe -----------------------------------


def _build_spawn_splits_pair() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        value = ctx.read("X")     # step S_a
        ctx.spawn(_writer)        # ends S_a
        ctx.write("X", value + 1)  # step S_b: different atomic region
        ctx.sync()

    return TaskProgram(main, name="spawn_splits_pair", initial_memory={"X": 0})


register(
    SuiteCase(
        name="struct_spawn_splits_pair",
        category="structure",
        description=(
            "The parent reads X, spawns a writer, then writes X.  The spawn "
            "ends the step, so read and write are in different atomic "
            "regions: by the paper's specification this is NOT an atomicity "
            "violation (the programmer inserted a task boundary)."
        ),
        build=_build_spawn_splits_pair,
        expected=frozenset(),
    )
)


# -- 2. Pair completes before the spawn: safe -----------------------------------------


def _build_pair_before_spawn() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        value = ctx.read("X")
        ctx.write("X", value + 1)   # pair completes in the pre-spawn step
        ctx.spawn(_writer)
        ctx.sync()

    return TaskProgram(main, name="pair_before_spawn", initial_memory={"X": 0})


register(
    SuiteCase(
        name="struct_pair_before_spawn",
        category="structure",
        description=(
            "The parent's pair completes before any task exists; the "
            "child's write is in series with it (the pre-spawn step is the "
            "left, non-async child of the LCA)."
        ),
        build=_build_pair_before_spawn,
        expected=frozenset(),
    )
)


# -- 3. Pair in the continuation after a spawn: violation ---------------------------------


def _build_pair_in_continuation() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_writer)
        value = ctx.read("X")        # continuation step, parallel with child
        ctx.write("X", value + 1)
        ctx.sync()

    return TaskProgram(main, name="pair_in_continuation", initial_memory={"X": 0})


register(
    SuiteCase(
        name="struct_pair_in_continuation",
        category="structure",
        description=(
            "The pair lives in the parent's continuation step, which runs "
            "logically in parallel with the spawned writer (the Figure 2 "
            "S12-vs-S2 relationship)."
        ),
        build=_build_pair_in_continuation,
        expected=frozenset({"X"}),
    )
)


# -- 4. Sync between sibling spawns: safe ---------------------------------------------------


def _build_sync_between_siblings() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_rmw)
        ctx.sync()
        ctx.spawn(_writer)
        ctx.sync()

    return TaskProgram(main, name="sync_between_siblings", initial_memory={"X": 0})


register(
    SuiteCase(
        name="struct_sync_between_siblings",
        category="structure",
        description=(
            "Each sync closes the implicit finish scope, so the second "
            "spawn's finish node is a later sibling: the tasks are in "
            "series."
        ),
        build=_build_sync_between_siblings,
        expected=frozenset(),
    )
)


# -- 5. Two parallel pairs: violations in both directions --------------------------------------


def _build_dueling_pairs() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_rmw)
        ctx.spawn(_rmw)
        ctx.sync()

    return TaskProgram(main, name="dueling_pairs", initial_memory={"X": 0})


register(
    SuiteCase(
        name="struct_dueling_pairs",
        category="structure",
        description=(
            "Two parallel read-modify-write pairs on one location: each "
            "task's write interleaves the other's pair (the classic lost "
            "update, RWW in both directions)."
        ),
        build=_build_dueling_pairs,
        expected=frozenset({"X"}),
    )
)
