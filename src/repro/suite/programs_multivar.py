"""Suite category ``multivar``: multi-variable atomicity groups.

Section 3: "When multiple locations are required to be accessed atomically,
our approach provides the same metadata to all those locations."  Grouped
locations share one metadata cell, so a write to *any* member interleaving
between two member accesses of one step is a violation of the group.
"""

from __future__ import annotations

from repro.checker.annotations import AtomicAnnotations
from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.suite import SuiteCase, register

GROUP_KEY = ("group", "account")


def _transfer_reader(ctx: TaskContext) -> None:
    # Reads both halves of the account; expects a consistent snapshot.
    checking = ctx.read("checking")
    savings = ctx.read("savings")
    ctx.write(("total", ctx.task_id), checking + savings)


def _transfer_writer(ctx: TaskContext) -> None:
    # Moves 10 from checking to savings (two writes, one step).
    ctx.add("checking", -10)
    ctx.add("savings", +10)


def _single_deposit(ctx: TaskContext) -> None:
    ctx.write("savings", 500)


def _group_annotations() -> AtomicAnnotations:
    annotations = AtomicAnnotations()
    annotations.annotate_group("account", ["checking", "savings"])
    # Per-task scratch outputs are not part of the atomicity spec.
    annotations.annotate_prefix("total")
    return annotations


# -- 1. Snapshot reader vs parallel deposit: group violation ---------------------


def _build_group_violation() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_transfer_reader)
        ctx.spawn(_single_deposit)
        ctx.sync()

    return TaskProgram(
        main,
        name="group_snapshot",
        initial_memory={"checking": 100, "savings": 100},
        annotations=_group_annotations(),
    )


register(
    SuiteCase(
        name="multivar_snapshot_violation",
        category="multivar",
        description=(
            "A reader takes a two-variable snapshot (checking then savings) "
            "while a parallel task writes savings: reads of different group "
            "members with an interleaving member write (RWR on the group)."
        ),
        build=_build_group_violation,
        expected=frozenset({GROUP_KEY}),
    )
)


# -- 2. Grouped accesses in series: safe -----------------------------------------


def _build_group_safe() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_transfer_reader)
        ctx.sync()                     # reader completes before the deposit
        ctx.spawn(_single_deposit)
        ctx.sync()

    return TaskProgram(
        main,
        name="group_series",
        initial_memory={"checking": 100, "savings": 100},
        annotations=_group_annotations(),
    )


register(
    SuiteCase(
        name="multivar_series_safe",
        category="multivar",
        description=(
            "Same reader and depositor, but separated by a sync: the steps "
            "are in series, so the shared group metadata never sees parallel "
            "accesses."
        ),
        build=_build_group_safe,
        expected=frozenset(),
    )
)


# -- 3. The same program without grouping is (wrongly) quiet ------------------------


def _build_ungrouped() -> TaskProgram:
    annotations = AtomicAnnotations()
    annotations.annotate("checking")       # each variable its own cell
    annotations.annotate("savings")

    def main(ctx: TaskContext) -> None:
        ctx.spawn(_transfer_reader)
        ctx.spawn(_single_deposit)
        ctx.sync()

    return TaskProgram(
        main,
        name="group_missing",
        initial_memory={"checking": 100, "savings": 100},
        annotations=annotations,
    )


register(
    SuiteCase(
        name="multivar_ungrouped_misses",
        category="multivar",
        description=(
            "The snapshot program with per-variable annotations instead of a "
            "group: each location sees at most one access per step, so no "
            "single-variable triple exists -- demonstrating why multi-variable "
            "violations need shared metadata (MUVI-style)."
        ),
        build=_build_ungrouped,
        expected=frozenset(),
    )
)


# -- 4. Transfer vs transfer: write-write group violation -----------------------------


def _build_group_transfers() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_transfer_writer)
        ctx.spawn(_transfer_writer)
        ctx.sync()

    return TaskProgram(
        main,
        name="group_transfers",
        initial_memory={"checking": 100, "savings": 100},
        annotations=_group_annotations(),
    )


register(
    SuiteCase(
        name="multivar_concurrent_transfers",
        category="multivar",
        description=(
            "Two parallel transfers each update both group members; the "
            "other transfer's writes interleave between a transfer's two "
            "member updates (multiple unserializable group triples)."
        ),
        build=_build_group_transfers,
        expected=frozenset({GROUP_KEY}),
    )
)
