"""Suite category ``safe``: programs that must produce no report.

Precision checks: the paper claims zero false positives.  These programs
combine parallelism, shared data and even data races in ways that are
nevertheless conflict serializable at step granularity.
"""

from __future__ import annotations

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.suite import SuiteCase, register


# -- 1. Purely sequential RMW chains ------------------------------------------


def _build_sequential() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        for _ in range(5):
            value = ctx.read("X")
            ctx.write("X", value + 1)

    return TaskProgram(main, name="sequential", initial_memory={"X": 0})


register(
    SuiteCase(
        name="safe_sequential",
        category="safe",
        description="No tasks at all: every access is in one step.",
        build=_build_sequential,
        expected=frozenset(),
    )
)


# -- 2. Sync separates the pair from the writer -----------------------------------


def _rmw(ctx: TaskContext) -> None:
    value = ctx.read("X")
    ctx.write("X", value + 1)


def _writer(ctx: TaskContext) -> None:
    ctx.write("X", 100)


def _build_sync_separates() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_rmw)
        ctx.sync()            # the pair completes here
        ctx.spawn(_writer)
        ctx.sync()

    return TaskProgram(main, name="sync_separates", initial_memory={"X": 0})


register(
    SuiteCase(
        name="safe_sync_separates",
        category="safe",
        description=(
            "The writer is spawned only after the sync that joins the "
            "pair-performing task: series in the DPST, no violation."
        ),
        build=_build_sync_separates,
        expected=frozenset(),
    )
)


# -- 3. Racy single accesses: a data race but NOT an atomicity violation ------------


def _single_write(ctx: TaskContext) -> None:
    ctx.write("X", ctx.task_id)


def _build_racy_singles() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        for _ in range(4):
            ctx.spawn(_single_write)
        ctx.sync()

    return TaskProgram(main, name="racy_singles", initial_memory={"X": 0})


register(
    SuiteCase(
        name="safe_race_without_violation",
        category="safe",
        description=(
            "Four parallel tasks race on a single write each.  Every data "
            "race is present, but no step performs two accesses, so no "
            "atomicity triple exists -- races and atomicity violations are "
            "different specifications (paper Section 1)."
        ),
        build=_build_racy_singles,
        expected=frozenset(),
    )
)


# -- 4. Correct locked reduction ---------------------------------------------------------


def _locked_add(ctx: TaskContext, amount: int) -> None:
    with ctx.lock("sum_lock"):
        total = ctx.read("sum")
        ctx.write("sum", total + amount)


def _build_locked_reduction() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        for amount in range(1, 6):
            ctx.spawn(_locked_add, amount)
        ctx.sync()

    return TaskProgram(main, name="locked_reduction", initial_memory={"sum": 0})


register(
    SuiteCase(
        name="safe_locked_reduction",
        category="safe",
        description=(
            "The textbook-correct reduction: every read-modify-write of the "
            "accumulator happens inside one critical section of one lock."
        ),
        build=_build_locked_reduction,
        expected=frozenset(),
    )
)
