"""The 36-program atomicity-violation test suite.

The paper's evaluation: *"We have built a test suite of 36 programs that
exercise various kinds of atomicity violations.  Our prototype detected
all these violations without false positives."*  This package reproduces
that suite as 36 small :class:`~repro.runtime.program.TaskProgram`
builders with ground-truth expectations, grouped into seven categories:

* ``patterns``   -- the eight three-access shapes of Figure 4;
* ``schedules``  -- violations hidden from the observed (serial) schedule,
  including the paper's Figure 1 running example;
* ``locks``      -- critical sections, lock versioning (Figure 11), and
  the paper's same-critical-section rule;
* ``multivar``   -- multi-variable atomicity groups;
* ``nesting``    -- nested spawns and explicit finish scopes;
* ``safe``       -- programs that must produce **no** report (precision);
* ``structure``  -- step-boundary subtleties (a spawn ends the atomic
  region, sync ordering, sibling patterns).

Each :class:`SuiteCase` records the metadata keys the checkers must
report.  Cases marked ``oracle_divergent`` exercise the paper's documented
same-critical-section rule, where the checker's verdict intentionally
differs from the pure schedule-enumeration oracle (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.runtime.program import TaskProgram


@dataclass(frozen=True)
class SuiteCase:
    """One suite program plus its ground truth."""

    name: str
    category: str
    description: str
    build: Callable[[], TaskProgram]
    #: Metadata keys the checkers must report, exactly (no false positives).
    expected: FrozenSet[Hashable]
    #: True when the paper's lock rule intentionally diverges from the
    #: schedule-enumeration oracle on this program.
    oracle_divergent: bool = False

    @property
    def violating(self) -> bool:
        return bool(self.expected)


_REGISTRY: Dict[str, SuiteCase] = {}


def register(case: SuiteCase) -> SuiteCase:
    """Add *case* to the registry (suite modules call this at import)."""
    if case.name in _REGISTRY:
        raise ValueError(f"duplicate suite case {case.name!r}")
    _REGISTRY[case.name] = case
    return case


def _load() -> None:
    # Importing the program modules populates the registry.
    from repro.suite import (  # noqa: F401
        programs_patterns,
        programs_schedules,
        programs_locks,
        programs_multivar,
        programs_nesting,
        programs_safe,
        programs_structure,
    )


def all_cases() -> List[SuiteCase]:
    """Every suite case, in registration order."""
    _load()
    return list(_REGISTRY.values())


def get(name: str) -> SuiteCase:
    """Look up one case by name."""
    _load()
    return _REGISTRY[name]


def by_category() -> Dict[str, List[SuiteCase]]:
    """Cases grouped by category, each group in registration order."""
    grouped: Dict[str, List[SuiteCase]] = {}
    for case in all_cases():
        grouped.setdefault(case.category, []).append(case)
    return grouped


def violating_cases() -> List[SuiteCase]:
    """The cases expected to report at least one violation."""
    return [case for case in all_cases() if case.violating]


def safe_cases() -> List[SuiteCase]:
    """The cases expected to report nothing (precision checks)."""
    return [case for case in all_cases() if not case.violating]
