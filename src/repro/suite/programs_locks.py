"""Suite category ``locks``: critical sections and lock versioning.

Covers Section 3.3: two accesses in *different* critical sections of the
same lock still form a two-access pattern (lock versioning gives the
re-acquired lock a fresh name), while two accesses in the *same* critical
section never do.  Also exercises the documented divergence between the
paper's same-critical-section rule and the raw schedule oracle when the
interleaver ignores the lock discipline.
"""

from __future__ import annotations

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.suite import SuiteCase, register


# -- 1. Figure 11: data-race-free program with an atomicity violation ---------


def _fig11_t2(ctx: TaskContext) -> None:
    with ctx.lock("L"):
        a = ctx.read("X")          # first critical section
    a = a + 1
    with ctx.lock("L"):
        ctx.write("X", a)          # second critical section (lock re-acquired)


def _fig11_t3(ctx: TaskContext) -> None:
    with ctx.lock("L"):
        ctx.write("X", ctx.read("Y"))
    ctx.add("Y", 1)


def _build_fig11() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.write("X", 10)
        ctx.spawn(_fig11_t2)
        ctx.add("Y", 1)
        ctx.spawn(_fig11_t3)
        ctx.sync()

    return TaskProgram(main, name="paper_figure11", initial_memory={"X": 0, "Y": 0})


register(
    SuiteCase(
        name="lock_paper_figure11",
        category="locks",
        description=(
            "The paper's Figure 11: data-race free, but T2 reads and writes X "
            "in two separate critical sections of L; T3's write can land "
            "between them.  Lock versioning makes the locksets {L} and {L#1} "
            "disjoint, so the RWW pattern is formed and reported."
        ),
        build=_build_fig11,
        expected=frozenset({"X"}),
    )
)


# -- 2. Same critical section: protected pair, locked interleaver ---------------


def _same_cs_pair(ctx: TaskContext) -> None:
    with ctx.lock("L"):
        value = ctx.read("X")
        ctx.write("X", value + 1)


def _locked_writer(ctx: TaskContext) -> None:
    with ctx.lock("L"):
        ctx.write("X", 100)


def _build_same_cs() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_same_cs_pair)
        ctx.spawn(_locked_writer)
        ctx.sync()

    return TaskProgram(main, name="same_cs", initial_memory={"X": 0})


register(
    SuiteCase(
        name="lock_same_critical_section",
        category="locks",
        description=(
            "Both accesses of the pair sit in one critical section of L and "
            "the parallel writer also takes L: mutual exclusion keeps the "
            "interleaver out, no violation."
        ),
        build=_build_same_cs,
        expected=frozenset(),
    )
)


# -- 3. Same critical section, but the interleaver ignores the lock --------------


def _unlocked_writer(ctx: TaskContext) -> None:
    ctx.write("X", 100)


def _build_same_cs_rogue() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_same_cs_pair)
        ctx.spawn(_unlocked_writer)
        ctx.sync()

    return TaskProgram(main, name="same_cs_rogue", initial_memory={"X": 0})


register(
    SuiteCase(
        name="lock_same_cs_rogue_writer",
        category="locks",
        description=(
            "The pair is protected by one critical section but the parallel "
            "writer takes no lock.  The schedule oracle finds a violation "
            "(the rogue write can physically interleave); the paper's rule "
            "-- same critical section => never a pattern -- reports nothing. "
            "Documented false negative under inconsistent locking."
        ),
        build=_build_same_cs_rogue,
        expected=frozenset(),
        oracle_divergent=True,
    )
)


# -- 4. Pair under two different locks ----------------------------------------------


def _two_lock_pair(ctx: TaskContext) -> None:
    with ctx.lock("L"):
        ctx.read("X")
    with ctx.lock("M"):
        ctx.write("X", 5)


def _build_two_locks() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_two_lock_pair)
        ctx.spawn(_locked_writer)    # takes L
        ctx.sync()

    return TaskProgram(main, name="two_locks", initial_memory={"X": 0})


register(
    SuiteCase(
        name="lock_two_different_locks",
        category="locks",
        description=(
            "The pair's accesses are guarded by two different locks (L then "
            "M): disjoint locksets, pattern formed, parallel L-guarded write "
            "interleaves between the critical sections."
        ),
        build=_build_two_locks,
        expected=frozenset({"X"}),
    )
)


# -- 5. Consistent whole-RMW locking: correct program ---------------------------------


def _build_locked_counter() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        for _ in range(3):
            ctx.spawn(_same_cs_pair)
        ctx.sync()

    return TaskProgram(main, name="locked_counter", initial_memory={"X": 0})


register(
    SuiteCase(
        name="lock_consistent_counter",
        category="locks",
        description=(
            "Three parallel tasks each increment X inside one critical "
            "section of L: the textbook-correct counter, no violation."
        ),
        build=_build_locked_counter,
        expected=frozenset(),
    )
)


# -- 6. Read-read pair split across critical sections ------------------------------------


def _double_read(ctx: TaskContext) -> None:
    with ctx.lock("L"):
        first = ctx.read("X")
    with ctx.lock("L"):
        second = ctx.read("X")
    ctx.write(("diff", ctx.task_id), second - first)


def _build_split_reads() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_double_read)
        ctx.spawn(_locked_writer)
        ctx.sync()

    return TaskProgram(
        main,
        name="split_reads",
        initial_memory={"X": 0},
    )


register(
    SuiteCase(
        name="lock_versioned_read_read",
        category="locks",
        description=(
            "Two reads of X in two critical sections of L (versioned L vs "
            "L#1) with a parallel L-guarded write: the RWR triple -- the "
            "reads can observe different values."
        ),
        build=_build_split_reads,
        expected=frozenset({"X"}),
    )
)
