"""Extended combinatorial suite: every triple x locking x nesting.

The curated 36-program suite samples the interesting space; this module
*enumerates* a systematic slice of it with ground truth computed from
first principles rather than written by hand:

* all eight Figure 4 access triples (A1/A3 by the pair task, A2 by the
  interleaver);
* three locking modes for the pair -- ``none`` (no locks), ``same_cs``
  (both accesses in one critical section of L), ``split_cs`` (two
  critical sections of L, exercising lock versioning);
* two structural placements -- ``flat`` (pair and interleaver are sibling
  tasks) and ``nested`` (the pair lives in a grandchild task under an
  extra finish level).

Expected verdict, derived from the paper's semantics:

    violation  <=>  the triple is unserializable (Fig. 4)
                AND the pair is separable (locking mode != same_cs)

-- structure never changes the verdict here because both placements keep
the pair logically parallel to the interleaver, which is itself a useful
invariant to test.  48 cases total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, List, Tuple

from repro.checker.patterns import is_unserializable_triple, triple_code
from repro.report import READ, WRITE
from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext

LOCK_MODES = ("none", "same_cs", "split_cs")
PLACEMENTS = ("flat", "nested")


@dataclass(frozen=True)
class ExtendedCase:
    """One generated case with its derived ground truth."""

    name: str
    a1: str
    a2: str
    a3: str
    lock_mode: str
    placement: str

    @property
    def code(self) -> str:
        return triple_code(self.a1, self.a2, self.a3)

    @property
    def expected(self) -> FrozenSet[str]:
        unserializable = is_unserializable_triple(self.a1, self.a2, self.a3)
        separable = self.lock_mode != "same_cs"
        return frozenset({"X"}) if (unserializable and separable) else frozenset()

    def build(self) -> TaskProgram:
        return _build_program(self)


def _access(ctx: TaskContext, access_type: str) -> None:
    if access_type == READ:
        ctx.read("X")
    else:
        ctx.write("X", ctx.task_id)


def _pair_body(ctx: TaskContext, a1: str, a3: str, lock_mode: str) -> None:
    """The A1/A3 pair under the requested locking discipline."""
    if lock_mode == "none":
        _access(ctx, a1)
        _access(ctx, a3)
    elif lock_mode == "same_cs":
        with ctx.lock("L"):
            _access(ctx, a1)
            _access(ctx, a3)
    elif lock_mode == "split_cs":
        with ctx.lock("L"):
            _access(ctx, a1)
        with ctx.lock("L"):
            _access(ctx, a3)
    else:  # pragma: no cover - enum guarded
        raise ValueError(lock_mode)


def _interleaver_body(ctx: TaskContext, a2: str, lock_mode: str) -> None:
    """The A2 access; it respects L when the pair uses L (consistent
    discipline, so checker semantics and schedule semantics agree)."""
    if lock_mode == "none":
        _access(ctx, a2)
    else:
        with ctx.lock("L"):
            _access(ctx, a2)


def _nested_pair_spawner(ctx: TaskContext, a1: str, a3: str, lock_mode: str) -> None:
    with ctx.finish():
        ctx.spawn(_pair_body, a1, a3, lock_mode)


def _build_program(case: ExtendedCase) -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        if case.placement == "flat":
            ctx.spawn(_pair_body, case.a1, case.a3, case.lock_mode)
        else:
            ctx.spawn(_nested_pair_spawner, case.a1, case.a3, case.lock_mode)
        ctx.spawn(_interleaver_body, case.a2, case.lock_mode)
        ctx.sync()

    return TaskProgram(main, name=case.name, initial_memory={"X": 0})


def all_extended_cases() -> List[ExtendedCase]:
    """All 48 generated cases."""
    cases: List[ExtendedCase] = []
    for a1 in (READ, WRITE):
        for a2 in (READ, WRITE):
            for a3 in (READ, WRITE):
                for lock_mode in LOCK_MODES:
                    for placement in PLACEMENTS:
                        code = triple_code(a1, a2, a3).lower()
                        cases.append(
                            ExtendedCase(
                                name=f"ext_{code}_{lock_mode}_{placement}",
                                a1=a1,
                                a2=a2,
                                a3=a3,
                                lock_mode=lock_mode,
                                placement=placement,
                            )
                        )
    return cases
