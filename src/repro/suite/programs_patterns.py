"""Suite category ``patterns``: the eight triples of Figure 4.

Each program spawns two parallel tasks: a *pair* task performing accesses
``A1`` then ``A3`` to ``X`` within one step node, and an *interleaver*
task performing the single access ``A2``.  The five unserializable shapes
(RWR, RWW, WRW, WWR, WWW) must be reported on ``X``; the three
serializable shapes (RRR, RRW, WRR) must produce no report.
"""

from __future__ import annotations

from repro.report import READ, WRITE
from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.suite import SuiteCase, register
from repro.checker.patterns import is_serializable


def _do(ctx: TaskContext, access_type: str) -> None:
    if access_type == READ:
        ctx.read("X")
    else:
        ctx.write("X", ctx.task_id)


def _pair_task(ctx: TaskContext, a1: str, a3: str) -> None:
    _do(ctx, a1)
    _do(ctx, a3)


def _single_task(ctx: TaskContext, a2: str) -> None:
    _do(ctx, a2)


def _make_builder(a1: str, a2: str, a3: str):
    def build() -> TaskProgram:
        def main(ctx: TaskContext) -> None:
            ctx.spawn(_pair_task, a1, a3)
            ctx.spawn(_single_task, a2)
            ctx.sync()

        return TaskProgram(
            main,
            name=f"pattern_{_code(a1, a2, a3)}",
            initial_memory={"X": 0},
        )

    return build


def _code(a1: str, a2: str, a3: str) -> str:
    return "".join("W" if t == WRITE else "R" for t in (a1, a2, a3))


def _register_all() -> None:
    for a1 in (READ, WRITE):
        for a2 in (READ, WRITE):
            for a3 in (READ, WRITE):
                code = _code(a1, a2, a3)
                serializable = is_serializable(a1, a2, a3)
                register(
                    SuiteCase(
                        name=f"pattern_{code.lower()}",
                        category="patterns",
                        description=(
                            f"Figure 4 triple {code}: pair task does "
                            f"{code[0]},{code[2]} on X; parallel task does "
                            f"{code[1]} -- "
                            + ("serializable" if serializable else "unserializable")
                        ),
                        build=_make_builder(a1, a2, a3),
                        expected=frozenset() if serializable else frozenset({"X"}),
                    )
                )


_register_all()
