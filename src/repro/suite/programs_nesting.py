"""Suite category ``nesting``: nested spawns and explicit finish scopes.

Exercises the DPST parallelism rule across deep trees: violations between
tasks at different nesting levels, and safety created by finish scopes
that force series execution.
"""

from __future__ import annotations

from repro.runtime.program import TaskProgram
from repro.runtime.task import TaskContext
from repro.suite import SuiteCase, register


def _rmw(ctx: TaskContext) -> None:
    value = ctx.read("X")
    ctx.write("X", value + 1)


def _writer(ctx: TaskContext) -> None:
    ctx.write("X", 100)


# -- 1. Finish scope forces series: safe ---------------------------------------


def _build_finish_isolates() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        with ctx.finish():
            ctx.spawn(_rmw)       # completes before the finish block exits
        ctx.spawn(_writer)        # strictly after the pair
        ctx.sync()

    return TaskProgram(main, name="finish_isolates", initial_memory={"X": 0})


register(
    SuiteCase(
        name="nest_finish_isolates",
        category="nesting",
        description=(
            "The read-modify-write pair runs inside an explicit finish "
            "scope; the writer is spawned after it closes.  The DPST places "
            "them in series: no violation."
        ),
        build=_build_finish_isolates,
        expected=frozenset(),
    )
)


# -- 2. Parallel siblings inside one finish: violation ---------------------------


def _build_finish_parallel() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        with ctx.finish():
            ctx.spawn(_rmw)
            ctx.spawn(_writer)    # same finish scope: parallel with the pair

    return TaskProgram(main, name="finish_parallel", initial_memory={"X": 0})


register(
    SuiteCase(
        name="nest_finish_parallel_siblings",
        category="nesting",
        description=(
            "Habanero-style: two asyncs inside one finish are parallel; the "
            "writer interleaves the pair (RWW)."
        ),
        build=_build_finish_parallel,
        expected=frozenset({"X"}),
    )
)


# -- 3. Deep spawn chain: pair at depth 4, interleaver at the root ------------------


def _chain(ctx: TaskContext, depth: int) -> None:
    if depth == 0:
        _rmw(ctx)
        return
    ctx.spawn(_chain, depth - 1)
    ctx.sync()


def _build_deep_chain() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        ctx.spawn(_chain, 4)
        ctx.spawn(_writer)
        ctx.sync()

    return TaskProgram(main, name="deep_chain", initial_memory={"X": 0})


register(
    SuiteCase(
        name="nest_deep_chain",
        category="nesting",
        description=(
            "The pair sits five spawns deep; the writer is a direct child of "
            "the root.  The LCA walk spans the whole chain."
        ),
        build=_build_deep_chain,
        expected=frozenset({"X"}),
    )
)


# -- 4. parallel_for over disjoint locations: safe ------------------------------------


def _index_task(ctx: TaskContext, index: int) -> None:
    value = ctx.read(("cell", index))
    ctx.write(("cell", index), value + 1)


def _build_parallel_for_disjoint() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        for index in range(6):
            ctx.spawn(_index_task, index)
        ctx.sync()

    return TaskProgram(
        main,
        name="parallel_for_disjoint",
        initial_memory={("cell", i): 0 for i in range(6)},
    )


register(
    SuiteCase(
        name="nest_parallel_for_disjoint",
        category="nesting",
        description=(
            "blackscholes-shaped parallel_for: every task owns its own "
            "location, pairs exist but no parallel task touches them."
        ),
        build=_build_parallel_for_disjoint,
        expected=frozenset(),
    )
)


# -- 5. parallel_for with a shared accumulator: violation --------------------------------


def _accumulate(ctx: TaskContext, index: int) -> None:
    local = ctx.read(("cell", index))
    total = ctx.read("sum")
    ctx.write("sum", total + local)


def _build_parallel_for_shared() -> TaskProgram:
    def main(ctx: TaskContext) -> None:
        for index in range(4):
            ctx.spawn(_accumulate, index)
        ctx.sync()

    return TaskProgram(
        main,
        name="parallel_for_shared",
        initial_memory={("cell", i): i for i in range(4)} | {"sum": 0},
    )


register(
    SuiteCase(
        name="nest_parallel_for_shared_sum",
        category="nesting",
        description=(
            "parallel_for reduction done wrong: each task read-modify-writes "
            "the shared accumulator without protection (RWW/RWR triples "
            "between every pair of tasks)."
        ),
        build=_build_parallel_for_shared,
        expected=frozenset({"sum"}),
    )
)
