"""Shadow memory: the program's shared store plus access accounting.

Workload programs compute with real values, so the shadow memory is a
genuine key-value store (location -> value).  Locations are arbitrary
hashable objects; by convention scalars are strings (``"X"``) and array
elements are tuples (``("points", 17)``).

Besides holding values, shadow memory counts the number of distinct
locations ever touched, which is Table 1's "No. of locations" column.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Optional

from repro.errors import RuntimeUsageError

Location = Hashable


class ShadowMemory:
    """The shared-memory store of one execution.

    Parameters
    ----------
    initial:
        Optional mapping of pre-initialized locations.
    default:
        Value returned when reading a location never written.  When set to
        the sentinel :data:`STRICT`, such reads raise
        :class:`RuntimeUsageError` instead -- useful for catching workload
        bugs.
    """

    #: Sentinel: reads of unwritten locations are errors.
    STRICT = object()

    def __init__(
        self,
        initial: Optional[Mapping[Location, Any]] = None,
        default: Any = 0,
    ) -> None:
        self._values: Dict[Location, Any] = dict(initial) if initial else {}
        self._default = default
        self.read_count = 0
        self.write_count = 0

    # -- data plane ----------------------------------------------------------

    def load(self, location: Location) -> Any:
        """Read *location*'s current value."""
        self.read_count += 1
        if location in self._values:
            return self._values[location]
        if self._default is ShadowMemory.STRICT:
            raise RuntimeUsageError(f"read of uninitialised location {location!r}")
        return self._default

    def store(self, location: Location, value: Any) -> None:
        """Write *value* to *location*."""
        self.write_count += 1
        self._values[location] = value

    def peek(self, location: Location, default: Any = None) -> Any:
        """Read without counting as a program access (for tests/reports)."""
        return self._values.get(location, default)

    def snapshot(self) -> Dict[Location, Any]:
        """A copy of the entire store."""
        return dict(self._values)

    # -- accounting ------------------------------------------------------------

    @property
    def unique_locations(self) -> int:
        """Number of distinct locations ever written or pre-initialized.

        Locations only ever *read* at their default value are not stored;
        runtimes that need read-only locations counted pre-initialize them.
        """
        return len(self._values)

    @property
    def access_count(self) -> int:
        """Total dynamic accesses (loads + stores)."""
        return self.read_count + self.write_count

    def locations(self) -> Iterable[Location]:
        """All stored locations (unspecified order)."""
        return self._values.keys()

    def __contains__(self, location: Location) -> bool:
        return location in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<ShadowMemory locations={len(self._values)} "
            f"reads={self.read_count} writes={self.write_count}>"
        )
