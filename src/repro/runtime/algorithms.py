"""TBB-style parallel algorithm templates.

Intel TBB programs rarely spawn raw tasks; they use algorithm templates --
``parallel_for``, ``parallel_reduce``, ``parallel_invoke`` -- that handle
range splitting and task management.  These helpers provide the same
vocabulary over :class:`~repro.runtime.task.TaskContext`, built purely
from ``spawn``/``sync`` so the DPST and the checkers see ordinary task
structure.

All of them use TBB's recursive range-splitting shape: a range is split
in half until it is at most ``grain`` long, and each leaf runs the body in
its own task (hence its own step nodes -- two leaves are always logically
parallel, which is exactly what the atomicity checker needs to know).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import RuntimeUsageError
from repro.runtime.task import TaskContext

Body = Callable[[TaskContext, int], Any]
RangeBody = Callable[[TaskContext, int, int], Any]


def parallel_for(
    ctx: TaskContext,
    start: int,
    stop: int,
    body: Body,
    grain: int = 1,
) -> None:
    """Run ``body(ctx, i)`` for every i in ``range(start, stop)`` in parallel.

    ``grain`` is TBB's grainsize: the maximum number of consecutive
    indices executed by one leaf task (and hence inside one atomic
    region).  The call blocks until every iteration has completed.
    """
    if grain < 1:
        raise RuntimeUsageError(f"grain must be >= 1, got {grain}")
    if start >= stop:
        return
    with ctx.finish():
        _for_split(ctx, start, stop, body, grain)


def _for_leaf(leaf_ctx: TaskContext, start: int, stop: int, body: Body) -> None:
    for index in range(start, stop):
        body(leaf_ctx, index)


def _for_split(
    ctx: TaskContext, start: int, stop: int, body: Body, grain: int
) -> None:
    """Binary range splitting, spawning leaves."""
    if stop - start <= grain:
        ctx.spawn(_for_leaf, start, stop, body)
        return
    middle = (start + stop) // 2
    _for_split(ctx, start, middle, body, grain)
    _for_split(ctx, middle, stop, body, grain)


def parallel_reduce(
    ctx: TaskContext,
    start: int,
    stop: int,
    map_body: Callable[[TaskContext, int], Any],
    combine: Callable[[Any, Any], Any],
    identity: Any,
    grain: int = 1,
) -> Any:
    """Parallel map-reduce over ``range(start, stop)``.

    Each leaf task folds its sub-range locally (``combine`` over
    ``map_body`` results, seeded with ``identity``); partial results are
    written to per-leaf locations and combined by the calling task after
    the join -- the race-free reduction tree the correct versions of the
    paper's kmeans/swaptions kernels use.

    Returns the combined value.
    """
    if grain < 1:
        raise RuntimeUsageError(f"grain must be >= 1, got {grain}")
    if start >= stop:
        return identity
    # Unique scratch prefix per reduction so nested/repeated reductions
    # never share partial-result locations.
    slot = ("__reduce__", ctx.task_id, id(combine) & 0xFFFF, start, stop)
    leaves: List[Tuple[int, int]] = []
    _reduce_ranges(start, stop, grain, leaves)

    def leaf(leaf_ctx: TaskContext, index: int, lo: int, hi: int) -> None:
        accumulator = identity
        for i in range(lo, hi):
            accumulator = combine(accumulator, map_body(leaf_ctx, i))
        leaf_ctx.write((*slot, index), accumulator)

    with ctx.finish():
        for index, (lo, hi) in enumerate(leaves):
            ctx.spawn(leaf, index, lo, hi)
    total = identity
    for index in range(len(leaves)):
        total = combine(total, ctx.read((*slot, index)))
    return total


def _reduce_ranges(
    start: int, stop: int, grain: int, out: List[Tuple[int, int]]
) -> None:
    if stop - start <= grain:
        out.append((start, stop))
        return
    middle = (start + stop) // 2
    _reduce_ranges(start, middle, grain, out)
    _reduce_ranges(middle, stop, grain, out)


def parallel_invoke(ctx: TaskContext, *bodies: Callable[[TaskContext], Any]) -> None:
    """Run the given task bodies in parallel and wait for all of them.

    TBB's ``parallel_invoke``: each body becomes one task.
    """
    if not bodies:
        return
    with ctx.finish():
        for body in bodies:
            ctx.spawn(body)


def parallel_pipeline(
    ctx: TaskContext,
    items: Sequence[Any],
    stages: Sequence[Callable[[TaskContext, Any], Any]],
    max_in_flight: Optional[int] = None,
) -> List[Any]:
    """A simple TBB-style pipeline: each item flows through the stages.

    Stage ``k`` of item ``i`` runs after stage ``k-1`` of item ``i``
    (dataflow) and -- as in an ordered TBB pipeline executing on one token
    window -- items are processed in *waves*: all live items advance one
    stage per wave, so stage k of item i is logically parallel with stage
    k of every other item in the same wave.  ``max_in_flight`` bounds the
    wave width (the token count).

    Returns the final stage outputs in item order.  Intermediate values
    pass through shared memory, so pipelines over shared state are fully
    visible to the checkers.
    """
    window = len(items) if max_in_flight is None else max_in_flight
    if window < 1:
        raise RuntimeUsageError("max_in_flight must be >= 1")
    if not stages:
        return list(items)
    slot = ("__pipe__", ctx.task_id, id(stages) & 0xFFFF)

    def run_stage(stage_ctx: TaskContext, item_index: int, stage_index: int) -> None:
        if stage_index == 0:
            value = items[item_index]
        else:
            value = stage_ctx.read((*slot, item_index, stage_index - 1))
        result = stages[stage_index](stage_ctx, value)
        stage_ctx.write((*slot, item_index, stage_index), result)

    for base in range(0, len(items), window):
        wave = range(base, min(base + window, len(items)))
        for stage_index in range(len(stages)):
            with ctx.finish():
                for item_index in wave:
                    ctx.spawn(run_stage, item_index, stage_index)
    return [ctx.read((*slot, i, len(stages) - 1)) for i in range(len(items))]
